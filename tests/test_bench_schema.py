"""Schema validation for every committed ``BENCH_*.json`` trajectory file.

The benchmarks' output files are the regression watch's baseline
(:mod:`repro.lineage.bench`), so a benchmark script must not be able to
silently emit a malformed trajectory point: every committed file is
validated here against the shared schema registry — required keys
present, watched gates the right type, no NaN/inf anywhere — and the
registry itself is checked for coherence (every watched path and bound
is also a schema requirement the validator enforces).
"""

import json
import math
from pathlib import Path

import pytest

from repro.lineage.bench import (
    BENCH_SCHEMAS,
    WATCHED_METRICS,
    resolve_path,
    validate_bench_payload,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_*.json"))


def test_the_repo_commits_bench_files():
    """The watch is pointless without baselines; the repo ships eight."""
    assert len(BENCH_FILES) >= 8, [path.name for path in BENCH_FILES]


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[path.name for path in BENCH_FILES]
)
def test_committed_bench_file_is_valid(path):
    payload = json.loads(path.read_text())
    assert validate_bench_payload(payload) == []


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[path.name for path in BENCH_FILES]
)
def test_committed_benchmark_name_is_registered(path):
    payload = json.loads(path.read_text())
    assert payload.get("benchmark") in BENCH_SCHEMAS


def test_every_registered_benchmark_is_committed():
    """A registry entry without a committed file is a stale schema."""
    committed = {
        json.loads(path.read_text()).get("benchmark") for path in BENCH_FILES
    }
    assert set(BENCH_SCHEMAS) <= committed


@pytest.mark.parametrize("name", sorted(WATCHED_METRICS))
def test_watched_paths_resolve_in_the_committed_file(name):
    """Every gate the CI watch reads must exist in today's baseline."""
    payload = next(
        json.loads(path.read_text())
        for path in BENCH_FILES
        if json.loads(path.read_text()).get("benchmark") == name
    )
    for metric in WATCHED_METRICS[name]:
        value = resolve_path(payload, metric.path)
        if metric.higher_is_better is None:
            assert isinstance(value, bool), (metric.path, value)
        else:
            assert isinstance(value, (int, float)) and not isinstance(
                value, bool
            ), (metric.path, value)
            assert math.isfinite(value), (metric.path, value)
        if metric.bound is not None:
            bound = resolve_path(payload, metric.bound)
            assert isinstance(bound, (int, float)) and math.isfinite(bound)


class TestValidator:
    """The validator must actually catch the failure modes it claims to."""

    def _telemetry(self):
        return json.loads((REPO_ROOT / "BENCH_telemetry.json").read_text())

    def test_missing_benchmark_key(self):
        assert validate_bench_payload({"x": 1}) == [
            "missing or non-string 'benchmark' key"
        ]

    def test_unknown_benchmark_is_rejected(self):
        errors = validate_bench_payload({"benchmark": "made_up"})
        assert errors and "unknown benchmark" in errors[0]

    def test_missing_required_key_is_named(self):
        payload = self._telemetry()
        del payload["enabled_overhead_fraction"]
        errors = validate_bench_payload(payload)
        assert any("enabled_overhead_fraction" in error for error in errors)

    def test_nan_anywhere_is_rejected(self):
        payload = self._telemetry()
        payload["nested"] = {"deep": [1.0, float("nan")]}
        errors = validate_bench_payload(payload)
        assert any("non-finite" in error for error in errors)

    def test_boolean_gate_with_wrong_type_is_rejected(self):
        payload = self._telemetry()
        payload["bit_identical"] = "yes"
        errors = validate_bench_payload(payload)
        assert any("boolean" in error for error in errors)

    def test_numeric_gate_with_wrong_type_is_rejected(self):
        payload = self._telemetry()
        payload["noop_span_nanoseconds"] = "fast"
        errors = validate_bench_payload(payload)
        assert any("numeric" in error for error in errors)
