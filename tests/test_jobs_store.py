"""Unit tests for the asynchronous job store (:mod:`repro.jobs`).

Everything here runs against a stub session — lifecycle, events,
cooperative cancellation, TTL eviction, exactly-once execution, the
concurrency stress test and graceful shutdown are store properties, not
simulation properties.  The end-to-end paths through a real
:class:`~repro.api.session.Session` live in ``test_jobs_service.py``.
"""

import json
import threading
import time

import pytest

from repro.api.schema import JobRecord, JobResult, SimulateRequest
from repro.jobs import JobCancelled, JobStore, JobStoreClosed, UnknownJob
from repro.telemetry import metrics as _metrics
from repro.telemetry.schema import validate_file


class _StubResult:
    def __init__(self, payload):
        self.payload = payload

    def to_dict(self):
        return dict(self.payload)


class _StubSession:
    """Scriptable ``submit``; records every execution for once-only checks."""

    def __init__(self, behaviour=None):
        #: behaviour(request, progress, on_event) -> payload dict
        self.behaviour = behaviour
        self.lock = threading.Lock()
        self.executions = []

    def submit(self, request, progress=None, on_event=None):
        with self.lock:
            self.executions.append(request)
        if self.behaviour is not None:
            payload = self.behaviour(request, progress, on_event)
        else:
            if progress:
                progress("working")
            payload = {"kind": "stub", "model": request.model}
        return _StubResult(payload)


def _request(model="snli"):
    return SimulateRequest(model=model, epochs=1, batches_per_epoch=1,
                           batch_size=4, max_groups=8)


@pytest.fixture
def store():
    store = JobStore(_StubSession(), workers=2)
    yield store
    store.shutdown(drain_seconds=2.0)


class TestLifecycle:
    def test_submit_runs_and_succeeds(self, store):
        job_id = store.submit(_request())
        record = store.wait(job_id, timeout=10.0)
        assert isinstance(record, JobRecord)
        assert record.state == "succeeded"
        assert record.request_kind == "simulate"
        assert record.started_s is not None
        assert record.finished_s is not None
        assert record.error is None
        assert record.request["model"] == "snli"

    def test_event_sequence_is_ordered_and_complete(self, store):
        job_id = store.submit(_request())
        store.wait(job_id, timeout=10.0)
        events, state = store.events_after(job_id, 0)
        assert state == "succeeded"
        assert [event["type"] for event in events] == [
            "state", "state", "progress", "state",
        ]
        assert [event["seq"] for event in events] == [1, 2, 3, 4]
        assert [e["state"] for e in events if e["type"] == "state"] == [
            "queued", "running", "succeeded",
        ]

    def test_result_returns_the_session_payload(self, store):
        job_id = store.submit(_request())
        store.wait(job_id, timeout=10.0)
        result = store.result(job_id)
        assert isinstance(result, JobResult)
        assert result.state == "succeeded"
        assert result.result == {"kind": "stub", "model": "snli"}
        # And the envelope round-trips through the schema layer.
        assert JobResult.from_dict(result.to_dict()) == result

    def test_result_before_terminal_state_is_an_error(self):
        gate = threading.Event()

        def behaviour(request, progress, on_event):
            gate.wait(timeout=10.0)
            return {}

        store = JobStore(_StubSession(behaviour), workers=1)
        try:
            job_id = store.submit(_request())
            with pytest.raises(ValueError, match="terminal"):
                store.result(job_id)
        finally:
            gate.set()
            store.shutdown(drain_seconds=2.0)

    def test_failures_are_captured_not_raised(self):
        def behaviour(request, progress, on_event):
            raise RuntimeError("engine exploded")

        store = JobStore(_StubSession(behaviour), workers=1)
        try:
            job_id = store.submit(_request())
            record = store.wait(job_id, timeout=10.0)
            assert record.state == "failed"
            assert record.error == "RuntimeError: engine exploded"
            result = store.result(job_id)
            assert result.result is None
            assert result.error == record.error
        finally:
            store.shutdown(drain_seconds=2.0)

    def test_unknown_job_everywhere(self, store):
        for call in (store.get, store.result, store.cancel,
                     lambda job_id: store.events_after(job_id, 0)):
            with pytest.raises(UnknownJob, match="deadbeef"):
                call("deadbeef")

    def test_non_request_submissions_are_rejected(self, store):
        with pytest.raises(TypeError, match="unsupported request type"):
            store.submit({"kind": "simulate"})

    def test_constructor_validates_knobs(self):
        with pytest.raises(ValueError, match="workers"):
            JobStore(_StubSession(), workers=0)
        with pytest.raises(ValueError, match="retention"):
            JobStore(_StubSession(), retention_seconds=-1.0)


class TestCancellation:
    def test_cancel_queued_job_never_executes(self):
        gate = threading.Event()
        started = threading.Event()

        def behaviour(request, progress, on_event):
            started.set()
            gate.wait(timeout=10.0)
            return {}

        session = _StubSession(behaviour)
        store = JobStore(session, workers=1)
        try:
            blocker = store.submit(_request())
            assert started.wait(timeout=10.0)
            queued = store.submit(_request())
            record = store.cancel(queued)
            assert record.state == "cancelled"
            gate.set()
            store.wait(blocker, timeout=10.0)
            # Only the blocker ever reached the session.
            assert len(session.executions) == 1
            events, _ = store.events_after(queued, 0)
            assert [e["type"] for e in events] == ["state", "state"]
        finally:
            gate.set()
            store.shutdown(drain_seconds=2.0)

    def test_cancel_running_job_stops_at_next_progress_boundary(self):
        reached = threading.Event()
        cancelled = threading.Event()

        def behaviour(request, progress, on_event):
            progress("point 1")
            reached.set()
            cancelled.wait(timeout=10.0)
            progress("point 2")   # raises JobCancelled via the store's hook
            raise AssertionError("the job ran past its cancellation")

        store = JobStore(_StubSession(behaviour), workers=1)
        try:
            job_id = store.submit(_request())
            assert reached.wait(timeout=10.0)
            record = store.cancel(job_id)
            assert record.state == "running"
            assert record.cancel_requested
            cancelled.set()
            record = store.wait(job_id, timeout=10.0)
            assert record.state == "cancelled"
            events, _ = store.events_after(job_id, 0)
            assert "cancel_requested" in [event["type"] for event in events]
        finally:
            cancelled.set()
            store.shutdown(drain_seconds=2.0)

    def test_on_event_hook_also_enforces_cancellation(self):
        reached = threading.Event()
        cancelled = threading.Event()

        def behaviour(request, progress, on_event):
            on_event({"type": "point", "done": 1, "total": 3})
            reached.set()
            cancelled.wait(timeout=10.0)
            on_event({"done": 2, "total": 3})
            raise AssertionError("the job ran past its cancellation")

        store = JobStore(_StubSession(behaviour), workers=1)
        try:
            job_id = store.submit(_request())
            assert reached.wait(timeout=10.0)
            store.cancel(job_id)
            cancelled.set()
            assert store.wait(job_id, timeout=10.0).state == "cancelled"
            events, _ = store.events_after(job_id, 0)
            points = [event for event in events if event["type"] == "point"]
            assert len(points) == 1 and points[0]["done"] == 1
        finally:
            cancelled.set()
            store.shutdown(drain_seconds=2.0)

    def test_cancel_finished_job_is_a_no_op(self, store):
        job_id = store.submit(_request())
        store.wait(job_id, timeout=10.0)
        record = store.cancel(job_id)
        assert record.state == "succeeded"
        assert not record.cancel_requested


class TestRetention:
    def test_finished_jobs_are_evicted_after_the_ttl(self):
        now = [1000.0]
        store = JobStore(_StubSession(), workers=1,
                         retention_seconds=60.0, clock=lambda: now[0])
        try:
            job_id = store.submit(_request())
            store.wait(job_id, timeout=10.0)
            now[0] += 59.0
            assert store.get(job_id).state == "succeeded"
            now[0] += 2.0
            assert store.purge() == 1
            with pytest.raises(UnknownJob):
                store.get(job_id)
        finally:
            store.shutdown(drain_seconds=2.0)

    def test_zero_retention_keeps_jobs_forever(self):
        now = [1000.0]
        store = JobStore(_StubSession(), workers=1,
                         retention_seconds=0.0, clock=lambda: now[0])
        try:
            job_id = store.submit(_request())
            store.wait(job_id, timeout=10.0)
            now[0] += 1e9
            assert store.purge() == 0
            assert store.get(job_id).state == "succeeded"
        finally:
            store.shutdown(drain_seconds=2.0)

    def test_running_jobs_are_never_evicted(self):
        gate = threading.Event()
        now = [1000.0]

        def behaviour(request, progress, on_event):
            gate.wait(timeout=10.0)
            return {}

        store = JobStore(_StubSession(behaviour), workers=1,
                         retention_seconds=1.0, clock=lambda: now[0])
        try:
            job_id = store.submit(_request())
            now[0] += 1e6
            assert store.purge() == 0
            assert store.get(job_id).state in ("queued", "running")
        finally:
            gate.set()
            store.shutdown(drain_seconds=2.0)


class TestEvents:
    def test_events_after_filters_by_sequence(self, store):
        job_id = store.submit(_request())
        store.wait(job_id, timeout=10.0)
        all_events, _ = store.events_after(job_id, 0)
        tail, state = store.events_after(job_id, all_events[1]["seq"])
        assert state == "succeeded"
        assert [event["seq"] for event in tail] == [
            event["seq"] for event in all_events[2:]
        ]

    def test_wait_events_returns_immediately_when_terminal(self, store):
        job_id = store.submit(_request())
        store.wait(job_id, timeout=10.0)
        events, state = store.wait_events(job_id, 10 ** 6, timeout=0.05)
        assert events == []
        assert state == "succeeded"

    def test_wait_events_wakes_on_new_events(self):
        gate = threading.Event()

        def behaviour(request, progress, on_event):
            gate.wait(timeout=10.0)
            progress("late event")
            return {}

        store = JobStore(_StubSession(behaviour), workers=1)
        try:
            job_id = store.submit(_request())
            results = []

            def waiter():
                # Follow the stream the way the SSE loop does: keep
                # asking for events past the last seen sequence number
                # until the progress event arrives.
                last, deadline = 0, time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    events, state = store.wait_events(job_id, last, timeout=10.0)
                    results.extend(events)
                    if events:
                        last = events[-1]["seq"]
                    if any(e["type"] == "progress" for e in events):
                        return
                    if state in ("succeeded", "failed", "cancelled"):
                        return

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.05)
            gate.set()
            thread.join(timeout=10.0)
            assert any(event["type"] == "progress" for event in results)
        finally:
            gate.set()
            store.shutdown(drain_seconds=2.0)


class TestConcurrencyStress:
    def test_parallel_submit_poll_cancel_loses_nothing(self):
        """N client threads vs the store: exactly-once execution, every
        job terminal, and the metrics counters sum exactly."""
        clients, per_client = 8, 6
        session = _StubSession()
        before = {
            state: _metrics.JOBS_TOTAL.value(state=state)
            for state in ("queued", "running", "succeeded", "cancelled")
        }
        store = JobStore(session, workers=4)
        ids = []
        ids_lock = threading.Lock()
        errors = []

        def client(index):
            try:
                for i in range(per_client):
                    job_id = store.submit(_request())
                    with ids_lock:
                        ids.append(job_id)
                    if i % 3 == 2:
                        store.cancel(job_id)   # may or may not land in time
                    store.wait(job_id, timeout=30.0)
            except Exception as exc:   # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        try:
            assert errors == []
            total = clients * per_client
            assert len(set(ids)) == total
            records = {job_id: store.get(job_id) for job_id in ids}
            states = [record.state for record in records.values()]
            assert all(s in ("succeeded", "cancelled") for s in states)
            succeeded = states.count("succeeded")
            cancelled = states.count("cancelled")
            # Exactly one execution per non-cancelled job, none duplicated.
            assert len(session.executions) == succeeded
            # Counter deltas sum exactly across all clients.
            assert _metrics.JOBS_TOTAL.value(state="queued") \
                - before["queued"] == total
            assert _metrics.JOBS_TOTAL.value(state="succeeded") \
                - before["succeeded"] == succeeded
            assert _metrics.JOBS_TOTAL.value(state="cancelled") \
                - before["cancelled"] == cancelled
            assert _metrics.JOBS_TOTAL.value(state="running") \
                - before["running"] == succeeded
        finally:
            store.shutdown(drain_seconds=2.0)


class TestShutdown:
    def test_shutdown_cancels_queued_and_refuses_new(self):
        gate = threading.Event()
        started = threading.Event()

        def behaviour(request, progress, on_event):
            started.set()
            gate.wait(timeout=10.0)
            return {}

        store = JobStore(_StubSession(behaviour), workers=1)
        blocker = store.submit(_request())
        assert started.wait(timeout=10.0)
        queued = store.submit(_request())
        gate.set()
        store.shutdown(drain_seconds=5.0)
        assert store.get(queued).state == "cancelled"
        assert store.get(blocker).state == "succeeded"
        with pytest.raises(JobStoreClosed):
            store.submit(_request())
        store.shutdown(drain_seconds=5.0)   # idempotent

    def test_shutdown_flags_jobs_that_outlive_the_drain(self):
        gate = threading.Event()
        started = threading.Event()

        def behaviour(request, progress, on_event):
            started.set()
            gate.wait(timeout=30.0)
            progress("post-drain boundary")
            return {}

        store = JobStore(_StubSession(behaviour), workers=1)
        job_id = store.submit(_request())
        assert started.wait(timeout=10.0)
        store.shutdown(drain_seconds=0.1)
        assert store.get(job_id).cancel_requested
        gate.set()
        assert store.wait(job_id, timeout=10.0).state == "cancelled"

    def test_describe_reports_the_store_shape(self, store):
        job_id = store.submit(_request())
        store.wait(job_id, timeout=10.0)
        summary = store.describe()
        assert summary["workers"] == 2
        assert summary["accepting"] is True
        assert summary["queue_depth"] == 0
        assert summary["jobs"].get("succeeded", 0) >= 1


class TestAuditLog:
    def test_audit_records_validate_and_cover_every_transition(self, tmp_path):
        path = tmp_path / "logs" / "audit.jsonl"
        store = JobStore(_StubSession(), workers=1, audit_log=path)
        try:
            ok = store.submit(_request())
            store.wait(ok, timeout=10.0)
            gone = store.submit(_request())
            store.wait(gone, timeout=10.0)
        finally:
            store.shutdown(drain_seconds=2.0)
        counts = validate_file(path)
        # Per job: one "submitted" record plus the queued->running and
        # running->succeeded transitions.
        assert counts == {"job": 6}
        records = [json.loads(line) for line in path.read_text().splitlines()]
        mine = [r for r in records if r["job_id"] == ok]
        assert [r["event"] for r in mine] == [
            "submitted", "transition", "transition",
        ]
        assert [r["state"] for r in mine] == ["queued", "running", "succeeded"]
        assert mine[0]["request"]["model"] == "snli"
        assert mine[1]["from"] == "queued"

    def test_failed_job_audit_includes_the_error(self, tmp_path):
        def behaviour(request, progress, on_event):
            raise ValueError("boom")

        path = tmp_path / "audit.jsonl"
        store = JobStore(_StubSession(behaviour), workers=1, audit_log=path)
        try:
            job_id = store.submit(_request())
            store.wait(job_id, timeout=10.0)
        finally:
            store.shutdown(drain_seconds=2.0)
        validate_file(path)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        failed = [r for r in records if r["state"] == "failed"]
        assert failed and failed[0]["error"] == "ValueError: boom"


class TestJobCancelledType:
    def test_job_cancelled_is_not_a_schema_or_value_error(self):
        # The executor re-raises BaseException subclasses from merge();
        # JobCancelled must not be swallowed by handlers catching the
        # engine's expected failure types.
        assert issubclass(JobCancelled, RuntimeError)
        assert not issubclass(JobCancelled, ValueError)
