"""Property-based tests (hypothesis) for the scheduler invariants.

These cover the correctness properties the paper's hardware relies on:

* every effectual pair is consumed exactly once over a stream,
* skipping ineffectual pairs never changes the accumulated output,
* the schedule is valid (no pair selected twice within a step, every
  selection points at a pending effectual pair),
* the cycle count is bounded below by ``rows / staging_depth`` and above
  by ``rows`` (never slower than the dense baseline),
* the vectorised batch scheduler is bit-identical to the reference model.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.config import PEConfig
from repro.core.pe import BaselinePE, TensorDashPE
from repro.core.scheduler import BatchScheduler, HardwareScheduler


def effectual_windows(depth=3, lanes=16):
    return arrays(np.bool_, (depth, lanes), elements=st.booleans())


def effectual_streams(max_rows=20, lanes=16):
    return st.integers(min_value=1, max_value=max_rows).flatmap(
        lambda rows: arrays(np.bool_, (rows, lanes), elements=st.booleans())
    )


@st.composite
def value_stream_pairs(draw, max_rows=12, lanes=16):
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    shape = (rows, lanes)
    a_zero = draw(arrays(np.bool_, shape, elements=st.booleans()))
    b_zero = draw(arrays(np.bool_, shape, elements=st.booleans()))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**16)))
    a = rng.uniform(0.5, 2.0, size=shape)
    b = rng.uniform(0.5, 2.0, size=shape)
    a[a_zero] = 0.0
    b[b_zero] = 0.0
    return a, b


class TestSchedulerStepProperties:
    @settings(max_examples=200, deadline=None)
    @given(effectual_windows())
    def test_schedule_is_valid(self, window):
        scheduler = HardwareScheduler()
        schedule = scheduler.schedule_step(window)
        chosen = [s for s in schedule.selections if s is not None]
        # No duplicates, and every selection points at an effectual pair.
        assert len(chosen) == len(set(chosen))
        for step, lane in chosen:
            assert window[step, lane]

    @settings(max_examples=200, deadline=None)
    @given(effectual_windows())
    def test_row_zero_is_always_drained(self, window):
        scheduler = HardwareScheduler()
        schedule = scheduler.schedule_step(window)
        consumed_row0 = {
            lane for selection in schedule.selections
            if selection is not None and selection[0] == 0
            for lane in [selection[1]]
        }
        assert consumed_row0 == set(np.flatnonzero(window[0]))
        assert 1 <= schedule.advance <= 3

    @settings(max_examples=200, deadline=None)
    @given(effectual_windows())
    def test_batch_scheduler_is_bit_identical(self, window):
        hardware = HardwareScheduler().schedule_step(window)
        claimed, advance, busy = BatchScheduler().schedule(window[None])
        expected = np.zeros_like(window)
        for selection in hardware.selections:
            if selection is not None:
                expected[selection] = True
        assert np.array_equal(claimed[0], expected)
        assert advance[0] == hardware.advance
        assert busy[0] == hardware.busy_lanes


class TestStreamProperties:
    @settings(max_examples=100, deadline=None)
    @given(effectual_streams())
    def test_every_effectual_pair_consumed_exactly_once(self, stream):
        scheduler = HardwareScheduler()
        cycles, schedules = scheduler.process_stream(stream)
        consumed = sum(s.busy_lanes for s in schedules)
        assert consumed == int(stream.sum())

    @settings(max_examples=100, deadline=None)
    @given(effectual_streams())
    def test_cycles_bounded_by_depth_and_rows(self, stream):
        scheduler = HardwareScheduler()
        cycles, _ = scheduler.process_stream(stream)
        rows = stream.shape[0]
        assert cycles <= rows
        assert cycles >= -(-rows // 3)

    @settings(max_examples=50, deadline=None)
    @given(effectual_streams(max_rows=15))
    def test_batch_stream_cycles_match_reference(self, stream):
        reference, _ = HardwareScheduler().process_stream(stream)
        assert BatchScheduler().stream_cycles(stream) == reference


class TestPEProperties:
    @settings(max_examples=50, deadline=None)
    @given(value_stream_pairs())
    def test_functional_equivalence_one_side(self, streams):
        a, b = streams
        baseline = BaselinePE().process(a, b)
        result, _ = TensorDashPE().process(a, b)
        assert np.isclose(result.output, baseline.output, rtol=1e-9, atol=1e-9)
        assert result.cycles <= baseline.cycles

    @settings(max_examples=50, deadline=None)
    @given(value_stream_pairs())
    def test_functional_equivalence_two_side(self, streams):
        a, b = streams
        config = PEConfig(two_side=True)
        baseline = BaselinePE(config).process(a, b)
        result, _ = TensorDashPE(config).process(a, b)
        assert np.isclose(result.output, baseline.output, rtol=1e-9, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(value_stream_pairs())
    def test_macs_performed_matches_nonzero_b(self, streams):
        a, b = streams
        result, _ = TensorDashPE().process(a, b)
        assert result.macs_performed == int(np.count_nonzero(b))
