"""Smoke tests for the ``repro serve`` batch service.

Starts a real :class:`ThreadingHTTPServer` on an ephemeral port and
drives it over HTTP: two sequential POSTs of the same 1-epoch snli
simulate must show the second request served from the shared session's
cache (the acceptance criterion of the batch-service design).
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import __version__
from repro.api.schema import SCHEMA_VERSION, ApiResult
from repro.api.service import create_server
from repro.api.session import Session

SIMULATE_BODY = {
    "model": "snli", "epochs": 1, "batches_per_epoch": 1,
    "batch_size": 4, "max_groups": 8,
}


@pytest.fixture(scope="module")
def server_url():
    server = create_server(port=0, session=Session(), quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str):
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, json.loads(response.read())


def _post(url: str, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get_raw(url: str):
    with urllib.request.urlopen(url, timeout=60) as response:
        return (
            response.status,
            response.read().decode("utf-8"),
            response.headers.get("Content-Type"),
        )


class TestServe:
    def test_health_reports_version_and_endpoints(self, server_url):
        status, payload = _get(server_url + "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == __version__
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "/v1/simulate" in payload["endpoints"]
        assert "/v1/metrics" in payload["endpoints"]
        assert "snli" in payload["models"]

    def test_health_reports_uptime_and_telemetry_status(self, server_url):
        status, payload = _get(server_url + "/v1/health")
        assert status == 200
        assert payload["uptime_seconds"] >= 0.0
        telemetry = payload["telemetry"]
        assert telemetry["enabled"] is False
        assert telemetry["dir"] is None
        assert telemetry["spans_emitted"] >= 0

    def test_second_post_is_served_from_the_shared_cache(self, server_url):
        status, first = _post(server_url + "/v1/simulate", SIMULATE_BODY)
        assert status == 200
        assert first["engine"]["layers_simulated"] > 0

        status, second = _post(server_url + "/v1/simulate", SIMULATE_BODY)
        assert status == 200
        assert second["engine"]["layers_simulated"] == 0
        assert second["engine"]["cache_hits"] == first["engine"]["layers_simulated"]
        assert second["result"] == first["result"]

        # The session-level counters agree: nonzero hits in /v1/stats.
        status, stats = _get(server_url + "/v1/stats")
        assert status == 200
        assert stats["engine"]["cache_hits"] > 0
        assert stats["requests_served"] >= 2

        # Both responses parse back into validated envelopes.
        envelope = ApiResult.from_dict(second)
        assert envelope.result.model == "snli"

    def test_metrics_prometheus_exposition(self, server_url):
        _post(server_url + "/v1/simulate", SIMULATE_BODY)
        status, text, content_type = _get_raw(server_url + "/v1/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        lines = text.splitlines()
        assert "# TYPE repro_requests_total counter" in lines
        assert "# TYPE repro_request_seconds histogram" in lines
        assert any(
            line.startswith('repro_requests_total{kind="simulate"}')
            for line in lines
        )
        # Histogram series carry le buckets plus _sum/_count.
        assert any(
            line.startswith('repro_request_seconds_bucket{kind="simulate",le=')
            for line in lines
        )
        assert any(
            line.startswith('repro_request_seconds_count{kind="simulate"}')
            for line in lines
        )
        # The cache hierarchy is pre-seeded: every tier has a series.
        for tier in ("memo", "shared", "disk"):
            assert f'repro_cache_hits_total{{tier="{tier}"}}' in text

    def test_metrics_json_variant(self, server_url):
        _get(server_url + "/v1/health")
        status, payload = _get(server_url + "/v1/metrics?format=json")
        assert status == 200
        requests_total = payload["repro_requests_total"]
        assert requests_total["type"] == "counter"
        http = payload["repro_http_requests_total"]
        assert any(
            series["labels"] == {"method": "GET", "status": "200"}
            and series["value"] >= 1
            for series in http["values"]
        )

    def test_kind_is_implied_by_the_path(self, server_url):
        body = dict(SIMULATE_BODY)
        body["kind"] = "simulate"   # explicit tag also accepted
        status, payload = _post(server_url + "/v1/simulate", body)
        assert status == 200
        assert payload["kind"] == "simulate"

    def test_kind_mismatch_is_rejected(self, server_url):
        body = dict(SIMULATE_BODY)
        body["kind"] = "sweep"
        status, payload = _post(server_url + "/v1/simulate", body)
        assert status == 400
        assert payload["field"] == "kind"

    def test_invalid_request_returns_400_naming_the_field(self, server_url):
        status, payload = _post(server_url + "/v1/simulate", {"model": "nope"})
        assert status == 400
        assert payload["field"] == "SimulateRequest.model"
        assert "unknown workload" in payload["error"]

    def test_invalid_json_returns_400(self, server_url):
        request = urllib.request.Request(
            server_url + "/v1/simulate", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=60)
        assert excinfo.value.code == 400

    def test_unknown_path_returns_404_with_routes(self, server_url):
        status, payload = _post(server_url + "/v1/teleport", SIMULATE_BODY)
        assert status == 404
        assert "/v1/simulate" in payload["endpoints"]

    def test_client_study_dir_is_refused_without_a_study_root(self, server_url):
        status, payload = _post(server_url + "/v1/explore", {
            "spec": {"name": "t", "workloads": ["snli"],
                     "knobs": {"staging": [2]}, "epochs": 1,
                     "batches_per_epoch": 1, "batch_size": 4, "max_groups": 8},
            "study_dir": "/tmp/attacker-chosen-path",
        })
        assert status == 403
        assert payload["field"] == "study_dir"
        assert "--study-root" in payload["error"]

    def test_sweep_endpoint_runs_a_study(self, server_url):
        status, payload = _post(server_url + "/v1/sweep", {
            "model": "snli", "knob": "staging", "values": [2, 3],
            "epochs": 1, "batches_per_epoch": 1, "batch_size": 4,
            "max_groups": 8,
        })
        assert status == 200
        assert payload["kind"] == "sweep"
        assert len(payload["result"]["study"]["points"]) == 2


class TestAccessLog:
    def _serve(self, access_log=None):
        server = create_server(port=0, session=Session(), quiet=True,
                               access_log=access_log)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://{server.server_address[0]}:{server.server_address[1]}"
        return server, thread, url

    def test_access_log_writes_structured_records(self, tmp_path):
        log_path = tmp_path / "logs" / "access.jsonl"
        server, thread, url = self._serve(access_log=log_path)
        try:
            _get(url + "/v1/health")
            _post(url + "/v1/simulate", SIMULATE_BODY)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert [(r["method"], r["path"], r["status"]) for r in records] == [
            ("GET", "/v1/health", 200),
            ("POST", "/v1/simulate", 200),
        ]
        for record in records:
            assert record["duration_ms"] >= 0.0
            assert record["response_bytes"] > 0
            assert record["client"]
        assert records[1]["request_bytes"] > 0

    def test_access_log_is_off_by_default(self, server_url, tmp_path):
        # The module fixture's server has no access_log: requests succeed
        # and nothing is written anywhere (the handle stays None).
        status, _ = _get(server_url + "/v1/health")
        assert status == 200
        assert list(tmp_path.iterdir()) == []


class TestStudyRoot:
    def test_study_dir_under_the_root_is_allowed_and_escapes_are_not(self, tmp_path):
        root = tmp_path / "studies"
        root.mkdir()
        server = create_server(port=0, session=Session(), quiet=True,
                               study_root=root)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://{server.server_address[0]}:{server.server_address[1]}"
            spec = {"name": "t", "workloads": ["snli"],
                    "knobs": {"staging": [2]}, "epochs": 1,
                    "batches_per_epoch": 1, "batch_size": 4, "max_groups": 8}

            status, payload = _post(url + "/v1/explore", {
                "spec": spec, "study_dir": "mine",   # relative: under the root
            })
            assert status == 200
            assert (root / "mine" / "manifest.json").exists()

            status, payload = _post(url + "/v1/explore", {
                "spec": spec, "study_dir": "../outside",
            })
            assert status == 403
            assert payload["field"] == "study_dir"
            assert not (tmp_path / "outside").exists()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
