"""Tests for the model zoo and its registry."""

import numpy as np
import pytest

from repro.models import (
    build_alexnet,
    build_densenet121,
    build_gcn,
    build_img2txt,
    build_resnet50,
    build_snli,
    build_squeezenet,
    build_vgg16,
)
from repro.models.registry import (
    MODEL_REGISTRY,
    PAPER_MODELS,
    available_models,
    build_dataset,
    build_model,
    build_pruning_hook,
)
from repro.nn.losses import CrossEntropyLoss


IMAGE_BUILDERS = {
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "resnet50": build_resnet50,
    "densenet121": build_densenet121,
    "squeezenet": build_squeezenet,
}


class TestImageModels:
    @pytest.mark.parametrize("name", sorted(IMAGE_BUILDERS))
    def test_forward_backward_shapes(self, name):
        model = IMAGE_BUILDERS[name](num_classes=10)
        x = np.random.default_rng(0).normal(size=(2, 3, 32, 32)).astype(np.float32)
        x = np.maximum(x, 0.0)
        logits = model(x)
        assert logits.shape == (2, 10)
        loss = CrossEntropyLoss()
        loss(logits, np.array([1, 2]))
        grad = model.backward(loss.backward())
        assert grad.shape == x.shape

    @pytest.mark.parametrize("name", sorted(IMAGE_BUILDERS))
    def test_has_traceable_conv_layers(self, name):
        model = IMAGE_BUILDERS[name]()
        traceable = model.traceable_modules()
        assert len(traceable) >= 5

    def test_relu_models_produce_activation_sparsity(self):
        """After a forward pass, inner conv inputs carry ReLU-induced zeros."""
        model = build_alexnet()
        x = np.abs(np.random.default_rng(1).normal(size=(2, 3, 32, 32))).astype(np.float32)
        model(x)
        inner_convs = model.traceable_modules()[1:5]
        sparsities = []
        for layer in inner_convs:
            operands = layer.trace_operands()
            activations = operands.get("activations")
            if activations is not None:
                sparsities.append(float(np.mean(activations == 0)))
        assert max(sparsities) > 0.2

    def test_resnet_is_deeper_than_alexnet(self):
        assert len(build_resnet50().traceable_modules()) > len(
            build_alexnet().traceable_modules()
        )

    def test_densenet_uses_batchnorm_before_relu(self):
        from repro.nn import BatchNorm2D

        model = build_densenet121()
        assert any(isinstance(m, BatchNorm2D) for m in model.modules())

    def test_width_multiplier_scales_parameters(self):
        small = build_vgg16(width_multiplier=0.5).parameter_count()
        large = build_vgg16(width_multiplier=1.0).parameter_count()
        assert large > small


class TestSequenceModels:
    def test_img2txt_forward_backward(self):
        model = build_img2txt(vocab_size=64)
        x = np.abs(np.random.default_rng(2).normal(size=(2, 3, 32, 32))).astype(np.float32)
        logits = model(x)
        assert logits.shape == (2, 64)
        loss = CrossEntropyLoss()
        loss(logits, np.array([3, 7]))
        model.backward(loss.backward())

    def test_snli_forward_backward(self):
        model = build_snli(vocab_size=128)
        tokens = np.random.default_rng(3).integers(0, 128, size=(4, 16))
        logits = model(tokens)
        assert logits.shape == (4, 3)
        loss = CrossEntropyLoss()
        loss(logits, np.array([0, 1, 2, 1]))
        model.backward(loss.backward())

    def test_gcn_forward_backward(self):
        model = build_gcn(vocab_size=128, sequence_length=20, num_classes=128)
        tokens = np.random.default_rng(4).integers(0, 128, size=(4, 20))
        logits = model(tokens)
        assert logits.shape == (4, 128)
        loss = CrossEntropyLoss()
        loss(logits, np.array([5, 6, 7, 8]))
        model.backward(loss.backward())

    def test_gcn_has_virtually_no_activation_sparsity(self):
        """The key GCN property: gated linear units produce no zeros."""
        model = build_gcn(vocab_size=128, sequence_length=20, num_classes=128)
        tokens = np.random.default_rng(5).integers(0, 128, size=(8, 20))
        model(tokens)
        sparsities = []
        for layer in model.traceable_modules():
            activations = layer.trace_operands().get("activations")
            if activations is not None:
                sparsities.append(float(np.mean(activations == 0)))
        assert max(sparsities) < 0.05

    def test_snli_relu_encoder_produces_sparsity(self):
        model = build_snli(vocab_size=128)
        tokens = np.random.default_rng(6).integers(0, 128, size=(8, 16))
        model(tokens)
        sparsities = []
        for layer in model.traceable_modules():
            activations = layer.trace_operands().get("activations")
            if activations is not None:
                sparsities.append(float(np.mean(activations == 0)))
        assert max(sparsities) > 0.2


class TestRegistry:
    def test_all_paper_models_registered(self):
        for name in PAPER_MODELS:
            assert name in MODEL_REGISTRY

    def test_available_models_sorted(self):
        assert available_models() == sorted(available_models())

    def test_build_model_and_dataset_for_every_entry(self):
        for name in available_models():
            model = build_model(name)
            dataset = build_dataset(name)
            assert model is not None
            inputs, labels = dataset.sample_batch(2)
            assert inputs.shape[0] == 2
            assert labels.shape[0] == 2

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("not-a-model")
        with pytest.raises(KeyError):
            build_dataset("not-a-model")

    def test_pruning_hooks_only_for_pruned_variants(self):
        assert build_pruning_hook("alexnet") is None
        assert build_pruning_hook("resnet50_DS90") is not None
        assert build_pruning_hook("resnet50_SM90") is not None

    def test_registry_descriptions_present(self):
        for spec in MODEL_REGISTRY.values():
            assert spec.description
