"""Tests for the layer classes (conv, linear, activation, dropout, embedding)."""

import numpy as np
import pytest

from repro.nn import (
    Conv2D,
    Dropout,
    Embedding,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)


class TestConv2DLayer:
    def test_forward_shape(self):
        layer = Conv2D(3, 8, kernel_size=3, stride=1, padding=1)
        out = layer(np.zeros((2, 3, 16, 16), dtype=np.float32))
        assert out.shape == (2, 8, 16, 16)

    def test_backward_accumulates_gradients(self):
        rng = np.random.default_rng(0)
        layer = Conv2D(3, 4, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = layer(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_trace_operands_after_forward_backward(self):
        rng = np.random.default_rng(1)
        layer = Conv2D(3, 4, kernel_size=3, padding=1, rng=rng)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = layer(x)
        layer.backward(np.ones_like(out))
        operands = layer.trace_operands()
        assert set(operands) == {"weights", "activations", "output_gradients"}
        assert operands["activations"] is x

    def test_backward_before_forward_raises(self):
        layer = Conv2D(3, 4, kernel_size=3)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 4, 6, 6)))

    def test_macs_per_sample(self):
        layer = Conv2D(16, 32, kernel_size=3, stride=1, padding=1)
        assert layer.macs_per_sample((8, 8)) == 8 * 8 * 32 * 16 * 9

    def test_is_traceable(self):
        assert Conv2D(3, 4, 3).traceable


class TestLinearLayer:
    def test_forward_backward_round(self):
        rng = np.random.default_rng(2)
        layer = Linear(10, 5, rng=rng)
        x = rng.normal(size=(4, 10)).astype(np.float32)
        out = layer(x)
        assert out.shape == (4, 5)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert layer.weight.grad.shape == (5, 10)

    def test_no_bias_option(self):
        layer = Linear(10, 5, bias=False)
        assert layer.bias is None
        out = layer(np.zeros((2, 10), dtype=np.float32))
        assert np.allclose(out, 0.0)

    def test_macs_per_sample(self):
        assert Linear(128, 64).macs_per_sample() == 128 * 64

    def test_trace_operands(self):
        layer = Linear(4, 3)
        layer(np.ones((2, 4), dtype=np.float32))
        operands = layer.trace_operands()
        assert "weights" in operands and "activations" in operands


class TestActivations:
    def test_relu_zeroes_negatives_and_creates_sparsity(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.5, -0.2, 2.0]])
        out = relu(x)
        assert np.array_equal(out, [[0.0, 0.5, 0.0, 2.0]])
        # Gradient is masked at the same positions (gradient sparsity).
        grad = relu.backward(np.ones_like(x))
        assert np.array_equal(grad, [[0.0, 1.0, 0.0, 1.0]])

    def test_leaky_relu_keeps_small_negative_slope(self):
        layer = LeakyReLU(negative_slope=0.1)
        out = layer(np.array([[-1.0, 2.0]]))
        assert np.allclose(out, [[-0.1, 2.0]])
        grad = layer.backward(np.ones((1, 2)))
        assert np.allclose(grad, [[0.1, 1.0]])

    def test_sigmoid_gradient(self):
        layer = Sigmoid()
        x = np.array([[0.0]])
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        assert grad[0, 0] == pytest.approx(0.25)
        assert out[0, 0] == pytest.approx(0.5)

    def test_tanh_gradient(self):
        layer = Tanh()
        out = layer(np.array([[0.0]]))
        grad = layer.backward(np.ones((1, 1)))
        assert out[0, 0] == pytest.approx(0.0)
        assert grad[0, 0] == pytest.approx(1.0)

    def test_backward_before_forward_raises(self):
        for layer in (ReLU(), LeakyReLU(), Sigmoid(), Tanh()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros((1, 1)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(p=0.5)
        layer.training = False
        x = np.ones((4, 10), dtype=np.float32)
        assert np.array_equal(layer(x), x)

    def test_training_mode_zeroes_and_rescales(self):
        layer = Dropout(p=0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100), dtype=np.float32)
        out = layer(x)
        dropped = np.count_nonzero(out == 0)
        assert 0.4 < dropped / out.size < 0.6
        kept_values = out[out != 0]
        assert np.allclose(kept_values, 2.0)

    def test_backward_uses_same_mask(self):
        layer = Dropout(p=0.5, rng=np.random.default_rng(1))
        x = np.ones((10, 10), dtype=np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        assert np.array_equal(grad == 0, out == 0)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(p=1.0)


class TestEmbedding:
    def test_lookup_shape(self):
        layer = Embedding(100, 16)
        out = layer(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 16)

    def test_gradient_accumulates_per_token(self):
        layer = Embedding(10, 4)
        indices = np.array([[1, 1, 2]])
        out = layer(indices)
        layer.backward(np.ones_like(out))
        grad = layer.weight.grad
        assert np.allclose(grad[1], 2.0)   # token 1 appeared twice
        assert np.allclose(grad[2], 1.0)
        assert np.allclose(grad[0], 0.0)
