"""Tests for loss functions and optimisers."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential
from repro.nn.losses import CrossEntropyLoss, MSELoss, softmax
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, MomentumSGD


class TestSoftmaxAndCrossEntropy:
    def test_softmax_sums_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 10))
        probs = softmax(logits)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_softmax_is_shift_invariant(self):
        logits = np.random.default_rng(1).normal(size=(3, 4))
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        loss = CrossEntropyLoss()
        logits = np.array([[20.0, 0.0, 0.0], [0.0, 20.0, 0.0]])
        value = loss(logits, np.array([0, 1]))
        assert value < 1e-6

    def test_cross_entropy_gradient_matches_softmax_minus_onehot(self):
        loss = CrossEntropyLoss()
        logits = np.random.default_rng(2).normal(size=(4, 5))
        labels = np.array([0, 1, 2, 3])
        loss(logits, labels)
        grad = loss.backward()
        probs = softmax(logits)
        onehot = np.zeros_like(probs)
        onehot[np.arange(4), labels] = 1.0
        assert np.allclose(grad, (probs - onehot) / 4)

    def test_gradient_descent_on_loss_reduces_it(self):
        rng = np.random.default_rng(3)
        model = Sequential([Linear(8, 4, rng=rng)])
        optimizer = SGD(model.parameters(), lr=0.5)
        loss = CrossEntropyLoss()
        x = rng.normal(size=(16, 8)).astype(np.float32)
        labels = rng.integers(0, 4, size=16)
        first = None
        last = None
        for _ in range(30):
            model.zero_grad()
            logits = model(x)
            value = loss(logits, labels)
            if first is None:
                first = value
            model.backward(loss.backward())
            optimizer.step()
            last = value
        assert last < first

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestMSELoss:
    def test_zero_for_exact_prediction(self):
        loss = MSELoss()
        x = np.ones((3, 2))
        assert loss(x, x) == 0.0

    def test_gradient_direction(self):
        loss = MSELoss()
        predictions = np.array([[2.0]])
        targets = np.array([[0.0]])
        loss(predictions, targets)
        grad = loss.backward()
        assert grad[0, 0] > 0


class TestOptimizers:
    def _quadratic_parameter(self):
        return Parameter(np.array([5.0, -3.0], dtype=np.float32))

    def test_sgd_moves_against_gradient(self):
        parameter = self._quadratic_parameter()
        optimizer = SGD([parameter], lr=0.1)
        parameter.accumulate_grad(2 * parameter.data)
        optimizer.step()
        assert np.all(np.abs(parameter.data) < np.array([5.0, 3.0]))

    def test_sgd_converges_on_quadratic(self):
        parameter = self._quadratic_parameter()
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            parameter.accumulate_grad(2 * parameter.data)
            optimizer.step()
        assert np.allclose(parameter.data, 0.0, atol=1e-4)

    def test_momentum_converges_on_quadratic(self):
        parameter = self._quadratic_parameter()
        optimizer = MomentumSGD([parameter], lr=0.05, momentum=0.9)
        for _ in range(300):
            optimizer.zero_grad()
            parameter.accumulate_grad(2 * parameter.data)
            optimizer.step()
        assert np.allclose(parameter.data, 0.0, atol=1e-3)

    def test_momentum_velocity_accessible(self):
        parameter = self._quadratic_parameter()
        optimizer = MomentumSGD([parameter], lr=0.1)
        parameter.accumulate_grad(np.ones(2, dtype=np.float32))
        optimizer.step()
        assert np.any(optimizer.velocity_of(parameter) != 0)

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.ones(4, dtype=np.float32))
        optimizer = MomentumSGD([parameter], lr=0.1, momentum=0.0, weight_decay=1.0)
        parameter.accumulate_grad(np.zeros(4, dtype=np.float32))
        optimizer.step()
        assert np.all(parameter.data < 1.0)

    def test_adam_converges_on_quadratic(self):
        parameter = self._quadratic_parameter()
        optimizer = Adam([parameter], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            parameter.accumulate_grad(2 * parameter.data)
            optimizer.step()
        assert np.allclose(parameter.data, 0.0, atol=1e-2)

    def test_parameters_without_grad_are_skipped(self):
        parameter = Parameter(np.ones(3, dtype=np.float32))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()
        assert np.allclose(parameter.data, 1.0)

    def test_rejects_non_positive_learning_rate(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)
