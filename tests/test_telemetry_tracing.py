"""Tracer/span semantics, JSONL export and rotation, record schema.

The tracing contract: enabled tracers write one schema-valid JSON object
per finished span with correct parent/trace linkage (per thread), the
writer rotates segments by size and prunes the oldest, and the disabled
tracer returns one shared no-op span object so instrumented code paths
cost nothing and write nothing.
"""

import json
import threading

import pytest

from repro.telemetry import (
    Span,
    TelemetryRecordError,
    Tracer,
    configure,
    get_tracer,
    traced,
    validate_record,
)
from repro.telemetry.schema import iter_records, validate_file
from repro.telemetry.tracing import NOOP_SPAN, JsonlWriter


@pytest.fixture(autouse=True)
def _isolated_global_tracer():
    """Every test leaves the process-wide tracer disabled."""
    yield
    configure(None)


def read_records(directory):
    return [record for _, _, record in iter_records(directory)]


class TestSpans:
    def test_nested_spans_share_trace_and_link_parents(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("outer", model="snli") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        records = read_records(tmp_path)
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["attributes"] == {"model": "snli"}

    def test_sibling_roots_get_distinct_traces(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = read_records(tmp_path)
        assert first["trace_id"] != second["trace_id"]
        assert first["span_id"] != second["span_id"]

    def test_set_merges_attributes_and_drops_none(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("op", keep=1, skip=None) as span:
            span.set(layers=4, absent=None)
        (record,) = read_records(tmp_path)
        assert record["attributes"] == {"keep": 1, "layers": 4}

    def test_exception_records_error_attribute_and_propagates(self, tmp_path):
        tracer = Tracer(tmp_path)
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("faulty"):
                raise ValueError("boom")
        (record,) = read_records(tmp_path)
        assert record["attributes"]["error"] == "ValueError: boom"
        assert record["duration_s"] >= 0.0
        assert tracer.current_span() is None

    def test_threads_do_not_cross_link(self, tmp_path):
        tracer = Tracer(tmp_path)
        seen = {}

        def worker(label):
            with tracer.span(label) as span:
                seen[label] = (span.trace_id, span.parent_id)

        with tracer.span("main-root"):
            threads = [
                threading.Thread(target=worker, args=(f"t{i}",))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        for trace_id, parent_id in seen.values():
            # Worker spans opened on other threads are their own roots,
            # not children of the main thread's open span.
            assert parent_id is None
        assert len({trace for trace, _ in seen.values()}) == 4

    def test_every_emitted_record_is_schema_valid(self, tmp_path):
        tracer = Tracer(tmp_path)
        with tracer.span("outer", model="snli"):
            with tracer.span("inner"):
                pass
        for record in read_records(tmp_path):
            assert validate_record(record) == "span"
        counts = validate_file(tmp_path)
        assert counts == {"span": 2}


class TestDisabledTracer:
    def test_disabled_span_is_the_shared_noop(self):
        tracer = Tracer(None)
        span = tracer.span("anything", layers=3)
        assert span is NOOP_SPAN
        assert span.set(more=1) is span
        with span:
            pass
        assert not tracer.enabled
        assert tracer.spans_emitted == 0

    def test_describe_reports_status(self, tmp_path):
        assert Tracer(None).describe() == {
            "enabled": False, "dir": None, "spans_emitted": 0,
        }
        tracer = Tracer(tmp_path)
        with tracer.span("op"):
            pass
        description = tracer.describe()
        assert description["enabled"] is True
        assert description["dir"] == str(tmp_path)
        assert description["spans_emitted"] == 1


class TestGlobalTracer:
    def test_env_variable_enables_global_tracer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
        configure(None)          # force the lazy rebuild to re-read env
        import repro.telemetry.tracing as tracing
        tracing._GLOBAL_TRACER = None
        tracer = get_tracer()
        assert tracer.enabled and tracer.directory == str(tmp_path)

    def test_configure_same_directory_keeps_tracer(self, tmp_path):
        first = configure(tmp_path)
        with first.span("op"):
            pass
        again = configure(tmp_path)
        assert again is first
        assert again.spans_emitted == 1
        other = configure(tmp_path / "elsewhere")
        assert other is not first

    def test_traced_decorator_resolves_tracer_at_call_time(self, tmp_path):
        @traced("custom.name", flavor="test")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3          # disabled: no records, result intact
        configure(tmp_path)
        assert add(3, 4) == 7
        (record,) = read_records(tmp_path)
        assert record["name"] == "custom.name"
        assert record["attributes"] == {"flavor": "test"}


class TestJsonlWriter:
    def test_rotation_by_size_and_pruning(self, tmp_path):
        writer = JsonlWriter(tmp_path, max_bytes=200, max_files=3)
        for index in range(40):
            writer.write({"type": "filler", "index": index, "pad": "x" * 40})
        segments = sorted(tmp_path.glob("events-*.jsonl"))
        assert 1 < len(segments) <= 3
        # Numbering keeps ascending: the earliest segments were pruned.
        assert segments[-1].name != "events-00001.jsonl"
        for segment in segments:
            assert segment.stat().st_size <= 200 + 100

    def test_restart_resumes_highest_segment(self, tmp_path):
        JsonlWriter(tmp_path).write({"type": "x", "n": 1})
        writer = JsonlWriter(tmp_path)
        assert writer.current_path.name == "events-00001.jsonl"
        writer.write({"type": "x", "n": 2})
        lines = writer.current_path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]


class TestSchema:
    def test_validate_record_rejects_bad_documents(self):
        good = None
        tracer = Tracer(None)
        span = Span(tracer, "op", trace_id="t" * 32, parent_id=None,
                    attributes={})
        good = span.to_record()
        assert validate_record(good) == "span"
        for field, value in [
            ("type", "bogus"), ("trace_id", ""), ("span_id", 7),
            ("duration_s", -1.0), ("attributes", []), ("pid", True),
            ("parent_id", 3.5), ("start_s", "now"),
        ]:
            broken = dict(good, **{field: value})
            with pytest.raises(TelemetryRecordError):
                validate_record(broken)
        with pytest.raises(TelemetryRecordError):
            validate_record({"type": "span"})
        with pytest.raises(TelemetryRecordError):
            validate_record([])

    def test_metrics_records_validate(self, tmp_path):
        from repro.telemetry import get_registry

        tracer = Tracer(tmp_path)
        tracer.emit_metrics(get_registry())
        (record,) = read_records(tmp_path)
        assert validate_record(record) == "metrics"

    def test_validate_file_reports_line_numbers(self, tmp_path):
        path = tmp_path / "events-00001.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(TelemetryRecordError):
            validate_file(tmp_path)
