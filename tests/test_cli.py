"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "alexnet"])
        assert args.model == "alexnet"
        assert args.epochs == 2
        assert args.datatype == "fp32"

    def test_simulate_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "not-a-model"])

    def test_sweep_arguments(self):
        args = build_parser().parse_args(
            ["sweep", "squeezenet", "--knob", "staging", "--values", "2,3"]
        )
        assert args.knob == "staging"
        assert args.values == "2,3"

    def test_roofline_defaults(self):
        args = build_parser().parse_args(["roofline", "snli"])
        assert args.model == "snli"
        assert args.dram_bandwidth_gbps is None   # Table 2 peak at runtime
        assert args.sram_kb is None
        # None, not "vectorized": the engine-option helper resolves the
        # backend (REPRO_BACKEND fallback) so the CLI cannot shadow it.
        assert args.backend is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.backend is None

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_simulate_and_roofline_take_format_json(self):
        assert build_parser().parse_args(
            ["simulate", "snli", "--format", "json"]).format == "json"
        assert build_parser().parse_args(
            ["roofline", "snli", "--format", "json"]).format == "json"

    def test_roofline_accepts_hierarchy_flags(self):
        args = build_parser().parse_args([
            "roofline", "alexnet", "--dram-bandwidth-gbps", "12.8",
            "--sram-kb", "256", "--sram-bandwidth-gbps", "100",
        ])
        assert args.dram_bandwidth_gbps == 12.8
        assert args.sram_kb == 256
        assert args.sram_bandwidth_gbps == 100.0


class TestCommands:
    def test_list_models_prints_registry(self, capsys):
        assert main(["list-models"]) == 0
        output = capsys.readouterr().out
        assert "alexnet" in output
        assert "resnet50_DS90" in output
        assert "sparse" in output.lower()

    def test_simulate_small_run(self, capsys):
        exit_code = main([
            "simulate", "snli", "--epochs", "1", "--batches-per-epoch", "1",
            "--batch-size", "4", "--max-groups", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "TensorDash vs baseline" in output
        assert "Total" in output
        assert "energy efficiency" in output.lower()

    def test_sweep_staging_depth(self, capsys):
        exit_code = main([
            "sweep", "snli", "--knob", "staging", "--values", "2,3",
            "--epochs", "1", "--max-groups", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "staging=2" in output
        assert "staging=3" in output

    def test_sweep_datatype(self, capsys):
        exit_code = main([
            "sweep", "snli", "--knob", "datatype", "--values", "fp32,bfloat16",
            "--epochs", "1", "--max-groups", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "datatype=bfloat16" in output

    def test_roofline_smoke(self, capsys):
        """Tier-1 smoke for the new subcommand: a starved-bandwidth run
        classifies operations memory-bound and reports the stall split."""
        exit_code = main([
            "roofline", "snli", "--epochs", "1", "--batches-per-epoch", "1",
            "--batch-size", "4", "--max-groups", "8",
            "--dram-bandwidth-gbps", "2",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ridge point" in output
        assert "Memory-bound operations" in output
        assert "dram" in output
        assert "Speedup (with stalls)" in output

    def test_roofline_rejects_bad_bandwidth(self):
        with pytest.raises(SystemExit):
            main([
                "roofline", "snli", "--epochs", "1",
                "--dram-bandwidth-gbps", "-3",
            ])

    def test_sweep_dram_bandwidth_knob(self, capsys):
        exit_code = main([
            "sweep", "snli", "--knob", "dram_bandwidth_gbps",
            "--values", "2,51.2", "--epochs", "1", "--max-groups", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "dram_bandwidth_gbps=2" in output
        assert "dram_bandwidth_gbps=51.2" in output

    def test_simulate_format_json_is_a_result_envelope(self, capsys):
        import json

        from repro.api.schema import SCHEMA_VERSION, ApiResult

        exit_code = main([
            "simulate", "snli", "--epochs", "1", "--batches-per-epoch", "1",
            "--batch-size", "4", "--max-groups", "8", "--format", "json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "simulate"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "Total" in payload["result"]["speedups"]
        # The document parses back into a validated envelope.
        envelope = ApiResult.from_dict(payload)
        assert envelope.result.model == "snli"

    def test_roofline_format_json_is_a_result_envelope(self, capsys):
        import json

        from repro.api.schema import ApiResult

        exit_code = main([
            "roofline", "snli", "--epochs", "1", "--batches-per-epoch", "1",
            "--batch-size", "4", "--max-groups", "8",
            "--dram-bandwidth-gbps", "2", "--format", "json",
        ])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "roofline"
        envelope = ApiResult.from_dict(payload)
        assert envelope.result.total_operations > 0
        assert envelope.result.roofline["points"]
