"""Schema round-trips and validation errors for the ``repro.api`` types.

Every request/result type must satisfy ``from_dict(to_dict(x)) == x`` —
including through an actual ``json.dumps``/``json.loads`` cycle — and
every invalid document must fail with a :class:`SchemaError` that names
the offending field.
"""

import json

import pytest

from repro.api.schema import (
    SCHEMA_VERSION,
    ApiResult,
    ExploreRequest,
    ExploreResult,
    RooflineRequest,
    RooflineResult,
    SchemaError,
    SimulateRequest,
    SimulateResult,
    SweepRequest,
    SweepResult,
    request_from_dict,
)

TINY_SPEC = {
    "name": "tiny",
    "workloads": ["snli"],
    "knobs": {"staging": [2, 3]},
    "epochs": 1,
    "batches_per_epoch": 1,
    "batch_size": 4,
    "max_groups": 8,
}


def _sample_instances():
    """One representative instance of every schema type."""
    simulate_result = SimulateResult(
        model="snli",
        config="16 tiles",
        potentials={"AxW": 1.5, "Total": 1.4},
        speedups={"AxW": 1.2, "Total": 1.3},
        core_energy_efficiency=1.1,
        overall_energy_efficiency=1.05,
    )
    roofline_result = RooflineResult(
        model="snli",
        config="16 tiles",
        roofline={
            "model": "snli",
            "peak_macs_per_cycle": 4096.0,
            "dram_bytes_per_cycle": 4.0,
            "ridge_point": 1024.0,
            "points": [
                {
                    "layer": "fc1", "operation": "AxW", "macs": 100,
                    "dram_bytes": 40, "compute_cycles": 10,
                    "total_cycles": 12, "stall_cycles": 2,
                    "intensity": 2.5, "achieved_macs_per_cycle": 8.33,
                    "stall_fraction": 0.17, "bound": "dram",
                },
            ],
        },
        memory_bound_operations=1,
        total_operations=3,
        stall_fraction=0.2,
        speedup=1.1,
        compute_speedup=1.4,
    )
    study_doc = {
        "spec": dict(TINY_SPEC),
        "objectives": ["speedup (max)"],
        "points": [],
        "frontier": [],
        "best_per_objective": {},
        "resumed_points": 0,
        "engine": {"backend": "vectorized", "layers_simulated": 4},
    }
    return [
        SimulateRequest(model="snli"),
        SimulateRequest(model="alexnet", epochs=1, batches_per_epoch=1,
                        batch_size=4, max_groups=8, datatype="bfloat16", seed=7),
        RooflineRequest(model="snli"),
        RooflineRequest(model="snli", dram_bandwidth_gbps=2.0,
                        sram_bandwidth_gbps=100.0, sram_kb=256, seed=1),
        SweepRequest(model="snli"),
        SweepRequest(model="snli", knob="staging", values=[2, 3], epochs=1,
                     max_groups=8, seed=0),
        SweepRequest(model="snli", knob="datatype", values=["fp32", "bfloat16"]),
        ExploreRequest(spec=dict(TINY_SPEC)),
        ExploreRequest(spec=dict(TINY_SPEC), study_dir="/tmp/study",
                       resume=True, sample=1, seed=3, objectives=["speedup"]),
        simulate_result,
        roofline_result,
        SweepResult(model="snli", knob="staging", values=[2, 3], study=study_doc),
        ExploreResult(study=study_doc),
        ApiResult(kind="simulate", result=simulate_result,
                  engine={"backend": "vectorized", "cache_hits": 4},
                  elapsed_seconds=0.25),
        ApiResult(kind="roofline", result=roofline_result),
    ]


class TestRoundTrips:
    @pytest.mark.parametrize(
        "instance", _sample_instances(),
        ids=lambda instance: type(instance).__name__,
    )
    def test_dict_round_trip(self, instance):
        assert type(instance).from_dict(instance.to_dict()) == instance

    @pytest.mark.parametrize(
        "instance", _sample_instances(),
        ids=lambda instance: type(instance).__name__,
    )
    def test_json_round_trip(self, instance):
        wire = json.dumps(instance.to_dict())
        assert type(instance).from_dict(json.loads(wire)) == instance

    def test_requests_are_tagged(self):
        payload = SimulateRequest(model="snli").to_dict()
        assert payload["kind"] == "simulate"
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_request_from_dict_dispatches_on_kind(self):
        for request in (SimulateRequest(model="snli"),
                        RooflineRequest(model="snli"),
                        SweepRequest(model="snli"),
                        ExploreRequest(spec=dict(TINY_SPEC))):
            parsed = request_from_dict(request.to_dict())
            assert parsed == request
            assert type(parsed) is type(request)


class TestValidationErrors:
    def _field_of(self, excinfo):
        return excinfo.value.field

    def test_unknown_model_names_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            SimulateRequest(model="not-a-model")
        assert self._field_of(excinfo) == "SimulateRequest.model"

    def test_bad_epochs_names_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            SimulateRequest(model="snli", epochs=0)
        assert self._field_of(excinfo) == "SimulateRequest.epochs"

    def test_bad_datatype_names_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            SimulateRequest(model="snli", datatype="fp64")
        assert self._field_of(excinfo) == "SimulateRequest.datatype"

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError) as excinfo:
            SimulateRequest.from_dict({"model": "snli", "epoch": 3})
        assert self._field_of(excinfo) == "SimulateRequest.epoch"

    def test_missing_required_field(self):
        with pytest.raises(SchemaError) as excinfo:
            SimulateRequest.from_dict({"epochs": 2})
        assert self._field_of(excinfo) == "SimulateRequest.model"

    def test_newer_schema_version_rejected(self):
        payload = SimulateRequest(model="snli").to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError) as excinfo:
            SimulateRequest.from_dict(payload)
        assert "schema_version" in self._field_of(excinfo)

    def test_kind_mismatch_rejected(self):
        payload = SimulateRequest(model="snli").to_dict()
        payload["kind"] = "sweep"
        with pytest.raises(SchemaError):
            SimulateRequest.from_dict(payload)

    def test_negative_bandwidth_names_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            RooflineRequest(model="snli", dram_bandwidth_gbps=-3)
        assert self._field_of(excinfo) == "RooflineRequest.dram_bandwidth_gbps"

    def test_bad_knob_names_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            SweepRequest(model="snli", knob="wings")
        assert self._field_of(excinfo) == "SweepRequest.knob"

    def test_bad_knob_value_names_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            SweepRequest(model="snli", knob="rows", values=[0])
        assert self._field_of(excinfo) == "SweepRequest.values"

    def test_empty_values_rejected(self):
        with pytest.raises(SchemaError) as excinfo:
            SweepRequest(model="snli", values=[])
        assert self._field_of(excinfo) == "SweepRequest.values"

    def test_bad_spec_names_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            ExploreRequest(spec={"workloads": ["not-a-model"]})
        assert self._field_of(excinfo) == "ExploreRequest.spec"

    def test_bad_objectives_name_the_field(self):
        with pytest.raises(SchemaError) as excinfo:
            ExploreRequest(spec=dict(TINY_SPEC), objectives=["made_up_metric"])
        assert self._field_of(excinfo) == "ExploreRequest.objectives"

    def test_request_from_dict_requires_kind(self):
        with pytest.raises(SchemaError) as excinfo:
            request_from_dict({"model": "snli"})
        assert self._field_of(excinfo) == "request.kind"

    def test_request_from_dict_rejects_unknown_kind(self):
        with pytest.raises(SchemaError) as excinfo:
            request_from_dict({"kind": "teleport", "model": "snli"})
        assert self._field_of(excinfo) == "request.kind"

    def test_envelope_requires_matching_result_type(self):
        with pytest.raises(SchemaError) as excinfo:
            ApiResult(kind="sweep", result=SimulateResult(model="snli", config="c"))
        assert self._field_of(excinfo) == "ApiResult.result"

    def test_envelope_from_dict_requires_result(self):
        with pytest.raises(SchemaError) as excinfo:
            ApiResult.from_dict({"kind": "simulate"})
        assert self._field_of(excinfo) == "ApiResult.result"

    def test_envelope_rejects_non_object_engine(self):
        payload = ApiResult(
            kind="simulate",
            result=SimulateResult(model="snli", config="c"),
        ).to_dict()
        payload["engine"] = 123
        with pytest.raises(SchemaError) as excinfo:
            ApiResult.from_dict(payload)
        assert self._field_of(excinfo) == "ApiResult.engine"


class TestResolvedSpec:
    def test_sample_and_seed_overrides_compose(self):
        request = ExploreRequest(spec=dict(TINY_SPEC), sample=1, seed=9)
        spec = request.resolved_spec()
        assert spec.mode == "random"
        assert spec.sample == 1
        assert spec.seed == 9

    def test_plain_spec_keeps_cartesian_mode(self):
        spec = ExploreRequest(spec=dict(TINY_SPEC)).resolved_spec()
        assert spec.mode == "cartesian"
        assert spec.space_size == 2
