"""Tests for sparsity monitoring and power gating."""

import numpy as np
import pytest

from repro.core.power_gating import PowerGateController, SparsityMonitor


class TestSparsityMonitor:
    def test_observe_counts_zeros(self):
        monitor = SparsityMonitor()
        record = monitor.observe("layer1", np.array([0.0, 1.0, 0.0, 2.0]))
        assert record.zeros == 2
        assert record.total == 4
        assert record.sparsity == pytest.approx(0.5)

    def test_sparsity_of_unseen_layer_is_zero(self):
        assert SparsityMonitor().sparsity_of("nope") == 0.0

    def test_latest_observation_wins(self):
        monitor = SparsityMonitor()
        monitor.observe("layer", np.zeros(10))
        monitor.observe("layer", np.ones(10))
        assert monitor.sparsity_of("layer") == 0.0

    def test_records_listing(self):
        monitor = SparsityMonitor()
        monitor.observe("a", np.zeros(4))
        monitor.observe("b", np.ones(4))
        assert [r.layer for r in monitor.records()] == ["a", "b"]

    def test_empty_tensor(self):
        record = SparsityMonitor().observe("empty", np.zeros(0))
        assert record.sparsity == 0.0


class TestPowerGateController:
    def test_enables_when_producer_is_sparse(self):
        controller = PowerGateController(threshold=0.05)
        controller.observe_output("conv1", np.array([0.0, 0.0, 1.0, 2.0]))
        assert controller.should_enable("conv2", producer_layer="conv1")

    def test_disables_when_producer_is_dense(self):
        controller = PowerGateController(threshold=0.05)
        controller.observe_output("glu1", np.ones(100))
        assert not controller.should_enable("glu2", producer_layer="glu1")

    def test_default_enabled_without_measurement(self):
        controller = PowerGateController()
        assert controller.should_enable("conv1")

    def test_static_disable_overrides_everything(self):
        controller = PowerGateController(static_disable=True)
        controller.observe_output("conv1", np.zeros(100))
        assert not controller.should_enable("conv2", producer_layer="conv1")

    def test_gated_fraction(self):
        controller = PowerGateController(threshold=0.5)
        controller.observe_output("sparse", np.zeros(10))
        controller.observe_output("dense", np.ones(10))
        controller.should_enable("a", producer_layer="sparse")
        controller.should_enable("b", producer_layer="dense")
        assert controller.gated_fraction() == pytest.approx(0.5)

    def test_gated_fraction_without_decisions(self):
        assert PowerGateController().gated_fraction() == 0.0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PowerGateController(threshold=1.5)

    def test_decisions_are_recorded(self):
        controller = PowerGateController()
        controller.should_enable("layer1")
        assert controller.decisions() == {"layer1": True}
