"""Tests for the pruning-during-training methods."""

import numpy as np
import pytest

from repro.models import build_resnet50
from repro.nn import Linear, Sequential, ReLU
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import MomentumSGD
from repro.pruning import (
    DynamicSparseReparameterization,
    MagnitudePruner,
    SparseMomentumPruner,
)
from repro.pruning.base import prunable_parameters


def small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Linear(32, 64, rng=rng), ReLU(), Linear(64, 32, rng=rng), ReLU(), Linear(32, 4, rng=rng)]
    )


def train_steps(model, pruner, steps=12, optimizer=None):
    rng = np.random.default_rng(1)
    loss = CrossEntropyLoss()
    optimizer = optimizer or MomentumSGD(model.parameters(), lr=0.05)
    if isinstance(pruner, SparseMomentumPruner):
        pruner.bind_optimizer(optimizer)
    for step in range(steps):
        x = rng.normal(size=(8, 32)).astype(np.float32)
        labels = rng.integers(0, 4, size=8)
        model.zero_grad()
        logits = model(x)
        loss(logits, labels)
        model.backward(loss.backward())
        optimizer.step()
        pruner(model, epoch=0, step=step)
    return model


class TestPrunableParameters:
    def test_selects_weight_matrices_only(self):
        model = small_model()
        parameters = prunable_parameters(model)
        assert len(parameters) == 3
        assert all(p.data.ndim == 2 for p in parameters)

    def test_conv_weights_are_prunable(self):
        model = build_resnet50()
        parameters = prunable_parameters(model)
        assert any(p.data.ndim == 4 for p in parameters)


class TestMagnitudePruner:
    def test_reaches_target_sparsity(self):
        pruner = MagnitudePruner(target_sparsity=0.8, ramp_steps=5)
        model = train_steps(small_model(), pruner, steps=10)
        assert pruner.weight_sparsity() == pytest.approx(0.8, abs=0.05)
        # The actual weights are zeroed, not just masked.
        zeros = sum(int(np.count_nonzero(p.data == 0)) for p in pruner.parameters())
        total = sum(p.size for p in pruner.parameters())
        assert zeros / total >= 0.7

    def test_ramp_is_gradual(self):
        pruner = MagnitudePruner(target_sparsity=0.9, ramp_steps=100)
        assert pruner.current_target(0) < pruner.current_target(50) < 0.9 + 1e-9

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            MagnitudePruner(target_sparsity=1.0)


class TestDynamicSparseReparameterization:
    def test_holds_target_sparsity_throughout(self):
        pruner = DynamicSparseReparameterization(target_sparsity=0.9, update_every=2)
        model = train_steps(small_model(), pruner, steps=12)
        assert pruner.weight_sparsity() == pytest.approx(0.9, abs=0.05)

    def test_topology_changes_over_time(self):
        """Prune-and-regrow must move connections, not just freeze a mask."""
        pruner = DynamicSparseReparameterization(target_sparsity=0.8, update_every=1, seed=3)
        model = small_model(seed=3)
        rng = np.random.default_rng(2)
        loss = CrossEntropyLoss()
        optimizer = MomentumSGD(model.parameters(), lr=0.05)

        def run_steps(n):
            for step in range(n):
                x = rng.normal(size=(8, 32)).astype(np.float32)
                labels = rng.integers(0, 4, size=8)
                model.zero_grad()
                loss(model(x), labels)
                model.backward(loss.backward())
                optimizer.step()
                pruner(model, epoch=0, step=step)

        run_steps(3)
        masks_before = {k: m.copy() for k, m in pruner.masks.items()}
        run_steps(5)
        changed = any(
            not np.array_equal(masks_before[k], pruner.masks[k]) for k in masks_before
        )
        assert changed

    def test_training_still_reduces_loss_under_pruning(self):
        pruner = DynamicSparseReparameterization(target_sparsity=0.5, update_every=4)
        model = small_model(seed=5)
        rng = np.random.default_rng(5)
        loss = CrossEntropyLoss()
        optimizer = MomentumSGD(model.parameters(), lr=0.05)
        x = rng.normal(size=(32, 32)).astype(np.float32)
        labels = rng.integers(0, 4, size=32)
        losses = []
        for step in range(30):
            model.zero_grad()
            losses.append(loss(model(x), labels))
            model.backward(loss.backward())
            optimizer.step()
            pruner(model, epoch=0, step=step)
        assert losses[-1] < losses[0]


class TestSparseMomentum:
    def test_holds_target_sparsity(self):
        model = small_model(seed=7)
        optimizer = MomentumSGD(model.parameters(), lr=0.05)
        pruner = SparseMomentumPruner(target_sparsity=0.9, update_every=2)
        train_steps(model, pruner, steps=12, optimizer=optimizer)
        assert pruner.weight_sparsity() == pytest.approx(0.9, abs=0.05)

    def test_regrowth_follows_momentum(self):
        """Regrown positions should be those with the largest momentum."""
        model = small_model(seed=8)
        optimizer = MomentumSGD(model.parameters(), lr=0.05)
        pruner = SparseMomentumPruner(target_sparsity=0.5, update_every=1, seed=8)
        pruner.bind_optimizer(optimizer)
        train_steps(model, pruner, steps=6, optimizer=optimizer)
        assert pruner.weight_sparsity() == pytest.approx(0.5, abs=0.1)

    def test_works_without_momentum_optimizer(self):
        pruner = SparseMomentumPruner(target_sparsity=0.6, update_every=2)
        model = train_steps(small_model(seed=9), pruner, steps=8,
                            optimizer=MomentumSGD(small_model(seed=9).parameters(), lr=0.01))
        assert 0.0 < pruner.weight_sparsity() <= 0.7


class TestPrunedModelSparsityPropagation:
    def test_pruned_resnet_has_sparse_weights(self):
        """The resnet50_DS90 workload: weights end up ~90% zero."""
        model = build_resnet50()
        optimizer = MomentumSGD(model.parameters(), lr=0.01)
        pruner = DynamicSparseReparameterization(target_sparsity=0.9, update_every=1)
        rng = np.random.default_rng(10)
        loss = CrossEntropyLoss()
        for step in range(2):
            x = np.abs(rng.normal(size=(2, 3, 32, 32))).astype(np.float32)
            labels = rng.integers(0, 10, size=2)
            model.zero_grad()
            loss(model(x), labels)
            model.backward(loss.backward())
            optimizer.step()
            pruner(model, epoch=0, step=step)
        zeros = sum(int(np.count_nonzero(p.data == 0)) for p in prunable_parameters(model))
        total = sum(p.size for p in prunable_parameters(model))
        assert zeros / total > 0.8
