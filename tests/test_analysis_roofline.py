"""Tests for the roofline analysis and the memory-aware acceptance criteria.

The headline guarantees: with the hierarchy left unbounded the simulation
reproduces the compute-only numbers exactly, and with a finite-bandwidth
configuration at least one model-zoo layer is classified memory-bound with
stall cycles that lower the reported speedup.
"""

import pytest

from repro.analysis.roofline import (
    RooflinePoint,
    RooflineReport,
    format_roofline_report,
    operational_intensity,
    roofline_report,
)
from repro.core.config import AcceleratorConfig
from repro.models.registry import trace_workload
from repro.simulation.runner import ExperimentRunner
from repro.simulation.speedup import bandwidth_bound_speedup


@pytest.fixture(scope="module")
def snli_trace():
    return trace_workload(
        "snli", epochs=1, batches_per_epoch=1, batch_size=8, seed=0
    )


def run(config, trace, **kwargs):
    runner = ExperimentRunner(config, max_groups=16, **kwargs)
    return runner.run_final_epoch(trace)


class TestRooflineMath:
    def test_operational_intensity(self):
        assert operational_intensity(100, 50) == 2.0
        assert operational_intensity(0, 0) == 0.0
        assert operational_intensity(10, 0) == float("inf")
        with pytest.raises(ValueError):
            operational_intensity(-1, 1)

    def test_ridge_point_and_attainable(self):
        report = RooflineReport(
            model_name="m", peak_macs_per_cycle=4096.0, dram_bytes_per_cycle=102.4
        )
        assert report.ridge_point == pytest.approx(40.0)
        # Left of the ridge: the memory roof; right of it: the compute roof.
        assert report.attainable_macs_per_cycle(10.0) == pytest.approx(1024.0)
        assert report.attainable_macs_per_cycle(100.0) == pytest.approx(4096.0)
        assert report.classify(10.0) == "memory"
        assert report.classify(100.0) == "compute"

    def test_unbounded_has_no_ridge(self):
        report = RooflineReport(
            model_name="m", peak_macs_per_cycle=4096.0, dram_bytes_per_cycle=None
        )
        assert report.ridge_point is None
        assert report.attainable_macs_per_cycle(0.001) == 4096.0
        assert report.classify(0.001) == "compute"

    def test_point_properties(self):
        point = RooflinePoint(
            layer="conv1", operation="AxW", macs=1000, dram_bytes=500,
            compute_cycles=10, total_cycles=40, stall_cycles=30, bound="dram",
        )
        assert point.intensity == 2.0
        assert point.achieved_macs_per_cycle == 25.0
        assert point.stall_fraction == 0.75
        assert point.memory_bound


class TestRooflineReportFromModel:
    def test_unbounded_report_all_compute_bound(self, snli_trace):
        config = AcceleratorConfig()
        result = run(config, snli_trace)
        report = roofline_report(result, config)
        assert report.ridge_point is None
        assert report.points
        assert report.memory_bound_points() == []
        assert set(report.layer_bounds().values()) == {"compute"}

    def test_finite_bandwidth_classifies_model_zoo_layer_memory_bound(
        self, snli_trace
    ):
        """Acceptance: a bandwidth-starved config makes real layers stall."""
        free_config = AcceleratorConfig()
        tight_config = AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=2.0)
        free = run(free_config, snli_trace)
        tight = run(tight_config, snli_trace)
        report = roofline_report(tight, tight_config)
        assert report.memory_bound_points()
        assert "memory" not in report.layer_bounds().values()  # named levels
        assert any(b in ("dram", "sram") for b in report.layer_bounds().values())
        # The stalls lower the reported speedup against the unbounded run.
        assert tight.stall_cycles()["tensordash"] > 0
        assert tight.speedup() < free.speedup()
        # Achieved throughput never exceeds the roofline.
        for point in report.points:
            attainable = report.attainable_macs_per_cycle(point.intensity)
            assert point.achieved_macs_per_cycle <= attainable * (1 + 1e-9)

    def test_backends_identical_under_finite_hierarchy(self, snli_trace):
        config = AcceleratorConfig().with_hierarchy(
            dram_bandwidth_gbps=2.0, sram_kb=64
        )
        reference = run(config, snli_trace, backend="reference")
        vectorized = run(config, snli_trace, backend="vectorized")
        assert [r.layer_name for r in reference.layer_results] == [
            r.layer_name for r in vectorized.layer_results
        ]
        for ref, vec in zip(reference.layer_results, vectorized.layer_results):
            assert ref.operations == vec.operations
            assert ref.traffic == vec.traffic

    def test_format_roofline_report(self, snli_trace):
        config = AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=2.0)
        result = run(config, snli_trace)
        text = format_roofline_report(roofline_report(result, config))
        assert "ridge point" in text
        assert "bound" in text
        assert "dram" in text

    def test_as_dict_round_trips_to_json(self, snli_trace):
        import json

        config = AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=2.0)
        result = run(config, snli_trace)
        payload = roofline_report(result, config).as_dict()
        parsed = json.loads(json.dumps(payload))
        assert parsed["ridge_point"] == pytest.approx(payload["ridge_point"])
        assert parsed["memory_bound_points"] > 0
        assert len(parsed["points"]) == len(payload["points"])


class TestBandwidthBoundSpeedup:
    def test_degrades_toward_one_as_floor_rises(self):
        speedups = [
            bandwidth_bound_speedup(1000, 400, floor)
            for floor in (0, 400, 700, 1000, 2000)
        ]
        assert speedups[0] == pytest.approx(2.5)
        assert speedups == sorted(speedups, reverse=True)
        assert speedups[-1] == 1.0

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            bandwidth_bound_speedup(-1, 1, 1)
