"""Tests for the baseline and TensorDash processing elements."""

import numpy as np
import pytest

from repro.core.config import PEConfig
from repro.core.pe import BaselinePE, TensorDashPE


def make_streams(rows=40, lanes=16, a_sparsity=0.0, b_sparsity=0.6, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random((rows, lanes))
    b = rng.random((rows, lanes))
    a[rng.random((rows, lanes)) < a_sparsity] = 0.0
    b[rng.random((rows, lanes)) < b_sparsity] = 0.0
    return a, b


class TestBaselinePE:
    def test_cycles_equal_rows(self):
        a, b = make_streams(rows=25)
        result = BaselinePE().process(a, b)
        assert result.cycles == 25

    def test_output_is_full_dot_product(self):
        a, b = make_streams(rows=10)
        result = BaselinePE().process(a, b)
        assert result.output == pytest.approx(float(np.sum(a * b)))

    def test_all_mac_slots_count_as_performed(self):
        a, b = make_streams(rows=10)
        result = BaselinePE().process(a, b)
        assert result.macs_performed == result.macs_total == 10 * 16

    def test_rejects_mismatched_shapes(self):
        a, b = make_streams(rows=10)
        with pytest.raises(ValueError):
            BaselinePE().process(a, b[:5])


class TestTensorDashPE:
    def test_functional_equivalence_one_side(self):
        """Skipping ineffectual MACs never changes the accumulated output."""
        for seed in range(5):
            a, b = make_streams(b_sparsity=0.7, seed=seed)
            baseline = BaselinePE().process(a, b)
            result, _ = TensorDashPE().process(a, b)
            assert result.output == pytest.approx(baseline.output, rel=1e-9)

    def test_functional_equivalence_two_side(self):
        config = PEConfig(two_side=True)
        for seed in range(5):
            a, b = make_streams(a_sparsity=0.4, b_sparsity=0.4, seed=seed)
            baseline = BaselinePE(config).process(a, b)
            result, _ = TensorDashPE(config).process(a, b)
            assert result.output == pytest.approx(baseline.output, rel=1e-9)

    def test_never_slower_than_baseline(self):
        for sparsity in (0.0, 0.2, 0.5, 0.9):
            a, b = make_streams(b_sparsity=sparsity, seed=1)
            baseline = BaselinePE().process(a, b)
            result, _ = TensorDashPE().process(a, b)
            assert result.cycles <= baseline.cycles

    def test_dense_streams_match_baseline_cycles(self):
        a, b = make_streams(b_sparsity=0.0)
        result, _ = TensorDashPE().process(a, b)
        assert result.cycles == a.shape[0]

    def test_speedup_capped_by_staging_depth(self):
        a, b = make_streams(b_sparsity=0.99, rows=90)
        pe = TensorDashPE()
        speedup = pe.speedup_over_baseline(a, b)
        assert speedup <= 3.0 + 1e-9

    def test_two_side_skips_more_than_one_side(self):
        a, b = make_streams(a_sparsity=0.5, b_sparsity=0.5, rows=120, seed=3)
        one_side, _ = TensorDashPE(PEConfig(two_side=False)).process(a, b)
        two_side, _ = TensorDashPE(PEConfig(two_side=True)).process(a, b)
        assert two_side.macs_performed <= one_side.macs_performed
        assert two_side.cycles <= one_side.cycles

    def test_macs_performed_equal_nonzero_b_count_one_side(self):
        a, b = make_streams(b_sparsity=0.6, seed=2)
        result, _ = TensorDashPE().process(a, b)
        assert result.macs_performed == int(np.count_nonzero(b))

    def test_skipped_macs_property(self):
        a, b = make_streams(b_sparsity=0.6, seed=2)
        result, _ = TensorDashPE().process(a, b)
        assert result.skipped_macs == result.macs_total - result.macs_performed

    def test_deeper_staging_buffer_is_at_least_as_fast(self):
        a, b = make_streams(b_sparsity=0.8, rows=90, seed=4)
        shallow, _ = TensorDashPE(PEConfig(staging_depth=2)).process(a, b)
        deep, _ = TensorDashPE(PEConfig(staging_depth=3)).process(a, b)
        assert deep.cycles <= shallow.cycles

    def test_schedules_returned_per_cycle(self):
        a, b = make_streams(rows=30, seed=5)
        result, schedules = TensorDashPE().process(a, b)
        assert len(schedules) == result.cycles

    def test_rejects_wrong_lane_count(self):
        a = np.ones((10, 8))
        with pytest.raises(ValueError):
            TensorDashPE().process(a, a)


class TestRandomSparsitySweep:
    """PE-level version of the Fig. 20 experiment shape."""

    def test_speedup_tracks_sparsity(self):
        rng = np.random.default_rng(0)
        previous = 1.0
        for sparsity in (0.1, 0.3, 0.5, 0.7, 0.9):
            a = rng.random((300, 16))
            b = rng.random((300, 16))
            b[rng.random((300, 16)) < sparsity] = 0.0
            speedup = TensorDashPE().speedup_over_baseline(a, b)
            ideal = min(1.0 / (1.0 - sparsity), 3.0)
            assert speedup >= previous - 0.05        # monotone (small tolerance)
            assert speedup <= ideal + 1e-9           # never beats the ideal
            assert speedup >= 0.75 * ideal           # captures most of it
            previous = speedup
