"""Property + unit tests for the lineage diff engine (:mod:`repro.lineage`).

The diff engine's contract is algebraic, so the core guarantees are
hypothesis properties over generated manifests:

* **identity** — ``diff(A, A)`` is empty for any manifest, at any
  tolerance;
* **anti-symmetry** — swapping the sides exactly negates every delta
  and mirrors improved/regressed and entered/left;
* **tolerance monotonicity** — raising the tolerance never turns a held
  metric into a changed one;
* **robust loading** — legacy (compact ``manifest.json``) and torn
  segment files load and diff without crashing, and both serialised
  forms of the same records diff as identical.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lineage.bench import (
    DEFAULT_BENCH_TOLERANCE,
    WATCHED_METRICS,
    diff_bench,
    load_bench_side,
)
from repro.lineage.diff import (
    CHANGED,
    HELD,
    IMPROVED,
    REGRESSED,
    classify,
    diff_snapshots,
    values_hold,
)
from repro.lineage.snapshot import ManifestSnapshot, SnapshotError, SnapshotPoint

REPO_ROOT = Path(__file__).resolve().parent.parent

# ----------------------------------------------------------------------
# strategies

#: Metric names mixing known orientations (speedup: higher-better,
#: area_overhead: lower-better) with an unregistered one.
METRIC_NAMES = ("speedup", "area_overhead", "custom_metric")

finite_metric = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def point_records(draw, index: int = 0):
    workload = draw(st.sampled_from(("snli", "resnet50", "gcn")))
    scenario = draw(st.sampled_from(("dense", "random:0.9")))
    staging = draw(st.sampled_from((1, 2, 4)))
    rows = draw(st.sampled_from((4, 8)))
    metrics = {
        name: draw(finite_metric)
        for name in draw(
            st.sets(st.sampled_from(METRIC_NAMES), min_size=1).map(sorted)
        )
    }
    point_id = f"{workload}-{scenario}-{staging}-{rows}-{index}"
    return {
        "point_id": point_id,
        "workload": workload,
        "scenario": scenario,
        "knobs": [["rows", rows], ["staging", staging]],
        "label": point_id,
        "config_label": "cfg",
        "metrics": metrics,
    }


@st.composite
def manifests(draw, min_points: int = 0):
    count = draw(st.integers(min_value=min_points, max_value=6))
    records = [draw(point_records(index=i)) for i in range(count)]
    return {
        "version": 1,
        "spec_fingerprint": draw(st.sampled_from(("fp-a", "fp-b"))),
        "completed": {record["point_id"]: record for record in records},
    }


@st.composite
def manifest_pairs(draw):
    """Two manifests sharing point ids but with freely perturbed metrics."""
    base = draw(manifests(min_points=1))
    other = json.loads(json.dumps(base))
    for record in other["completed"].values():
        for name in list(record["metrics"]):
            if draw(st.booleans()):
                record["metrics"][name] = draw(finite_metric)
    return base, other


# ----------------------------------------------------------------------
# the tolerance predicate itself

class TestValuesHold:
    @given(finite_metric, finite_metric,
           st.floats(min_value=0, max_value=10))
    @settings(max_examples=300, deadline=None)
    def test_symmetric(self, a, b, tolerance):
        assert values_hold(a, b, tolerance) == values_hold(b, a, tolerance)

    @given(finite_metric, st.floats(min_value=0, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_identity_holds_at_any_tolerance(self, a, tolerance):
        assert values_hold(a, a, tolerance)

    @given(finite_metric, finite_metric,
           st.floats(min_value=0, max_value=5),
           st.floats(min_value=0, max_value=5))
    @settings(max_examples=300, deadline=None)
    def test_monotone_in_tolerance(self, a, b, t1, t2):
        low, high = sorted((t1, t2))
        if values_hold(a, b, low):
            assert values_hold(a, b, high)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            values_hold(1.0, 2.0, -0.1)

    def test_classification_uses_orientation(self):
        assert classify("speedup", 2.0, 1.0, 0.0) == REGRESSED
        assert classify("speedup", 1.0, 2.0, 0.0) == IMPROVED
        assert classify("area_overhead", 0.1, 0.2, 0.0) == REGRESSED
        assert classify("area_overhead", 0.2, 0.1, 0.0) == IMPROVED
        assert classify("custom_metric", 1.0, 2.0, 0.0) == CHANGED
        assert classify("speedup", 1.0, 1.0, 0.0) == HELD


# ----------------------------------------------------------------------
# diff properties

class TestDiffProperties:
    @given(manifests(), st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_identity_is_empty(self, manifest, tolerance):
        snapshot = ManifestSnapshot.from_payload(manifest)
        diff = diff_snapshots(snapshot, snapshot, tolerance=tolerance)
        assert diff.identical
        assert diff.deltas == []
        assert diff.added == [] and diff.removed == []
        assert diff.frontier.get("entered", []) == []
        assert diff.frontier.get("left", []) == []
        assert diff.attribution == []

    @given(manifest_pairs(), st.floats(min_value=0, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_anti_symmetry(self, pair, tolerance):
        a, b = pair
        sa = ManifestSnapshot.from_payload(a, source="a")
        sb = ManifestSnapshot.from_payload(b, source="b")
        forward = diff_snapshots(sa, sb, tolerance=tolerance)
        backward = diff_snapshots(sb, sa, tolerance=tolerance)

        flip = {IMPROVED: REGRESSED, REGRESSED: IMPROVED, CHANGED: CHANGED}
        fwd = {
            (d.point_id, d.metric): (d.delta, d.classification)
            for d in forward.deltas
        }
        bwd = {
            (d.point_id, d.metric): (d.delta, d.classification)
            for d in backward.deltas
        }
        assert set(fwd) == set(bwd)
        for key, (delta, classification) in fwd.items():
            assert bwd[key][0] == -delta
            assert bwd[key][1] == flip[classification]
        assert set(forward.added) == set(backward.removed)
        assert set(forward.removed) == set(backward.added)
        assert forward.frontier.get("entered") == backward.frontier.get("left")
        assert forward.frontier.get("left") == backward.frontier.get("entered")

    @given(manifest_pairs(),
           st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_tolerance_monotonicity(self, pair, t1, t2):
        a, b = pair
        low, high = sorted((t1, t2))
        sa = ManifestSnapshot.from_payload(a)
        sb = ManifestSnapshot.from_payload(b)
        loose = diff_snapshots(sa, sb, tolerance=high)
        tight = diff_snapshots(sa, sb, tolerance=low)
        loose_keys = {(d.point_id, d.metric) for d in loose.deltas}
        tight_keys = {(d.point_id, d.metric) for d in tight.deltas}
        assert loose_keys <= tight_keys


# ----------------------------------------------------------------------
# loading: legacy manifests, segments, torn files, study dirs

class TestSnapshotLoading:
    def _manifest(self):
        return {
            "version": 1,
            "spec_fingerprint": "fp",
            "completed": {
                "p1": {
                    "point_id": "p1", "workload": "snli", "scenario": "dense",
                    "knobs": [["staging", 2]], "label": "p1",
                    "config_label": "c", "metrics": {"speedup": 1.5},
                },
                "p2": {
                    "point_id": "p2", "workload": "snli", "scenario": "dense",
                    "knobs": [["staging", 4]], "label": "p2",
                    "config_label": "c", "metrics": {"speedup": 1.9},
                },
            },
        }

    def _segment_lines(self):
        manifest = self._manifest()
        lines = [json.dumps({
            "kind": "header", "version": 1, "spec_fingerprint": "fp",
        })]
        for record in manifest["completed"].values():
            lines.append(json.dumps({"kind": "point", "record": record}))
        return lines

    def test_legacy_manifest_round_trip(self, tmp_path):
        """Compact manifest.json (the pre-segment format) loads and
        diffs as identical to its own to_payload round-trip."""
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(self._manifest()))
        snapshot = ManifestSnapshot.from_file(path)
        assert len(snapshot) == 2
        assert snapshot.spec_fingerprint == "fp"
        round_tripped = ManifestSnapshot.from_payload(snapshot.to_payload())
        assert diff_snapshots(snapshot, round_tripped).identical

    def test_segment_equals_manifest(self, tmp_path):
        """The same records serialised as a segment diff as identical
        to the compact-manifest form."""
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(json.dumps(self._manifest()))
        segment_path = tmp_path / "run.jsonl"
        segment_path.write_text("\n".join(self._segment_lines()) + "\n")
        from_manifest = ManifestSnapshot.from_file(manifest_path)
        from_segment = ManifestSnapshot.from_file(segment_path)
        assert diff_snapshots(from_manifest, from_segment).identical

    def test_torn_segment_loads_without_crashing(self, tmp_path):
        """A segment truncated mid-record keeps every complete record."""
        lines = self._segment_lines()
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        path = tmp_path / "torn.jsonl"
        path.write_text(torn)
        snapshot = ManifestSnapshot.from_file(path)
        assert len(snapshot) == 1          # p2's record was torn
        assert any("torn" in warning for warning in snapshot.warnings)
        diff = diff_snapshots(snapshot, snapshot)
        assert diff.identical

    def test_study_dir_union_segment_wins(self, tmp_path):
        manifest = self._manifest()
        (tmp_path / "manifest.json").write_text(json.dumps(manifest))
        newer = dict(manifest["completed"]["p2"], metrics={"speedup": 3.0})
        segment = [
            json.dumps({"kind": "header", "version": 1,
                        "spec_fingerprint": "fp"}),
            json.dumps({"kind": "point", "record": newer}),
        ]
        (tmp_path / "manifest.segment.jsonl").write_text(
            "\n".join(segment) + "\n"
        )
        snapshot = ManifestSnapshot.from_file(tmp_path)
        assert snapshot.points["p2"].metrics["speedup"] == 3.0
        assert snapshot.points["p1"].metrics["speedup"] == 1.5

    def test_non_finite_metrics_are_dropped(self):
        record = self._manifest()["completed"]["p1"]
        record["metrics"] = {"speedup": float("nan"), "area_overhead": 0.5}
        point = SnapshotPoint.from_record(record)
        assert point.metrics == {"area_overhead": 0.5}

    def test_ignore_list_drops_metrics(self):
        payload = self._manifest()
        snapshot = ManifestSnapshot.from_payload(payload, ignore=("speedup",))
        assert all("speedup" not in p.metrics for p in snapshot.points.values())

    def test_rejects_junk(self, tmp_path):
        with pytest.raises(SnapshotError, match="neither"):
            ManifestSnapshot.from_payload({"nonsense": 1})
        with pytest.raises(SnapshotError, match="no such file"):
            ManifestSnapshot.from_file(tmp_path / "missing.json")
        with pytest.raises(SnapshotError, match="version"):
            ManifestSnapshot.from_payload({"version": 99, "completed": {}})

    def test_fingerprint_mismatch_warns_in_diff(self):
        a = ManifestSnapshot.from_payload(self._manifest())
        other = dict(self._manifest(), spec_fingerprint="other")
        b = ManifestSnapshot.from_payload(other)
        diff = diff_snapshots(a, b)
        assert diff.fingerprints_match is False
        assert any("fingerprints differ" in w for w in diff.warnings)


# ----------------------------------------------------------------------
# attribution

class TestAttribution:
    def _pair_with_axis_change(self):
        """4 points over staging x rows; only staging=4 points change."""
        completed = {}
        for staging in (2, 4):
            for rows in (4, 8):
                pid = f"s{staging}-r{rows}"
                completed[pid] = {
                    "point_id": pid, "workload": "snli", "scenario": "dense",
                    "knobs": [["rows", rows], ["staging", staging]],
                    "label": pid, "config_label": "c",
                    "metrics": {"speedup": 2.0},
                }
        a = {"version": 1, "spec_fingerprint": "fp", "completed": completed}
        b = json.loads(json.dumps(a))
        for pid, record in b["completed"].items():
            if pid.startswith("s4"):
                record["metrics"]["speedup"] = 1.0
        return a, b

    def test_single_knob_attribution(self):
        a, b = self._pair_with_axis_change()
        diff = diff_snapshots(
            ManifestSnapshot.from_payload(a), ManifestSnapshot.from_payload(b)
        )
        axes = {entry["axis"]: entry["values"] for entry in diff.attribution}
        assert axes == {"staging": ["4"]}

    def test_no_attribution_when_everything_changed(self):
        a, b = self._pair_with_axis_change()
        for record in b["completed"].values():
            record["metrics"]["speedup"] = 0.5
        diff = diff_snapshots(
            ManifestSnapshot.from_payload(a), ManifestSnapshot.from_payload(b)
        )
        assert diff.attribution == []


# ----------------------------------------------------------------------
# the BENCH watcher

class TestBenchWatch:
    def test_committed_bench_files_diff_clean_against_themselves(self):
        _, docs = load_bench_side(REPO_ROOT / "BENCH_telemetry.json")
        diff = diff_bench(docs, docs)
        assert diff.identical and diff.regressions == 0

    def test_bound_violation_regresses(self):
        _, docs = load_bench_side(REPO_ROOT / "BENCH_telemetry.json")
        fresh = json.loads(json.dumps(docs))
        fresh["telemetry_overhead"]["enabled_overhead_fraction"] = 0.9
        diff = diff_bench(docs, fresh)
        assert diff.regressions == 1
        row = next(r for r in diff.rows if r["classification"] == REGRESSED)
        assert row["metric"] == "enabled_overhead_fraction"
        assert row["gate"] is True

    def test_within_bound_noise_holds(self):
        """Timing drift that respects the committed bound is not a
        regression — CI must survive machine-to-machine noise."""
        _, docs = load_bench_side(REPO_ROOT / "BENCH_telemetry.json")
        fresh = json.loads(json.dumps(docs))
        fresh["telemetry_overhead"]["enabled_overhead_fraction"] = 0.02
        diff = diff_bench(docs, fresh)
        assert diff.regressions == 0

    def test_boolean_gate_flips_to_regressed(self):
        _, docs = load_bench_side(REPO_ROOT / "BENCH_engine.json")
        fresh = json.loads(json.dumps(docs))
        fresh["engine_backends"]["bit_identical"] = False
        diff = diff_bench(docs, fresh)
        assert diff.regressions >= 1

    def test_shrunk_frontier_regresses(self):
        _, docs = load_bench_side(REPO_ROOT / "BENCH_dse.json")
        fresh = json.loads(json.dumps(docs))
        fresh["dse_frontier"]["frontier_size"] = 0
        diff = diff_bench(docs, fresh)
        assert any(
            row["metric"] == "frontier_size"
            and row["classification"] == REGRESSED
            for row in diff.rows
        )
        assert diff.regressions >= 1

    def test_missing_gate_field_regresses(self):
        """A benchmark silently dropping its gate is itself a regression."""
        _, docs = load_bench_side(REPO_ROOT / "BENCH_telemetry.json")
        fresh = json.loads(json.dumps(docs))
        del fresh["telemetry_overhead"]["bit_identical"]
        diff = diff_bench(docs, fresh)
        assert diff.regressions >= 1

    def test_one_sided_benchmark_is_skipped_with_warning(self):
        _, a = load_bench_side(REPO_ROOT)
        b = {"telemetry_overhead": a["telemetry_overhead"]}
        diff = diff_bench(a, b)
        assert diff.regressions == 0
        assert any("no fresh document" in w for w in diff.warnings)

    def test_every_watched_benchmark_has_a_schema(self):
        from repro.lineage.bench import BENCH_SCHEMAS

        assert set(WATCHED_METRICS) == set(BENCH_SCHEMAS)

    def test_default_tolerance_is_generous(self):
        assert DEFAULT_BENCH_TOLERANCE >= 0.2
