"""Tests for inference-mode pre-scheduling."""

import numpy as np
import pytest

from repro.core.config import PEConfig
from repro.simulation.inference import (
    FullyConnectedInference,
    conv_activation_groups,
)


def sparse_weights(filters=8, in_features=128, sparsity=0.7, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=(filters, in_features))
    weights[rng.random(weights.shape) < sparsity] = 0.0
    return weights


class TestFullyConnectedInference:
    def test_prescheduled_cycles_match_dynamic_scheduling(self):
        """The compressor is the scheduler, so MAC cycles are identical."""
        inference = FullyConnectedInference()
        report = inference.analyze_layer(sparse_weights())
        assert report.weight_prescheduled_cycles == report.dynamic_cycles

    def test_speedup_tracks_weight_sparsity(self):
        inference = FullyConnectedInference()
        sparse = inference.analyze_layer(sparse_weights(sparsity=0.8, seed=1))
        dense = inference.analyze_layer(sparse_weights(sparsity=0.0, seed=1))
        assert sparse.weight_prescheduled_speedup > dense.weight_prescheduled_speedup
        assert dense.weight_prescheduled_speedup == pytest.approx(1.0)

    def test_speedup_bounded_by_staging_depth(self):
        inference = FullyConnectedInference(PEConfig(staging_depth=3))
        report = inference.analyze_layer(sparse_weights(sparsity=0.95, seed=2))
        assert report.weight_prescheduled_speedup <= 3.0 + 1e-9

    def test_compression_ratio_reported(self):
        inference = FullyConnectedInference()
        report = inference.analyze_layer(sparse_weights(sparsity=0.8, seed=3))
        assert report.weight_compression_ratio > 1.5
        assert report.scheduled_weight_values < report.dense_weight_values

    def test_two_deep_configuration_limits_speedup(self):
        weights = sparse_weights(sparsity=0.9, seed=4)
        deep = FullyConnectedInference(PEConfig(staging_depth=3)).analyze_layer(weights)
        shallow = FullyConnectedInference(PEConfig(staging_depth=2)).analyze_layer(weights)
        assert shallow.weight_prescheduled_speedup <= 2.0 + 1e-9
        assert shallow.weight_prescheduled_speedup <= deep.weight_prescheduled_speedup + 1e-9


class TestConvActivationGroups:
    def test_sparse_activations_compress(self):
        rng = np.random.default_rng(5)
        activations = rng.normal(size=(2, 64, 8, 8))
        activations[rng.random(activations.shape) < 0.7] = 0.0
        stats = conv_activation_groups(activations)
        assert stats["mean_group_compression"] > 1.3
        assert 0.0 < stats["access_savings"] < 1.0

    def test_dense_activations_do_not_compress(self):
        rng = np.random.default_rng(6)
        activations = rng.uniform(0.5, 1.0, size=(1, 32, 4, 4))
        stats = conv_activation_groups(activations)
        assert stats["mean_group_compression"] == pytest.approx(1.0)
        assert stats["access_savings"] == pytest.approx(0.0)

    def test_rejects_non_4d_input(self):
        with pytest.raises(ValueError):
            conv_activation_groups(np.zeros((4, 4)))
