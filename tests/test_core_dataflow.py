"""Tests for the multi-tile work partitioner."""

import numpy as np
import pytest

from repro.core.accelerator import Accelerator
from repro.core.config import AcceleratorConfig
from repro.core.dataflow import TileWorkPartitioner


def make_groups(num_groups, sparsity=0.6, stream_rows=20, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((num_groups, 4, stream_rows, 16)) > sparsity


class TestPartitioning:
    def test_round_robin_covers_all_groups_once(self):
        partitioner = TileWorkPartitioner()
        assignments = partitioner.partition(40)
        combined = np.concatenate(assignments)
        assert sorted(combined.tolist()) == list(range(40))

    def test_fewer_groups_than_tiles(self):
        partitioner = TileWorkPartitioner()
        assignments = partitioner.partition(3)
        assert len(assignments) == 3
        assert all(a.size == 1 for a in assignments)

    def test_zero_groups(self):
        partitioner = TileWorkPartitioner()
        assignments = partitioner.partition(0)
        assert len(assignments) == 1
        assert assignments[0].size == 0


class TestMultiTileResult:
    def test_latency_is_slowest_tile(self):
        partitioner = TileWorkPartitioner()
        groups = make_groups(33)   # uneven split over 16 tiles
        result = partitioner.run_operation("AxW", groups)
        assert result.tensordash_cycles == max(result.per_tile_tensordash_cycles)
        assert result.baseline_cycles == max(result.per_tile_baseline_cycles)

    def test_speedup_within_bounds(self):
        partitioner = TileWorkPartitioner()
        result = partitioner.run_operation("AxW", make_groups(32, sparsity=0.7))
        assert 1.0 <= result.speedup <= 3.0 + 1e-9

    def test_dense_groups_have_unit_speedup(self):
        partitioner = TileWorkPartitioner()
        groups = np.ones((16, 4, 10, 16), dtype=bool)
        result = partitioner.run_operation("AxW", groups)
        assert result.speedup == pytest.approx(1.0)
        assert result.imbalance == pytest.approx(1.0)

    def test_imbalance_reported(self):
        partitioner = TileWorkPartitioner()
        # Make half the groups dense and half empty to force imbalance.
        groups = np.zeros((32, 4, 10, 16), dtype=bool)
        groups[::2] = True
        result = partitioner.run_operation("AxW", groups)
        assert result.imbalance >= 1.0

    def test_multi_tile_speedup_not_higher_than_aggregate(self):
        """Inter-tile imbalance can only reduce the aggregate speedup."""
        config = AcceleratorConfig()
        partitioner = TileWorkPartitioner(config)
        accelerator = Accelerator(config)
        groups = make_groups(48, sparsity=0.7, seed=3)
        aggregate = accelerator.run_operation("AxW", groups)
        multi = partitioner.run_operation("AxW", groups)
        assert multi.speedup <= aggregate.speedup + 1e-9

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TileWorkPartitioner().run_operation("AxW", np.zeros((4, 10, 16), dtype=bool))
