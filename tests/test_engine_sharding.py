"""Intra-layer sharding, batched-operation, and shared-tier tests.

This PR's engine guarantees, enforced here:

* any shard size x job count produces bit-identical results to the
  reference oracle — including 1-group layers and uneven remainders;
* the ragged/packed batched kernels (``tile_cycles_batch`` with
  ``rows_per_group``, ``run_operations_batched``, ``schedule_packed``)
  are bit-identical to their unbatched counterparts, on packable and
  non-packable geometries alike;
* the parallel backend's job-count edge cases fail loudly (``jobs<=0``)
  or skip the pool entirely (``jobs==1``);
* the cross-process shared memo tier serves siblings' results and its
  per-tier hit counters surface in ``EngineStats``.
"""

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.accelerator import Accelerator
from repro.core.config import AcceleratorConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import BatchScheduler, pack_stream_rows
from repro.engine import (
    ParallelBackend,
    ReferenceBackend,
    SharedResultCache,
    SimulationEngine,
    VectorizedBackend,
    get_backend,
)
from repro.engine.parallel import default_shard_groups
from repro.simulation.cycle_sim import LayerSimulator

from test_engine_backends import (
    assert_results_identical,
    make_conv_trace,
    random_groups,
)


def unpack_claimed(claimed, depth, lanes):
    """Expand packed claim words back to (batch, depth, lanes) booleans."""
    out = np.zeros((claimed.shape[0], depth, lanes), dtype=bool)
    for step in range(depth):
        for lane in range(lanes):
            bit = np.uint64(step * lanes + lane)
            out[:, step, lane] = (claimed >> bit) & np.uint64(1) != 0
    return out


class TestPackedScheduler:
    """schedule_packed must mirror the boolean schedule bit for bit."""

    @pytest.mark.parametrize("seed", range(6))
    def test_packed_matches_boolean_schedule(self, seed):
        rng = np.random.default_rng(seed)
        depth = int(rng.integers(1, 4))
        lanes = 16
        scheduler = BatchScheduler(
            ConnectivityPattern(lanes=lanes, staging_depth=depth)
        )
        assert scheduler.packable
        windows = rng.random((64, depth, lanes)) >= float(rng.random())
        limit = int(rng.integers(1, depth + 1)) if rng.random() < 0.5 else None

        claimed, advance, busy = scheduler.schedule(windows, advance_limit=limit)
        packed_windows = pack_stream_rows(windows)
        word = packed_windows[:, 0].copy()
        for step in range(1, depth):
            word |= packed_windows[:, step] << np.uint64(step * lanes)
        p_claimed, p_advance, p_busy = scheduler.schedule_packed(
            word, advance_limit=limit
        )
        assert np.array_equal(advance, p_advance)
        assert np.array_equal(busy, p_busy)
        assert np.array_equal(claimed, unpack_claimed(p_claimed, depth, lanes))

    def test_non_packable_config_rejects_packed_path(self):
        scheduler = BatchScheduler(
            ConnectivityPattern(lanes=32, staging_depth=3)
        )
        assert not scheduler.packable
        with pytest.raises(ValueError):
            scheduler.schedule_packed(np.zeros(4, dtype=np.uint64))


class TestRaggedBatchedKernels:
    """Ragged/fused batches must equal exactly-sized per-unit batches."""

    @pytest.mark.parametrize("seed", range(4))
    def test_tile_cycles_batch_ragged_matches_exact(self, seed):
        rng = np.random.default_rng(seed)
        acc = Accelerator()
        tile_rows = 4
        lanes = acc.config.pe.lanes
        rows = [int(r) for r in rng.integers(1, 30, size=5)]
        max_rows = max(rows)
        groups = np.zeros((len(rows), tile_rows, max_rows, lanes), dtype=bool)
        for index, r in enumerate(rows):
            groups[index, :, :r] = rng.random((tile_rows, r, lanes)) >= 0.6
        ragged = acc.tile_cycles_batch(
            groups, rows_per_group=np.array(rows, dtype=np.int64)
        )
        for index, r in enumerate(rows):
            exact = acc.tile_cycles_batch(groups[index : index + 1, :, :r])
            assert ragged[index] == exact[0], (index, r)

    @pytest.mark.parametrize("lanes,depth", [(16, 3), (32, 3)])
    def test_run_operations_batched_matches_per_unit(self, lanes, depth):
        # lanes=32 exceeds the 64-bit window: exercises the boolean
        # fallback; lanes=16 exercises the packed merge.
        rng = np.random.default_rng(lanes)
        config = AcceleratorConfig().with_pe(lanes=lanes, staging_depth=depth)
        acc = Accelerator(config)
        units = []
        for index in range(6):
            num_groups = int(rng.integers(1, 6))
            stream_rows = int(rng.integers(1, 25))
            units.append((
                f"op{index}",
                random_groups(rng, num_groups, 4, stream_rows, lanes=lanes,
                              sparsity=float(rng.random())),
            ))
        units.append(("empty", np.zeros((0, 4, 5, lanes), dtype=bool)))
        units.append(("norows", np.zeros((2, 4, 0, lanes), dtype=bool)))
        fused = acc.run_operations_batched(units)
        for (name, groups), result in zip(units, fused):
            assert result == acc.run_operation_batched(name, groups), name

    def test_run_operations_batched_rejects_mixed_tile_rows(self):
        acc = Accelerator()
        units = [
            ("a", np.zeros((1, 4, 3, 16), dtype=bool)),
            ("b", np.zeros((1, 2, 3, 16), dtype=bool)),
        ]
        with pytest.raises(ValueError):
            acc.run_operations_batched(units)

    def test_bucket_budget_splits_but_stays_identical(self):
        rng = np.random.default_rng(99)
        acc = Accelerator()
        units = [
            ("op", random_groups(rng, 3, 4, int(r), sparsity=0.5))
            for r in rng.integers(1, 40, size=8)
        ]
        expected = [acc.run_operation_batched(n, g) for n, g in units]
        old_budget = Accelerator.BATCH_WORD_BUDGET
        try:
            Accelerator.BATCH_WORD_BUDGET = 256  # force many tiny buckets
            fused = acc.run_operations_batched(units)
        finally:
            Accelerator.BATCH_WORD_BUDGET = old_budget
        assert fused == expected


class TestParallelJobsEdgeCases:
    def test_zero_or_negative_jobs_raise(self):
        for jobs in (0, -1, -8):
            with pytest.raises(ValueError):
                ParallelBackend(jobs=jobs)
            with pytest.raises(ValueError):
                get_backend("parallel", jobs=jobs)

    def test_invalid_shard_groups_raise(self):
        with pytest.raises(ValueError):
            ParallelBackend(jobs=2, shard_groups=0)

    def test_shard_groups_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_GROUPS", "7")
        assert ParallelBackend(jobs=2).shard_groups == 7

    def test_single_job_never_touches_multiprocessing(self, monkeypatch):
        import repro.engine.parallel as parallel_module

        def explode(*args, **kwargs):
            raise AssertionError("jobs=1 must not create a pool")

        monkeypatch.setattr(
            parallel_module.multiprocessing, "get_context", explode
        )
        rng = np.random.default_rng(0)
        traces = [make_conv_trace(rng, name="only")]
        simulator = LayerSimulator(max_groups=8, backend="vectorized")
        backend = ParallelBackend(jobs=1)
        results = backend.simulate_layers(simulator, traces)
        reference = LayerSimulator(
            max_groups=8, backend="reference"
        ).simulate_layers(traces)
        assert_results_identical(results, reference)
        assert backend.last_shard_info["jobs"] == 1

    def test_default_shard_groups_scales_with_work(self):
        assert default_shard_groups(0, 4) == 1
        assert default_shard_groups(10, 4) == 16  # floored
        assert default_shard_groups(16000, 8) == 500


class TestIntraLayerShardingBitIdentity:
    """Property: shard size x job count never changes a single bit."""

    @pytest.fixture(scope="class")
    def traces(self):
        rng = np.random.default_rng(42)
        return [
            make_conv_trace(rng, name="big", channels=8, size=8),
            make_conv_trace(rng, name="small", channels=3, size=6),
            make_conv_trace(rng, name="tiny", channels=1, size=4, kernel=1),
        ]

    @pytest.fixture(scope="class")
    def reference_results(self, traces):
        return LayerSimulator(
            max_groups=16, backend="reference"
        ).simulate_layers(traces)

    @pytest.mark.parametrize("shard_groups", [1, 3, 7, 1000, None])
    @pytest.mark.parametrize("jobs", [1, 2, 3])
    def test_any_shard_size_any_jobs(self, traces, reference_results,
                                     shard_groups, jobs):
        backend = ParallelBackend(jobs=jobs, shard_groups=shard_groups)
        simulator = LayerSimulator(max_groups=16, backend=backend)
        results = backend.simulate_layers(simulator, traces)
        assert_results_identical(results, reference_results)

    def test_one_group_layers_and_uneven_remainders(self, traces,
                                                    reference_results):
        # max_groups=16 yields several multi-group units plus 1-group
        # units; shard_groups=5 leaves uneven remainders (16 = 3*5 + 1).
        backend = ParallelBackend(jobs=2, shard_groups=5)
        simulator = LayerSimulator(max_groups=16, backend=backend)
        results = backend.simulate_layers(simulator, traces)
        assert_results_identical(results, reference_results)
        info = backend.last_shard_info
        assert info["shards"] > info["units"]

    def test_engine_level_parallel_matches_reference(self, traces,
                                                     reference_results):
        engine = SimulationEngine(backend="parallel", jobs=2, max_groups=16)
        assert_results_identical(
            engine.simulate_layers(traces), reference_results
        )


class TestSharedTier:
    def test_shared_cache_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        trace = make_conv_trace(rng)
        result = LayerSimulator(max_groups=4).simulate_layer(trace)
        cache = SharedResultCache(tmp_path / "shared")
        cache.store("k" * 64, result)
        loaded = cache.load("k" * 64)
        assert loaded.operations == result.operations
        assert loaded.traffic == result.traffic
        assert cache.load("m" * 64) is None

    def test_second_engine_serves_from_shared_tier(self, tmp_path):
        rng = np.random.default_rng(2)
        traces = [make_conv_trace(rng, name=f"c{i}") for i in range(3)]
        shared = str(tmp_path / "shared")

        first = SimulationEngine(backend="vectorized", shared_dir=shared,
                                 max_groups=8)
        fresh = first.simulate_layers(traces)
        assert first.stats.layers_simulated == 3
        assert first.stats.shared_hits == 0

        second = SimulationEngine(backend="vectorized", shared_dir=shared,
                                  max_groups=8)
        warm = second.simulate_layers(traces)
        assert second.stats.layers_simulated == 0
        assert second.stats.shared_hits == 3
        assert second.stats.cache_hits == 3  # aggregate includes the tier
        assert_results_identical(warm, fresh)

    def test_disk_hits_promote_into_shared_tier(self, tmp_path):
        rng = np.random.default_rng(3)
        traces = [make_conv_trace(rng, name="p")]
        disk = str(tmp_path / "disk")
        shared = str(tmp_path / "shared")

        SimulationEngine(backend="vectorized", cache_dir=disk,
                         max_groups=8).simulate_layers(traces)
        both = SimulationEngine(backend="vectorized", cache_dir=disk,
                                shared_dir=shared, max_groups=8)
        both.simulate_layers(traces)
        assert both.stats.disk_hits == 1
        assert both.stats.layers_simulated == 0

        shared_only = SimulationEngine(backend="vectorized",
                                       shared_dir=shared, max_groups=8)
        shared_only.simulate_layers(traces)
        assert shared_only.stats.shared_hits == 1
        assert shared_only.stats.layers_simulated == 0

    def test_memo_sits_above_shared_tier(self, tmp_path):
        rng = np.random.default_rng(4)
        traces = [make_conv_trace(rng, name="m")]
        engine = SimulationEngine(backend="vectorized", memory_cache=True,
                                  shared_dir=str(tmp_path / "s"),
                                  max_groups=8)
        engine.simulate_layers(traces)
        engine.simulate_layers(traces)
        assert engine.stats.memo_hits == 1
        assert engine.stats.shared_hits == 0

    def test_stats_round_trip_with_tier_counters(self):
        from repro.engine import EngineStats

        stats = EngineStats(backend="vectorized", shared_dir="/tmp/x",
                            cache_hits=5, memo_hits=2, shared_hits=2,
                            disk_hits=1, cache_misses=1)
        payload = stats.as_dict()
        assert payload["shared_hits"] == 2
        assert EngineStats.from_dict(payload) == stats
        delta = stats.since(EngineStats(backend="vectorized",
                                        shared_dir="/tmp/x", shared_hits=1))
        assert delta.shared_hits == 1

    def test_shared_tier_across_real_processes(self, tmp_path):
        """Two distinct worker processes: the second re-simulates nothing."""
        rng = np.random.default_rng(5)
        traces = [make_conv_trace(rng, name=f"x{i}") for i in range(2)]
        layers_file = tmp_path / "layers.pkl"
        layers_file.write_bytes(pickle.dumps(traces))
        shared_dir = tmp_path / "shared"

        worker = (
            "import json, pickle, sys\n"
            "from repro.engine import SimulationEngine\n"
            "layers = pickle.load(open(sys.argv[1], 'rb'))\n"
            "engine = SimulationEngine(backend='vectorized',"
            " shared_dir=sys.argv[2], max_groups=8)\n"
            "engine.simulate_layers(layers)\n"
            "print(json.dumps({'simulated': engine.stats.layers_simulated,"
            " 'shared_hits': engine.stats.shared_hits}))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else src
        )
        stats = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", worker, str(layers_file),
                 str(shared_dir)],
                capture_output=True, text=True, env=env, check=False,
            )
            assert proc.returncode == 0, proc.stderr[-2000:]
            stats.append(json.loads(proc.stdout))
        assert stats[0] == {"simulated": 2, "shared_hits": 0}
        assert stats[1] == {"simulated": 0, "shared_hits": 2}
