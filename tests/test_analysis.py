"""Tests for metric aggregation and report formatting."""

import pytest

from repro.analysis import (
    ReportTable,
    arithmetic_mean,
    format_series,
    format_table,
    geometric_mean,
    summarize_speedups,
)


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.95]) == pytest.approx(1.95)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    def test_summarize_speedups(self):
        per_model = {
            "alexnet": {"AxW": 2.0, "Total": 2.0},
            "vgg16": {"AxW": 8.0, "Total": 8.0},
        }
        summary = summarize_speedups(per_model)
        assert summary["AxW"] == pytest.approx(4.0)
        assert summary["Total"] == pytest.approx(4.0)


class TestReporting:
    def test_table_rendering_alignment(self):
        table = ReportTable(title="Speedups", columns=["model", "speedup"])
        table.add_row("alexnet", 1.95)
        table.add_row("vgg16", 2.1)
        text = table.render()
        assert "Speedups" in text
        assert "alexnet" in text
        assert "1.950" in text

    def test_table_rejects_wrong_row_width(self):
        table = ReportTable(title="t", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_format_table_one_shot(self):
        text = format_table("T", ["x"], [[1.0], [2.0]])
        assert text.count("\n") >= 4

    def test_format_series(self):
        series = {
            "alexnet": {"AxW": 1.9, "AxG": 2.2},
            "vgg16": {"AxW": 1.7},
        }
        text = format_series("Fig13", series)
        assert "Fig13" in text
        assert "AxG" in text
        assert "nan" in text    # missing cell rendered as NaN
