"""Tests for the potential-speedup analytics and the layer cycle simulator."""

import numpy as np
import pytest

from repro.core.config import AcceleratorConfig, PEConfig
from repro.simulation.cycle_sim import LayerSimulator
from repro.simulation.speedup import (
    combine_speedups,
    operation_sparsity,
    potential_speedup,
    potential_speedup_from_sparsity,
    tensor_sparsity,
)
from repro.training.tracing import LayerTrace


class TestSpeedupAnalytics:
    def test_tensor_sparsity(self):
        assert tensor_sparsity(np.array([0, 1, 0, 1])) == pytest.approx(0.5)
        assert tensor_sparsity(np.zeros(0)) == 0.0

    def test_potential_speedup_from_sparsity(self):
        assert potential_speedup_from_sparsity(0.0) == pytest.approx(1.0)
        assert potential_speedup_from_sparsity(0.5) == pytest.approx(2.0)
        assert potential_speedup_from_sparsity(0.9) == pytest.approx(10.0)
        assert potential_speedup_from_sparsity(1.0) == float("inf")

    def test_potential_speedup_from_sparsity_validates(self):
        with pytest.raises(ValueError):
            potential_speedup_from_sparsity(1.5)

    def test_operation_sparsity_targets(self):
        activations = np.array([0.0, 1.0, 1.0, 1.0])     # 25% sparse
        gradients = np.array([0.0, 0.0, 0.0, 1.0])       # 75% sparse
        weights = np.ones(4)
        assert operation_sparsity("AxW", activations, weights, gradients) == pytest.approx(0.25)
        assert operation_sparsity("AxG", activations, weights, gradients) == pytest.approx(0.75)
        assert operation_sparsity("WxG", activations, weights, gradients) == pytest.approx(0.75)

    def test_operation_sparsity_unknown_operation(self):
        with pytest.raises(ValueError):
            operation_sparsity("XxY", None, None, None)

    def test_potential_speedup_combines_three_ops(self):
        activations = np.array([0.0, 1.0])
        gradients = np.array([0.0, 1.0])
        result = potential_speedup(activations, np.ones(2), gradients)
        assert result["AxW"] == pytest.approx(2.0)
        assert result["AxG"] == pytest.approx(2.0)
        assert result["WxG"] == pytest.approx(2.0)
        assert result["Total"] == pytest.approx(2.0)

    def test_combine_speedups(self):
        per_operation = {
            "AxW": {"baseline": 100, "tensordash": 50},
            "AxG": {"baseline": 100, "tensordash": 100},
        }
        combined = combine_speedups(per_operation)
        assert combined["AxW"] == pytest.approx(2.0)
        assert combined["AxG"] == pytest.approx(1.0)
        assert combined["Total"] == pytest.approx(200 / 150)


def make_conv_trace(activation_sparsity=0.5, gradient_sparsity=0.6, seed=0):
    rng = np.random.default_rng(seed)
    activation_mask = rng.random((2, 16, 8, 8)) >= activation_sparsity
    gradient_mask = rng.random((2, 8, 8, 8)) >= gradient_sparsity
    weight_mask = np.ones((8, 16, 3, 3), dtype=bool)
    return LayerTrace(
        layer_name="conv_test",
        layer_type="conv",
        kernel=3,
        stride=1,
        padding=1,
        activation_mask=activation_mask,
        output_gradient_mask=gradient_mask,
        weight_mask=weight_mask,
        activation_sparsity=activation_sparsity,
        gradient_sparsity=gradient_sparsity,
        macs=1000,
    )


def make_fc_trace(seed=1):
    rng = np.random.default_rng(seed)
    return LayerTrace(
        layer_name="fc_test",
        layer_type="fc",
        activation_mask=rng.random((32, 64)) >= 0.5,
        output_gradient_mask=rng.random((32, 16)) >= 0.5,
        weight_mask=np.ones((16, 64), dtype=bool),
        activation_sparsity=0.5,
        gradient_sparsity=0.5,
        macs=64 * 16 * 32,
    )


class TestLayerSimulator:
    def test_conv_layer_produces_three_operations(self):
        simulator = LayerSimulator(max_groups=32)
        result = simulator.simulate_layer(make_conv_trace())
        assert set(result.operations) == {"AxW", "AxG", "WxG"}
        assert set(result.traffic) == {"AxW", "AxG", "WxG"}

    def test_fc_layer_produces_three_operations(self):
        simulator = LayerSimulator(max_groups=32)
        result = simulator.simulate_layer(make_fc_trace())
        assert set(result.operations) == {"AxW", "AxG", "WxG"}

    def test_speedups_within_hardware_bounds(self):
        simulator = LayerSimulator(max_groups=32)
        result = simulator.simulate_layer(make_conv_trace())
        for op in result.operations.values():
            assert 1.0 <= op.speedup <= 3.0 + 1e-9

    def test_sparser_layers_are_faster(self):
        simulator = LayerSimulator(max_groups=32)
        sparse = simulator.simulate_layer(make_conv_trace(activation_sparsity=0.8, seed=2))
        dense = simulator.simulate_layer(make_conv_trace(activation_sparsity=0.1, seed=2))
        assert sparse.speedup("AxW") > dense.speedup("AxW")

    def test_layers_without_masks_are_skipped(self):
        simulator = LayerSimulator()
        empty = LayerTrace(layer_name="no_mask", layer_type="conv")
        results = simulator.simulate_layers([empty, make_conv_trace()])
        assert len(results) == 1

    def test_power_gated_config_gives_unit_speedup(self):
        config = AcceleratorConfig(power_gated=True)
        simulator = LayerSimulator(config, max_groups=16)
        result = simulator.simulate_layer(make_conv_trace(activation_sparsity=0.9))
        assert result.speedup() == pytest.approx(1.0)

    def test_two_deep_staging_is_no_faster_than_three_deep(self):
        trace = make_conv_trace(activation_sparsity=0.8, gradient_sparsity=0.8, seed=3)
        deep = LayerSimulator(AcceleratorConfig(), max_groups=32).simulate_layer(trace)
        shallow = LayerSimulator(
            AcceleratorConfig(pe=PEConfig(staging_depth=2)), max_groups=32
        ).simulate_layer(trace)
        assert shallow.speedup() <= deep.speedup() + 1e-9

    def test_layer_result_accessors(self):
        simulator = LayerSimulator(max_groups=16)
        result = simulator.simulate_layer(make_conv_trace())
        assert result.baseline_cycles > 0
        assert result.tensordash_cycles > 0
        assert result.total_traffic().dram_bytes > 0

    def test_traffic_scales_with_datatype(self):
        trace = make_conv_trace()
        fp32 = LayerSimulator(AcceleratorConfig(), max_groups=8).simulate_layer(trace)
        bf16 = LayerSimulator(
            AcceleratorConfig(pe=PEConfig(datatype="bfloat16")), max_groups=8
        ).simulate_layer(trace)
        assert bf16.total_traffic().dram_bytes < fp32.total_traffic().dram_bytes
