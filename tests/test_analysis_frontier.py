"""Tests for Pareto-dominance filtering and frontier helpers."""

import pytest

from repro.analysis import Objective, best_per_objective, dominates, pareto_frontier

SPEEDUP = Objective("speedup", maximize=True)
AREA = Objective("area", maximize=False)
BOTH = [SPEEDUP, AREA]


class TestObjective:
    def test_parse_bare_name_defaults_to_max(self):
        objective = Objective.parse("speedup")
        assert objective.name == "speedup"
        assert objective.maximize

    def test_parse_directions(self):
        assert not Objective.parse("area:min").maximize
        assert Objective.parse("speedup:max").maximize

    def test_parse_rejects_bad_direction_and_empty_name(self):
        with pytest.raises(ValueError):
            Objective.parse("speedup:upwards")
        with pytest.raises(ValueError):
            Objective.parse(":min")

    def test_describe_round_trips(self):
        for text in ("speedup:max", "area:min"):
            assert Objective.parse(text).describe() == text


class TestDominates:
    def test_strictly_better_on_all(self):
        assert dominates({"speedup": 2.0, "area": 1.0},
                         {"speedup": 1.5, "area": 1.2}, BOTH)

    def test_minimize_orientation(self):
        # Lower area is better: equal speedup, smaller area dominates.
        assert dominates({"speedup": 2.0, "area": 1.0},
                         {"speedup": 2.0, "area": 1.2}, BOTH)
        assert not dominates({"speedup": 2.0, "area": 1.2},
                             {"speedup": 2.0, "area": 1.0}, BOTH)

    def test_equal_points_do_not_dominate(self):
        point = {"speedup": 2.0, "area": 1.0}
        assert not dominates(point, dict(point), BOTH)

    def test_trade_off_neither_dominates(self):
        a = {"speedup": 2.0, "area": 1.2}
        b = {"speedup": 1.5, "area": 1.0}
        assert not dominates(a, b, BOTH)
        assert not dominates(b, a, BOTH)

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            dominates({"speedup": 1.0}, {"speedup": 2.0}, [])


class TestParetoFrontier:
    def test_basic_frontier(self):
        points = [
            {"speedup": 2.0, "area": 1.2},   # frontier (fastest)
            {"speedup": 1.5, "area": 1.0},   # frontier (cheapest)
            {"speedup": 1.4, "area": 1.1},   # dominated by the second
        ]
        frontier = pareto_frontier(points, BOTH)
        assert frontier == points[:2]

    def test_preserves_input_order(self):
        points = [
            {"speedup": 1.5, "area": 1.0},
            {"speedup": 2.0, "area": 1.2},
        ]
        assert pareto_frontier(points, BOTH) == points

    def test_duplicate_optima_all_kept(self):
        best = {"speedup": 2.0, "area": 1.0}
        points = [dict(best), {"speedup": 1.0, "area": 1.5}, dict(best)]
        frontier = pareto_frontier(points, BOTH)
        assert frontier == [best, best]

    def test_tie_on_one_objective(self):
        points = [
            {"speedup": 2.0, "area": 1.0},
            {"speedup": 2.0, "area": 1.2},   # same speedup, worse area
        ]
        assert pareto_frontier(points, BOTH) == [points[0]]

    def test_single_objective_degenerates_to_argmax(self):
        points = [{"speedup": 1.0}, {"speedup": 3.0}, {"speedup": 2.0}, {"speedup": 3.0}]
        frontier = pareto_frontier(points, [SPEEDUP])
        assert frontier == [{"speedup": 3.0}, {"speedup": 3.0}]

    def test_single_objective_minimize(self):
        points = [{"area": 1.2}, {"area": 1.0}, {"area": 1.1}]
        assert pareto_frontier(points, [AREA]) == [{"area": 1.0}]

    def test_empty_input(self):
        assert pareto_frontier([], BOTH) == []

    def test_requires_objectives(self):
        with pytest.raises(ValueError):
            pareto_frontier([{"speedup": 1.0}], [])

    def test_custom_key(self):
        points = [("a", 2.0), ("b", 3.0)]
        frontier = pareto_frontier(
            points, [SPEEDUP], key=lambda point, objective: point[1]
        )
        assert frontier == [("b", 3.0)]


class TestBestPerObjective:
    def test_picks_winner_per_objective(self):
        fast = {"speedup": 2.0, "area": 1.2}
        small = {"speedup": 1.5, "area": 1.0}
        best = best_per_objective([fast, small], BOTH)
        assert best == {"speedup": fast, "area": small}

    def test_first_wins_ties(self):
        a = {"speedup": 2.0, "area": 1.0}
        b = {"speedup": 2.0, "area": 1.0}
        best = best_per_objective([a, b], BOTH)
        assert best["speedup"] is a
        assert best["area"] is a

    def test_empty_points(self):
        assert best_per_objective([], BOTH) == {}
