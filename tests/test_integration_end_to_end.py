"""Integration tests: the full train -> trace -> simulate -> account pipeline."""

import numpy as np
import pytest

from repro.core.config import AcceleratorConfig, PEConfig
from repro.models import build_dataset, build_model
from repro.models.registry import build_pruning_hook
from repro.nn.optim import MomentumSGD
from repro.simulation import ExperimentRunner
from repro.training import Trainer, TrainingConfig


def run_workload(name, epochs=2, batches=2, batch_size=8, max_groups=32, seed=0):
    model = build_model(name, seed=seed)
    dataset = build_dataset(name, seed=seed)
    optimizer = MomentumSGD(model.parameters(), lr=0.01)
    hook = build_pruning_hook(name, optimizer)
    trainer = Trainer(
        model,
        optimizer,
        config=TrainingConfig(epochs=epochs, batches_per_epoch=batches, batch_size=batch_size),
        pruning_hook=hook,
    )
    trace = trainer.train(dataset, model_name=name)
    runner = ExperimentRunner(max_groups=max_groups)
    return trace, runner, runner.run_final_epoch(trace)


class TestHeadlineBehaviour:
    def test_relu_workload_shows_meaningful_speedup(self):
        _, _, result = run_workload("alexnet")
        assert result.speedup() > 1.3

    def test_gcn_shows_no_speedup_and_no_slowdown(self):
        _, _, result = run_workload("gcn")
        assert result.speedup() == pytest.approx(1.0, abs=0.05)
        assert result.speedup() >= 1.0

    def test_densenet_gradient_operation_is_weakest(self):
        """BN between conv and ReLU absorbs gradient sparsity (paper 4.1)."""
        _, _, result = run_workload("densenet121", epochs=1, batches=1, batch_size=4, max_groups=16)
        speedups = result.per_operation_speedups()
        assert speedups["AxG"] <= speedups["AxW"] + 0.05

    def test_pruned_resnet_trace_has_sparse_weights(self):
        trace, _, _ = run_workload("resnet50_DS90", epochs=1, batches=2, batch_size=4, max_groups=16)
        assert trace.final_epoch().mean_sparsity("weights") > 0.5

    def test_speedup_never_exceeds_staging_cap(self):
        for name in ("alexnet", "squeezenet"):
            _, _, result = run_workload(name, epochs=1, batches=1, batch_size=4, max_groups=16)
            for value in result.per_operation_speedups().values():
                assert value <= 3.0 + 1e-9

    def test_energy_efficiency_ordering(self):
        """Core efficiency >= overall efficiency >= 1 for sparse workloads."""
        _, runner, result = run_workload("vgg16", epochs=1, batches=1, batch_size=4, max_groups=16)
        report = runner.energy_report(result)
        assert report.core_efficiency >= report.overall_efficiency >= 1.0


class TestConfigurationSweeps:
    @pytest.fixture(scope="class")
    def traced_alexnet(self):
        trace, runner, result = run_workload("alexnet", epochs=1, batches=1, batch_size=4, max_groups=24)
        return trace

    def test_fewer_rows_per_tile_is_at_least_as_fast(self, traced_alexnet):
        """Fig. 17 direction: 1-row tiles >= 4-row tiles >= 8-row tiles."""
        speedups = {}
        for rows in (1, 4, 8):
            config = AcceleratorConfig().with_tile(rows=rows)
            runner = ExperimentRunner(config, max_groups=24)
            speedups[rows] = runner.run_final_epoch(traced_alexnet).speedup()
        assert speedups[1] >= speedups[4] - 1e-9
        assert speedups[4] >= speedups[8] - 1e-9

    def test_deeper_staging_is_at_least_as_fast(self, traced_alexnet):
        """Fig. 19 direction: 3-deep staging >= 2-deep staging."""
        speedups = {}
        for depth in (2, 3):
            config = AcceleratorConfig(pe=PEConfig(staging_depth=depth))
            runner = ExperimentRunner(config, max_groups=24)
            speedups[depth] = runner.run_final_epoch(traced_alexnet).speedup()
        assert speedups[3] >= speedups[2] - 1e-9

    def test_column_count_does_not_change_row_schedules(self, traced_alexnet):
        """Fig. 18 direction: columns share the schedule, speedup barely moves."""
        speedups = {}
        for columns in (4, 16):
            config = AcceleratorConfig().with_tile(columns=columns)
            runner = ExperimentRunner(config, max_groups=24)
            speedups[columns] = runner.run_final_epoch(traced_alexnet).speedup()
        assert speedups[16] == pytest.approx(speedups[4], rel=0.15)


class TestSpeedupOverTime:
    def test_fig14_series_is_stable(self):
        trace, runner, _ = run_workload("squeezenet", epochs=3, batches=2, batch_size=4, max_groups=16)
        series = runner.run_over_training(trace)
        speedups = [point.speedup() for point in series]
        assert len(speedups) == 3
        assert all(1.0 <= s <= 3.0 for s in speedups)
        # The paper reports fairly stable speedups across training.
        assert max(speedups) - min(speedups) < 1.0
