"""Tests for operand-stream extraction from traced tensors."""

import numpy as np
import pytest

from repro.simulation.streams import (
    StreamExtractor,
    forward_streams,
    fully_connected_forward_streams,
    fully_connected_weight_gradient_streams,
    input_gradient_streams,
    weight_gradient_streams,
)


def sparse_mask(shape, sparsity, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(shape) >= sparsity


class TestForwardStreams:
    def test_group_shape(self):
        mask = sparse_mask((2, 32, 8, 8), 0.5)
        streams = forward_streams(mask, kernel=3, stride=1, padding=1, max_groups=None)
        groups = streams.groups
        assert groups.ndim == 4
        assert groups.shape[1] == 4          # tile rows
        assert groups.shape[3] == 16         # lanes
        # Stream length: ceil(3*3*32 / 16) = 18 rows.
        assert groups.shape[2] == 18

    def test_total_groups_counts_all_windows(self):
        mask = sparse_mask((2, 16, 8, 8), 0.5)
        streams = forward_streams(mask, kernel=3, stride=1, padding=1, max_groups=None)
        windows = 2 * 8 * 8
        assert streams.total_groups == -(-windows // 4)

    def test_effectual_count_preserved_without_sampling(self):
        """Every non-zero of every receptive field appears in the streams."""
        mask = sparse_mask((1, 8, 6, 6), 0.5, seed=1)
        streams = forward_streams(mask, kernel=3, stride=1, padding=0, max_groups=None)
        # Sum over receptive fields equals sum over stream groups (modulo the
        # all-zero padding streams, which add nothing).
        from repro.nn.functional import im2col

        cols = im2col(mask.astype(np.float32), 3, 3, 1, 0)
        assert int(streams.groups.sum()) == int(cols.sum())

    def test_sampling_caps_group_count(self):
        mask = sparse_mask((4, 32, 16, 16), 0.5)
        streams = forward_streams(mask, kernel=3, stride=1, padding=1, max_groups=32)
        assert streams.sampled_groups == 32
        assert streams.total_groups > 32
        assert streams.sampling_factor > 1.0

    def test_dense_mask_produces_fully_effectual_streams(self):
        mask = np.ones((1, 16, 4, 4), dtype=bool)
        streams = forward_streams(mask, kernel=1, stride=1, padding=0, max_groups=None)
        # 16 channels fill exactly one row of 16 lanes; every window dense.
        assert streams.groups.shape[2] == 1
        assert streams.groups[: streams.total_groups].all()

    def test_stride_two_reduces_window_count(self):
        mask = sparse_mask((1, 16, 8, 8), 0.5)
        s1 = forward_streams(mask, kernel=3, stride=1, padding=1, max_groups=None)
        s2 = forward_streams(mask, kernel=3, stride=2, padding=1, max_groups=None)
        assert s2.total_groups < s1.total_groups


class TestInputGradientStreams:
    def test_dilation_for_strided_layers(self):
        mask = sparse_mask((1, 8, 4, 4), 0.0)
        plain = input_gradient_streams(mask, kernel=3, stride=1, max_groups=None)
        dilated = input_gradient_streams(mask, kernel=3, stride=2, max_groups=None)
        # Dilation spreads the same non-zeros over more windows.
        assert dilated.total_groups > plain.total_groups

    def test_targeted_operand_is_gradient(self):
        mask = sparse_mask((1, 8, 4, 4), 0.5)
        streams = input_gradient_streams(mask, kernel=3, stride=1, max_groups=None)
        assert streams.targeted_operand == "GO"

    def test_full_convolution_window_count(self):
        mask = np.ones((1, 4, 5, 5), dtype=bool)
        streams = input_gradient_streams(mask, kernel=3, stride=1, max_groups=None)
        # Full convolution: output positions = (5 + 3 - 1)^2 = 49 windows.
        assert streams.total_groups == -(-49 // 4)


class TestWeightGradientStreams:
    def test_targets_sparser_operand(self):
        gradients = sparse_mask((2, 8, 6, 6), 0.9, seed=2)
        activations = sparse_mask((2, 4, 6, 6), 0.1, seed=3)
        streams = weight_gradient_streams(gradients, activations, max_groups=None)
        assert streams.targeted_operand == "GO"
        # When the activations are the sparser side, they are targeted instead.
        flipped = weight_gradient_streams(activations, gradients, max_groups=None)
        assert flipped.targeted_operand == "A"

    def test_one_stream_per_channel(self):
        gradients = sparse_mask((2, 8, 6, 6), 0.9, seed=4)
        activations = sparse_mask((2, 4, 6, 6), 0.1, seed=5)
        streams = weight_gradient_streams(gradients, activations, max_groups=None)
        assert streams.total_groups == -(-8 // 4)


class TestFullyConnectedStreams:
    def test_forward_streams_one_per_sample(self):
        mask = sparse_mask((8, 64), 0.5)
        streams = fully_connected_forward_streams(mask, max_groups=None)
        assert streams.total_groups == 2
        assert streams.groups.shape[2] == 4    # 64 features / 16 lanes

    def test_weight_gradient_streams_reduce_over_batch(self):
        gradients = sparse_mask((32, 10), 0.8, seed=6)
        activations = sparse_mask((32, 20), 0.0, seed=7)
        streams = fully_connected_weight_gradient_streams(gradients, activations, max_groups=None)
        assert streams.targeted_operand == "GO"
        # One stream per output feature, each a reduction over 32 samples.
        assert streams.total_groups == -(-10 // 4)
        assert streams.groups.shape[2] == 2    # ceil(32 / 16)

    def test_higher_dimensional_inputs_are_flattened(self):
        mask = sparse_mask((4, 2, 8), 0.5)
        streams = fully_connected_forward_streams(mask, max_groups=None)
        assert streams.groups.shape[3] == 16


class TestStreamExtractor:
    def test_conv_streams_cover_three_operations(self):
        extractor = StreamExtractor(max_groups=16)
        activations = sparse_mask((2, 16, 8, 8), 0.5, seed=8)
        gradients = sparse_mask((2, 8, 8, 8), 0.6, seed=9)
        streams = extractor.conv_streams(activations, gradients, kernel=3, stride=1, padding=1)
        assert set(streams) == {"AxW", "AxG", "WxG"}

    def test_conv_streams_without_gradients(self):
        extractor = StreamExtractor()
        activations = sparse_mask((2, 16, 8, 8), 0.5)
        streams = extractor.conv_streams(activations, None, kernel=3, stride=1, padding=1)
        assert set(streams) == {"AxW"}

    def test_fc_streams_cover_three_operations(self):
        extractor = StreamExtractor(max_groups=16)
        activations = sparse_mask((16, 64), 0.5, seed=10)
        gradients = sparse_mask((16, 32), 0.6, seed=11)
        streams = extractor.fc_streams(activations, gradients)
        assert set(streams) == {"AxW", "AxG", "WxG"}

    def test_batch_clipping_applies_to_conv_only(self):
        extractor = StreamExtractor(max_batch=2, max_groups=None)
        conv_mask = sparse_mask((8, 16, 4, 4), 0.5)
        fc_mask = sparse_mask((8, 64), 0.5)
        assert extractor._clip_batch(conv_mask).shape[0] == 2
        assert extractor._clip_batch(fc_mask).shape[0] == 8
