"""Session facade: warm caches, engine sharing, option resolution."""

import pytest

import repro.api.session as session_module
from repro.api.schema import SchemaError, SimulateRequest, SweepRequest
from repro.api.session import Session
from repro.engine.options import resolve_engine_options

FAST = dict(epochs=1, batches_per_epoch=1, batch_size=4, max_groups=8)


class TestEngineOptionResolution:
    def test_defaults(self):
        options = resolve_engine_options(environ={})
        assert options.backend == "vectorized"
        assert options.jobs is None
        assert options.cache_dir is None

    def test_env_vars_fill_unset_arguments(self):
        options = resolve_engine_options(environ={
            "REPRO_BACKEND": "reference",
            "REPRO_JOBS": "3",
            "REPRO_CACHE_DIR": "/tmp/somewhere",
        })
        assert options.backend == "reference"
        assert options.jobs == 3
        assert options.cache_dir == "/tmp/somewhere"

    def test_explicit_arguments_beat_env_vars(self):
        options = resolve_engine_options(
            backend="vectorized", jobs=1, cache_dir="/tmp/explicit",
            environ={"REPRO_BACKEND": "reference", "REPRO_JOBS": "7",
                     "REPRO_CACHE_DIR": "/tmp/env"},
        )
        assert options.backend == "vectorized"
        assert options.jobs == 1
        assert options.cache_dir == "/tmp/explicit"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_engine_options(environ={"REPRO_BACKEND": "quantum"})

    def test_non_integer_jobs_rejected(self):
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_engine_options(environ={"REPRO_JOBS": "many"})

    def test_session_resolves_through_the_same_helper(self):
        session = Session(environ={"REPRO_BACKEND": "reference"})
        assert session.options.backend == "reference"
        assert session.engine.stats.backend == "reference"


class TestSessionCaching:
    def test_repeated_request_is_pure_cache_hits(self):
        session = Session()
        first = session.simulate("snli", **FAST)
        again = session.simulate("snli", **FAST)
        assert first.engine["layers_simulated"] > 0
        assert first.engine["cache_hits"] == 0
        assert again.engine["layers_simulated"] == 0
        assert again.engine["cache_hits"] == first.engine["layers_simulated"]
        # Bit-identical payloads: the memo returns the same results.
        assert again.result == first.result

    def test_trace_trained_once_across_workflows(self, monkeypatch):
        calls = []
        real = session_module.trace_workload

        def counting(model, **kwargs):
            calls.append(model)
            return real(model, **kwargs)

        monkeypatch.setattr(session_module, "trace_workload", counting)
        session = Session()
        session.simulate("snli", **FAST)
        session.simulate("snli", **FAST)
        session.roofline("snli", dram_bandwidth_gbps=2.0, **FAST)
        assert calls == ["snli"]   # same trace parameters -> one training run

    def test_sweep_shares_the_session_trace(self, monkeypatch):
        calls = []
        real = session_module.trace_workload

        def counting(model, **kwargs):
            calls.append(model)
            return real(model, **kwargs)

        monkeypatch.setattr(session_module, "trace_workload", counting)
        session = Session()
        request = SweepRequest(model="snli", knob="staging", values=[2, 3],
                               epochs=1, batches_per_epoch=1, batch_size=4,
                               max_groups=8)
        session.submit(request)
        session.submit(request)
        assert calls == ["snli"]

    def test_repeated_sweep_is_pure_cache_hits(self):
        session = Session()
        request = SweepRequest(model="snli", knob="staging", values=[2, 3],
                               epochs=1, batches_per_epoch=1, batch_size=4,
                               max_groups=8)
        first = session.submit(request)
        again = session.submit(request)
        assert first.engine["layers_simulated"] > 0
        assert again.engine["layers_simulated"] == 0
        assert again.engine["cache_hits"] == first.engine["layers_simulated"]
        # The embedded study document carries the per-request delta too.
        assert again.result.study["engine"]["layers_simulated"] == 0

    def test_disk_hits_are_promoted_into_the_memo(self, tmp_path):
        # Warm the disk cache from one session...
        Session(cache_dir=str(tmp_path)).simulate("snli", **FAST)
        # ...then serve a fresh session (new process stand-in) from it.
        session = Session(cache_dir=str(tmp_path))
        first = session.simulate("snli", **FAST)
        assert first.engine["layers_simulated"] == 0
        assert first.engine["cache_hits"] > 0
        # Repeats must come from the in-process memo, not re-read disk.
        cache = session.engine.cache
        session.engine.cache = None   # disk unavailable: memo must carry it
        try:
            again = session.simulate("snli", **FAST)
        finally:
            session.engine.cache = cache
        assert again.engine["layers_simulated"] == 0
        assert again.engine["cache_hits"] == first.engine["cache_hits"]

    def test_trace_cache_is_lru_bounded(self):
        session = Session(max_cached_traces=1)
        session.simulate("snli", **FAST)
        session.simulate("snli", seed=1, **FAST)
        assert len(session._traces) == 1   # the seed-0 trace was evicted

    def test_different_configs_do_not_collide(self):
        session = Session()
        fp32 = session.simulate("snli", datatype="fp32", **FAST)
        bf16 = session.simulate("snli", datatype="bfloat16", **FAST)
        assert bf16.engine["layers_simulated"] > 0   # new config, new keys
        assert fp32.result.speedups != {} and bf16.result.speedups != {}

    def test_explore_study_dir_persists_layer_results_on_disk(self, tmp_path):
        """The PR 2 contract survives the session layer: a study killed
        after simulating (manifest lost) resumes in a *fresh process*
        (here: a fresh session) with layer-level disk-cache hits."""
        spec = {
            "name": "persist", "workloads": ["snli"],
            "knobs": {"staging": [2, 3]}, "epochs": 1,
            "batches_per_epoch": 1, "batch_size": 4, "max_groups": 8,
        }
        study_dir = tmp_path / "study"
        first = Session().explore(spec, study_dir=str(study_dir))
        assert first.engine["layers_simulated"] > 0
        assert (study_dir / "cache").is_dir()
        assert list((study_dir / "cache").glob("*/*.json"))

        (study_dir / "manifest.json").unlink()   # simulated kill
        again = Session().explore(spec, study_dir=str(study_dir))
        assert again.engine["layers_simulated"] == 0
        assert again.engine["cache_hits"] == first.engine["layers_simulated"]
        # Outside the study, the shared engine has no disk cache again.
        session = Session()
        session.explore(spec, study_dir=str(study_dir))
        assert session.engine.cache is None

    def test_one_engine_is_shared(self):
        session = Session()
        session.simulate("snli", **FAST)
        session.sweep("snli", knob="staging", values=[2, 3], epochs=1,
                      batches_per_epoch=1, batch_size=4, max_groups=8)
        runners = list(session._runners.values())
        assert runners, "session built no runners"
        assert all(runner.engine is session.engine for runner in runners)


class TestSubmit:
    def test_submit_rejects_foreign_objects(self):
        with pytest.raises(TypeError, match="unsupported request"):
            Session().submit(object())

    def test_submit_validates_before_running(self):
        request = SimulateRequest(model="snli", **FAST)
        request.epochs = 0   # corrupt after construction
        with pytest.raises(SchemaError, match="SimulateRequest.epochs"):
            Session().submit(request)

    def test_progress_messages_are_emitted(self):
        lines = []
        Session().simulate("snli", progress=lines.append, **FAST)
        assert any(line.startswith("Accelerator:") for line in lines)
        assert any("Training snli" in line for line in lines)

    def test_stats_counts_requests_and_caches(self):
        session = Session()
        session.simulate("snli", **FAST)
        session.simulate("snli", **FAST)
        stats = session.stats()
        assert stats["requests_served"] == 2
        assert stats["cached_traces"] == 1
        assert stats["engine"]["cache_hits"] > 0
        assert stats["schema_version"] == 1
        assert stats["version"]

    def test_envelope_reports_elapsed_time(self):
        result = Session().simulate("snli", **FAST)
        assert result.elapsed_seconds > 0
