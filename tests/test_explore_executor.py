"""Tests for parallel study execution and append-only manifest segments.

Covers the :class:`repro.explore.StudyExecutor` worker pool (bit-identity
with the serial path, exact stats aggregation, serial fallback), the
append-only JSONL checkpoint segment (O(N) checkpoint bytes, kill-and-
resume from the segment, truncation tolerance, compaction), and the
``study_jobs`` knob's resolution through options, schema and CLI.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.schema import ExploreRequest, SchemaError, SweepRequest
from repro.cli import main
from repro.engine.options import resolve_engine_options
from repro.explore import StudyExecutor, StudyRunner, StudySpec
from repro.explore.executor import plan_units
from repro.telemetry import metrics as _metrics


def tiny_spec(**overrides):
    payload = {
        "name": "tiny",
        "workloads": ["snli"],
        "knobs": {"rows": [1, 4], "staging": [2, 3]},
        "epochs": 1,
        "batches_per_epoch": 1,
        "batch_size": 4,
        "max_groups": 8,
    }
    payload.update(overrides)
    return StudySpec.from_dict(payload)


def single_group_spec(**overrides):
    """One accelerator config, several points: one batched engine pass."""
    return tiny_spec(
        name="onegroup",
        knobs={"rows": [4]},
        scenarios=["traced", "random:0.5", "random:0.7"],
        **overrides,
    )


def records(result):
    return [point.to_dict() for point in result.points]


# ----------------------------------------------------------------------
# parallel execution


class TestParallelExecution:
    def test_parallel_matches_serial_bit_identical(self, tmp_path):
        spec = tiny_spec()
        serial = StudyRunner(spec, study_dir=tmp_path / "serial").run()
        parallel = StudyRunner(
            spec, study_dir=tmp_path / "parallel", study_jobs=3
        ).run()
        assert records(serial) == records(parallel)
        assert [p.point_id for p in serial.frontier()] == [
            p.point_id for p in parallel.frontier()
        ]

    def test_worker_stats_aggregate_exactly(self, tmp_path):
        spec = tiny_spec()
        serial = StudyRunner(spec, study_dir=tmp_path / "serial").run()
        parallel = StudyRunner(
            spec, study_dir=tmp_path / "parallel", study_jobs=2
        ).run()
        assert parallel.stats.layers_simulated == serial.stats.layers_simulated
        assert parallel.stats.cache_misses == serial.stats.cache_misses

    def test_study_workers_gauge(self, tmp_path):
        spec = tiny_spec()
        StudyRunner(spec, study_dir=tmp_path / "serial").run()
        assert _metrics.STUDY_WORKERS.value() == 1
        StudyRunner(spec, study_dir=tmp_path / "parallel", study_jobs=2).run()
        assert _metrics.STUDY_WORKERS.value() == 2

    def test_point_spans_carry_worker_attribute(self, tmp_path):
        from repro.telemetry import tracing

        telemetry = tmp_path / "telemetry"
        tracing.configure(telemetry)
        try:
            StudyRunner(
                tiny_spec(), study_dir=tmp_path / "study", study_jobs=2
            ).run()
        finally:
            tracing.configure(None)
        spans = [
            json.loads(line)
            for path in telemetry.glob("*.jsonl")
            for line in path.read_text().splitlines()
        ]
        point_spans = [
            s for s in spans
            if s.get("type") == "span" and s.get("name") == "study.point"
        ]
        assert point_spans
        assert all("worker" in s.get("attributes", {}) for s in point_spans)
        assert any(s["attributes"]["worker"] >= 1 for s in point_spans)

    def test_broken_pool_falls_back_to_serial(self, tmp_path, monkeypatch):
        from repro.explore import executor as executor_module

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes in this sandbox")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", ExplodingPool
        )
        spec = tiny_spec()
        result = StudyRunner(
            spec, study_dir=tmp_path / "study", study_jobs=4
        ).run()
        assert len(result.points) == len(spec.expand())
        assert _metrics.STUDY_WORKERS.value() == 1

    def test_executor_rejects_bad_jobs(self):
        runner = StudyRunner(tiny_spec())
        with pytest.raises(ValueError, match="jobs"):
            StudyExecutor(runner, jobs=0)

    def test_runner_rejects_bad_study_jobs(self):
        with pytest.raises(ValueError, match="study_jobs"):
            StudyRunner(tiny_spec(), study_jobs=0)

    def test_plan_units_chunks_within_config_groups(self):
        groups = [list(range(8)), list(range(8, 12))]
        units = plan_units(groups, jobs=2)
        # Chunks never mix groups, cover every point exactly once, and
        # there are enough of them to feed both workers.
        flattened = [point for unit in units for point in unit]
        assert sorted(flattened) == list(range(12))
        assert len(units) >= 2
        for unit in units:
            assert unit == sorted(unit)
            assert max(unit) - min(unit) == len(unit) - 1

    @settings(max_examples=5, deadline=None)
    @given(
        study_jobs=st.integers(min_value=1, max_value=4),
        rows=st.lists(
            st.sampled_from([1, 2, 4]), min_size=1, max_size=2, unique=True
        ),
        staging=st.lists(
            st.sampled_from([2, 3]), min_size=1, max_size=2, unique=True
        ),
        scenario=st.sampled_from(["traced", "random:0.5"]),
    )
    def test_property_parallel_bit_identical(
        self, study_jobs, rows, staging, scenario
    ):
        spec = tiny_spec(
            name="prop",
            knobs={"rows": rows, "staging": staging},
            scenarios=[scenario],
        )
        serial = StudyRunner(spec).run()
        parallel = StudyRunner(spec, study_jobs=study_jobs).run()
        assert records(serial) == records(parallel)
        assert serial.stats.layers_simulated == parallel.stats.layers_simulated


# ----------------------------------------------------------------------
# append-only checkpoint segment


class KillAfter(Exception):
    pass


def run_and_kill(spec, study_dir, after_points, **kwargs):
    """Run a study but raise after ``after_points`` records land."""
    seen = []

    def progress(message):
        if message.startswith("["):
            seen.append(message)
            if len(seen) >= after_points:
                raise KillAfter(message)

    runner = StudyRunner(spec, study_dir=study_dir, **kwargs)
    with pytest.raises(KillAfter):
        runner.run(progress=progress)


class TestManifestSegment:
    def test_kill_mid_study_resumes_from_segment(self, tmp_path):
        spec = single_group_spec()
        study_dir = tmp_path / "study"
        run_and_kill(spec, study_dir, after_points=1)
        # The kill left an append-only segment and no compacted manifest.
        assert (study_dir / "manifest.segment.jsonl").exists()
        assert not (study_dir / "manifest.json").exists()

        resumed = StudyRunner(spec, study_dir=study_dir).run(resume=True)
        assert resumed.resumed_points == 1
        assert len(resumed.points) == 3
        # The whole single-config batch was simulated (and disk-cached)
        # before the kill, so the resume re-simulates zero layers.
        assert resumed.stats.layers_simulated == 0
        # Compaction folded everything back into the classic manifest.
        assert not (study_dir / "manifest.segment.jsonl").exists()
        manifest = json.loads((study_dir / "manifest.json").read_text())
        assert len(manifest["completed"]) == 3

        again = StudyRunner(spec, study_dir=study_dir).run(resume=True)
        assert again.resumed_points == 3
        assert again.stats.layers_simulated == 0
        assert records(again) == records(resumed)

    def test_truncated_segment_tail_is_tolerated(self, tmp_path):
        spec = single_group_spec()
        study_dir = tmp_path / "study"
        run_and_kill(spec, study_dir, after_points=2)
        segment = study_dir / "manifest.segment.jsonl"
        with segment.open("a") as handle:
            handle.write('{"kind": "point", "record": {"point_')  # torn write
        resumed = StudyRunner(spec, study_dir=study_dir).run(resume=True)
        assert resumed.resumed_points == 2
        assert len(resumed.points) == 3

    def test_segment_for_different_spec_refuses_resume(self, tmp_path):
        study_dir = tmp_path / "study"
        run_and_kill(single_group_spec(), study_dir, after_points=1)
        from repro.explore import StudyResumeError

        other = single_group_spec(seed=123)
        with pytest.raises(StudyResumeError, match="different spec"):
            StudyRunner(other, study_dir=study_dir).run(resume=True)

    def test_old_format_manifest_still_loads(self, tmp_path):
        # Pre-segment studies left only manifest.json; resume must work
        # without a segment file ever having existed.
        spec = tiny_spec()
        study_dir = tmp_path / "study"
        first = StudyRunner(spec, study_dir=study_dir).run()
        assert not (study_dir / "manifest.segment.jsonl").exists()
        resumed = StudyRunner(spec, study_dir=study_dir).run(resume=True)
        assert resumed.resumed_points == len(first.points)
        assert records(resumed) == records(first)

    def test_fresh_run_ignores_stale_segment(self, tmp_path):
        spec = single_group_spec()
        study_dir = tmp_path / "study"
        run_and_kill(spec, study_dir, after_points=1)
        # Without --resume the run starts over; the stale segment must
        # not leak records into (or corrupt) the fresh checkpoints.
        result = StudyRunner(spec, study_dir=study_dir).run()
        assert result.resumed_points == 0
        assert len(result.points) == 3
        assert not (study_dir / "manifest.segment.jsonl").exists()

    def _checkpoint_cost(self, tmp_path, name, rows, monkeypatch):
        spec = tiny_spec(name=name, knobs={"rows": rows}, scenarios=["traced"])
        counts = {"manifest_replaces": 0, "fsyncs": 0, "segment_bytes": 0}
        real_replace, real_fsync = os.replace, os.fsync

        def counting_replace(src, dst, *args, **kwargs):
            if str(dst).endswith("manifest.json"):
                counts["manifest_replaces"] += 1
            return real_replace(src, dst, *args, **kwargs)

        def counting_fsync(fd):
            counts["fsyncs"] += 1
            counts["segment_bytes"] = max(
                counts["segment_bytes"], os.fstat(fd).st_size
            )
            return real_fsync(fd)

        monkeypatch.setattr(os, "replace", counting_replace)
        monkeypatch.setattr(os, "fsync", counting_fsync)
        try:
            result = StudyRunner(spec, study_dir=tmp_path / name).run()
        finally:
            monkeypatch.undo()
        assert len(result.points) == len(rows)
        return counts

    def test_checkpoint_bytes_grow_linearly(self, tmp_path, monkeypatch):
        # The O(N^2) regression guard: a 30-point study writes one
        # fsync'd segment line per point plus a single final manifest
        # rewrite — not one full-manifest rewrite per point.
        small = self._checkpoint_cost(
            tmp_path, "n10", list(range(1, 11)), monkeypatch
        )
        large = self._checkpoint_cost(
            tmp_path, "n30", list(range(1, 31)), monkeypatch
        )
        assert small["manifest_replaces"] == 1
        assert large["manifest_replaces"] == 1
        assert small["fsyncs"] == 10 + 1   # one per point + header
        assert large["fsyncs"] == 30 + 1
        # 3x the points must cost ~3x the checkpoint bytes (quadratic
        # checkpointing would make this ratio ~9x).
        ratio = large["segment_bytes"] / small["segment_bytes"]
        assert ratio < 5.0


# ----------------------------------------------------------------------
# knob resolution and request plumbing


class TestStudyJobsKnob:
    def test_env_resolution(self):
        options = resolve_engine_options(environ={"REPRO_STUDY_JOBS": "3"})
        assert options.study_jobs == 3

    def test_argument_beats_env(self):
        options = resolve_engine_options(
            study_jobs=2, environ={"REPRO_STUDY_JOBS": "7"}
        )
        assert options.study_jobs == 2

    def test_default_is_serial(self):
        assert resolve_engine_options(environ={}).study_jobs is None

    def test_invalid_env_value(self):
        with pytest.raises(ValueError, match="REPRO_STUDY_JOBS"):
            resolve_engine_options(environ={"REPRO_STUDY_JOBS": "many"})

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="study_jobs"):
            resolve_engine_options(study_jobs=0, environ={})

    def test_as_dict_carries_study_jobs(self):
        options = resolve_engine_options(study_jobs=4, environ={})
        assert options.as_dict()["study_jobs"] == 4

    def test_explore_request_roundtrip(self):
        request = ExploreRequest(
            spec=tiny_spec().to_dict(), study_jobs=2
        )
        clone = ExploreRequest.from_dict(request.to_dict())
        assert clone.study_jobs == 2

    def test_explore_request_rejects_zero(self):
        with pytest.raises(SchemaError, match="study_jobs"):
            ExploreRequest(spec=tiny_spec().to_dict(), study_jobs=0)

    def test_sweep_request_rejects_zero(self):
        with pytest.raises(SchemaError, match="study_jobs"):
            SweepRequest(model="snli", study_jobs=0)

    def test_sweep_request_roundtrip(self):
        request = SweepRequest(model="snli", study_jobs=3)
        assert SweepRequest.from_dict(request.to_dict()).study_jobs == 3

    def test_session_threads_study_jobs(self):
        from repro.api.session import Session

        session = Session(environ={"REPRO_STUDY_JOBS": "2"})
        runner = session._study_runner(tiny_spec())
        assert runner.study_jobs == 2
        # A per-request override wins over the session default.
        runner = session._study_runner(tiny_spec(), study_jobs=3)
        assert runner.study_jobs == 3

    def test_session_envelope_absorbs_worker_stats(self):
        """The per-request engine delta counts worker-process simulation.

        Workers own private engines, so without absorbing their deltas a
        parallel study would report ``layers_simulated == 0`` — hiding
        all the work from the envelope and /v1/stats.
        """
        from repro.api.schema import ExploreRequest
        from repro.api.session import Session

        spec = tiny_spec().to_dict()
        serial = Session().submit(ExploreRequest(spec=spec))
        parallel = Session().submit(ExploreRequest(spec=spec, study_jobs=2))
        assert serial.engine["layers_simulated"] > 0
        assert (
            parallel.engine["layers_simulated"]
            == serial.engine["layers_simulated"]
        )
        serial_points = serial.result.study["points"]
        assert serial_points == parallel.result.study["points"]

    def test_cli_explore_study_jobs(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        exit_code = main([
            "explore", str(spec_path),
            "--study-dir", str(tmp_path / "study"),
            "--study-jobs", "2",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        manifest = json.loads((tmp_path / "study" / "manifest.json").read_text())
        assert len(manifest["completed"]) == 4
