"""Tests for the tile models (grids of PEs with shared operands)."""

import numpy as np
import pytest

from repro.core.config import PEConfig, TileConfig
from repro.core.tile import BaselineTile, TensorDashTile


def make_tile_streams(rows=4, columns=4, stream_rows=30, lanes=16, sparsity=0.6, seed=0):
    rng = np.random.default_rng(seed)
    a_streams = [rng.random((stream_rows, lanes)) for _ in range(columns)]
    b_streams = []
    for _ in range(rows):
        b = rng.random((stream_rows, lanes))
        b[rng.random((stream_rows, lanes)) < sparsity] = 0.0
        b_streams.append(b)
    return a_streams, b_streams


class TestBaselineTile:
    def test_cycles_equal_stream_rows(self):
        a_streams, b_streams = make_tile_streams(stream_rows=25)
        result = BaselineTile().process(a_streams, b_streams)
        assert result.cycles == 25

    def test_outputs_are_pairwise_dot_products(self):
        a_streams, b_streams = make_tile_streams(stream_rows=12)
        result = BaselineTile().process(a_streams, b_streams)
        for row in range(4):
            for column in range(4):
                expected = float(np.sum(a_streams[column] * b_streams[row]))
                assert result.outputs[row, column] == pytest.approx(expected)

    def test_rejects_mismatched_stream_lengths(self):
        a_streams, b_streams = make_tile_streams()
        b_streams[0] = b_streams[0][:-1]
        with pytest.raises(ValueError):
            BaselineTile().process(a_streams, [b_streams[0]] * 4)


class TestTensorDashTile:
    def test_functional_equivalence_with_baseline(self):
        a_streams, b_streams = make_tile_streams(sparsity=0.7, seed=1)
        baseline = BaselineTile().process(a_streams, b_streams)
        tensordash = TensorDashTile().process(a_streams, b_streams)
        assert np.allclose(tensordash.outputs, baseline.outputs)

    def test_never_slower_than_baseline(self):
        for sparsity in (0.0, 0.4, 0.8):
            a_streams, b_streams = make_tile_streams(sparsity=sparsity, seed=2)
            baseline = BaselineTile().process(a_streams, b_streams)
            tensordash = TensorDashTile().process(a_streams, b_streams, compute_outputs=False)
            assert tensordash.cycles <= baseline.cycles

    def test_dense_tile_matches_baseline_cycles(self):
        a_streams, b_streams = make_tile_streams(sparsity=0.0)
        result = TensorDashTile().process(a_streams, b_streams, compute_outputs=False)
        assert result.cycles == a_streams[0].shape[0]

    def test_tile_slower_than_isolated_rows(self):
        """Rows wait for the densest row: tile cycles >= any single row's cycles."""
        from repro.core.pe import TensorDashPE

        a_streams, b_streams = make_tile_streams(sparsity=0.6, seed=3)
        tile = TensorDashTile().process(a_streams, b_streams, compute_outputs=False)
        pe = TensorDashPE()
        per_row_cycles = [
            pe.process(a_streams[0], b)[0].cycles for b in b_streams
        ]
        assert tile.cycles >= max(per_row_cycles)

    def test_single_row_tile_matches_pe(self):
        from repro.core.pe import TensorDashPE

        a_streams, b_streams = make_tile_streams(rows=1, columns=1, sparsity=0.7, seed=4)
        tile = TensorDashTile(TileConfig(rows=1, columns=1)).process(
            a_streams, b_streams, compute_outputs=False
        )
        pe_result, _ = TensorDashPE().process(a_streams[0], b_streams[0])
        assert tile.cycles == pe_result.cycles

    def test_more_rows_reduce_speedup(self):
        """The Fig. 17 trend: more rows per tile means more imbalance stalls."""
        rng = np.random.default_rng(5)
        stream_rows, lanes = 60, 16
        b_streams = []
        for _ in range(8):
            b = rng.random((stream_rows, lanes))
            b[rng.random((stream_rows, lanes)) < 0.7] = 0.0
            b_streams.append(b)
        a_stream = [rng.random((stream_rows, lanes))]

        def tile_speedup(num_rows):
            tile = TensorDashTile(TileConfig(rows=num_rows, columns=1))
            chunks = [b_streams[i : i + num_rows] for i in range(0, 8, num_rows)]
            total_cycles = sum(
                tile.process(a_stream, chunk, compute_outputs=False).cycles
                for chunk in chunks
            )
            baseline = stream_rows * len(chunks)
            return baseline / total_cycles

        assert tile_speedup(1) >= tile_speedup(4) >= tile_speedup(8) - 1e-9

    def test_utilization_and_stalls_reported(self):
        a_streams, b_streams = make_tile_streams(sparsity=0.8, seed=6)
        result = TensorDashTile().process(a_streams, b_streams, compute_outputs=False)
        assert 0.0 < result.utilization <= 1.0
        assert result.stall_cycles <= result.cycles

    def test_speedup_over_baseline_helper(self):
        a_streams, b_streams = make_tile_streams(sparsity=0.7, seed=7)
        speedup = TensorDashTile().speedup_over_baseline(a_streams, b_streams)
        assert 1.0 <= speedup <= 3.0
