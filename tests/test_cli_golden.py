"""Golden-output tests: the Session-routed CLI is byte-identical to PR 3.

The acceptance criterion for the ``repro.api`` redesign is that all four
simulating subcommands route through :meth:`Session.submit` *without
changing a byte* of their default table output.  Each test here renders
the expected text with the pre-API wiring — a frozen copy of the old
command bodies driving ``ExperimentRunner`` / ``StudyRunner`` directly —
and compares it against the real CLI output character by character.

Everything is seeded, and all backends are bit-identical, so the two
paths must agree exactly; any formatting drift in the new layer fails
loudly here.
"""

import io
import json
from contextlib import redirect_stdout

from repro.analysis.reporting import format_engine_stats, format_table
from repro.cli import main
from repro.core.config import AcceleratorConfig
from repro.models.registry import trace_workload
from repro.simulation.runner import ExperimentRunner

#: Small-but-real run parameters shared by every golden comparison.
MODEL = "snli"
EPOCHS = 1
BATCHES = 1
BATCH_SIZE = 4
MAX_GROUPS = 8


def _trace():
    return trace_workload(MODEL, epochs=EPOCHS, batches_per_epoch=BATCHES,
                          batch_size=BATCH_SIZE, seed=0)


def _golden_simulate() -> str:
    """The PR 3 ``repro simulate`` body, frozen."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        config = AcceleratorConfig().with_pe(datatype="fp32")
        print(f"Accelerator: {config.describe()}")
        print(f"Training {MODEL} for {EPOCHS} epoch(s)...")
        trace = _trace()
        runner = ExperimentRunner(config, max_groups=MAX_GROUPS)
        result = runner.run_final_epoch(trace)
        potentials = ExperimentRunner.potential_speedups_from_trace(trace.final_epoch())
        speedups = result.per_operation_speedups()
        rows = [
            [op, potentials.get(op, float("nan")), speedups[op]]
            for op in ("AxW", "AxG", "WxG", "Total")
        ]
        print(format_table(
            f"{MODEL}: TensorDash vs baseline",
            ["operation", "potential", "speedup"],
            rows,
        ))
        report = runner.energy_report(result)
        print(f"Core energy efficiency:    {report.core_efficiency:.3f}x")
        print(f"Overall energy efficiency: {report.overall_efficiency:.3f}x")
        print(format_engine_stats(runner.engine_stats))
    return buffer.getvalue()


def _golden_roofline(dram_bandwidth: float) -> str:
    """The PR 3 ``repro roofline`` body, frozen."""
    from repro.analysis.roofline import format_roofline_report, roofline_report

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        config = AcceleratorConfig().with_pe(datatype="fp32")
        config = config.with_hierarchy(dram_bandwidth_gbps=dram_bandwidth)
        print(f"Accelerator: {config.describe()}")
        print(f"Training {MODEL} for {EPOCHS} epoch(s)...")
        trace = _trace()
        runner = ExperimentRunner(config, max_groups=MAX_GROUPS)
        result = runner.run_final_epoch(trace)
        report = roofline_report(result, config)
        print(format_roofline_report(report))
        bound_counts = result.bound_counts()
        memory_bound = sum(n for bound, n in bound_counts.items() if bound != "compute")
        total_ops = sum(bound_counts.values())
        stalls = result.stall_cycles()
        cycles = result.cycles()
        compute_speedup = 1.0
        compute_tensordash = cycles["tensordash"] - stalls["tensordash"]
        if compute_tensordash:
            compute_speedup = (
                cycles["baseline"] - stalls["baseline"]
            ) / compute_tensordash
        print(f"Memory-bound operations:   {memory_bound} of {total_ops}")
        print(f"Stall fraction:            {result.stall_fraction():.1%}")
        print(f"Speedup (with stalls):     {result.speedup():.3f}x")
        print(f"Speedup (compute only):    {compute_speedup:.3f}x")
        print(format_engine_stats(runner.engine_stats))
    return buffer.getvalue()


def _golden_sweep(knob: str, values) -> str:
    """The PR 3 ``repro sweep`` body, frozen."""
    from repro.explore.report import format_points_table
    from repro.explore.runner import StudyRunner
    from repro.explore.spec import StudySpec

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        spec = StudySpec(
            name=f"{MODEL}-{knob}-sweep",
            workloads=[MODEL],
            knobs={knob: values},
            epochs=EPOCHS,
            max_groups=MAX_GROUPS,
            seed=0,
            objectives=["speedup", "core_energy_efficiency", "energy_efficiency"],
        )
        print(f"Training {MODEL} once; sweeping {knob} over {values}...")
        runner = StudyRunner(spec)
        result = runner.run()
        print(format_points_table(result, title=f"{MODEL}: {knob} sweep"))
        print(format_engine_stats(result.stats))
    return buffer.getvalue()


def _golden_explore(spec_path: str) -> str:
    """The PR 3 ``repro explore`` body (table format, no study dir), frozen."""
    from repro.explore.report import format_study_report
    from repro.explore.runner import StudyRunner
    from repro.explore.spec import StudySpec

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        spec = StudySpec.from_json(spec_path)
        print(f"Study '{spec.name}': {spec.space_size} of {spec.space_size} "
              f"points ({spec.mode}), objectives {', '.join(spec.objectives)}")
        runner = StudyRunner(spec)
        result = runner.run(resume=False, progress=print)
        print(format_study_report(result, None))
    return buffer.getvalue()


class TestGoldenOutput:
    def test_simulate_output_is_byte_identical(self, capsys):
        golden = _golden_simulate()
        assert main([
            "simulate", MODEL, "--epochs", str(EPOCHS),
            "--batches-per-epoch", str(BATCHES),
            "--batch-size", str(BATCH_SIZE), "--max-groups", str(MAX_GROUPS),
        ]) == 0
        assert capsys.readouterr().out == golden

    def test_roofline_output_is_byte_identical(self, capsys):
        golden = _golden_roofline(dram_bandwidth=2.0)
        assert main([
            "roofline", MODEL, "--epochs", str(EPOCHS),
            "--batches-per-epoch", str(BATCHES),
            "--batch-size", str(BATCH_SIZE), "--max-groups", str(MAX_GROUPS),
            "--dram-bandwidth-gbps", "2",
        ]) == 0
        assert capsys.readouterr().out == golden

    def test_sweep_output_is_byte_identical(self, capsys):
        golden = _golden_sweep("staging", [2, 3])
        assert main([
            "sweep", MODEL, "--knob", "staging", "--values", "2,3",
            "--epochs", str(EPOCHS), "--max-groups", str(MAX_GROUPS),
        ]) == 0
        assert capsys.readouterr().out == golden

    def test_explore_output_is_byte_identical(self, capsys, tmp_path):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(json.dumps({
            "name": "tiny-golden",
            "workloads": [MODEL],
            "knobs": {"staging": [2, 3]},
            "epochs": EPOCHS,
            "batches_per_epoch": BATCHES,
            "batch_size": BATCH_SIZE,
            "max_groups": MAX_GROUPS,
        }))
        golden = _golden_explore(str(spec_path))
        assert main(["explore", str(spec_path)]) == 0
        assert capsys.readouterr().out == golden
