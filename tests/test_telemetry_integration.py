"""Telemetry end-to-end: zero-perturbation, session spans, ``repro trace``.

The overhead-discipline contract of the instrumentation plane: enabling
telemetry must never change a single simulated number (property-tested
bit-identity), sessions must emit a complete span tree plus a metrics
snapshot per request, and the ``repro trace`` subcommand must render any
produced event log back into a tree and a profile.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Session
from repro.api.schema import SimulateRequest
from repro.cli import main
from repro.engine import SimulationEngine
from repro.telemetry import configure, get_tracer
from repro.telemetry.schema import iter_records, validate_file
from repro.telemetry.view import build_trees, load_spans, summarize_by_name
from tests.test_engine_backends import (
    assert_results_identical,
    make_conv_trace,
)


@pytest.fixture(autouse=True)
def _isolated_global_tracer():
    yield
    configure(None)


class TestBitIdentity:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        sparsity=st.floats(min_value=0.1, max_value=0.9),
        channels=st.integers(min_value=2, max_value=8),
        size=st.integers(min_value=6, max_value=12),
    )
    def test_enabling_telemetry_never_changes_results(
        self, tmp_path_factory, seed, sparsity, channels, size
    ):
        """Same trace, telemetry off vs on: bit-identical LayerResults."""
        def simulate():
            rng = np.random.default_rng(seed)
            layers = [
                make_conv_trace(rng, name=f"conv{i}", channels=channels,
                                size=size, sparsity=sparsity)
                for i in range(2)
            ]
            engine = SimulationEngine(
                backend="vectorized", max_groups=8, max_batch=2,
            )
            return engine.simulate_layers(layers)

        configure(None)
        plain = simulate()
        directory = tmp_path_factory.mktemp("tele")
        configure(directory)
        traced = simulate()
        configure(None)

        assert_results_identical(plain, traced)
        # ...and the run actually produced schema-valid span records.
        counts = validate_file(directory)
        assert counts.get("span", 0) >= 1


class TestSessionSpans:
    def test_submit_emits_span_tree_and_metrics_snapshot(self, tmp_path):
        session = Session(telemetry_dir=str(tmp_path))
        session.submit(SimulateRequest(
            model="snli", epochs=1, batches_per_epoch=1, batch_size=4,
        ))
        counts = validate_file(tmp_path)
        assert counts["metrics"] == 1
        spans = load_spans(tmp_path)
        names = {span["name"] for span in spans}
        assert {"session.submit", "session.trace",
                "engine.simulate_layers"} <= names
        (tree,) = build_trees(spans)
        (root,) = tree.roots
        assert root.name == "session.submit"
        assert root.record["attributes"]["kind"] == "simulate"
        assert {child.name for child in root.children} >= {
            "session.trace", "engine.simulate_layers",
        }
        status = session.stats()["telemetry"]
        assert status["enabled"] is True
        assert status["spans_emitted"] == len(spans)

    def test_disabled_session_reports_and_writes_nothing(self, tmp_path):
        session = Session()
        session.submit(SimulateRequest(
            model="snli", epochs=1, batches_per_epoch=1, batch_size=4,
        ))
        assert session.stats()["telemetry"]["enabled"] is False
        assert list(tmp_path.iterdir()) == []


class TestTraceCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_simulate_then_trace_round_trip(self, tmp_path, capsys):
        tele = tmp_path / "tele"
        code, _ = self.run_cli(
            capsys, "simulate", "snli", "--epochs", "1",
            "--batches-per-epoch", "1", "--batch-size", "4",
            "--max-groups", "8", "--telemetry-dir", str(tele),
        )
        assert code == 0
        code, out = self.run_cli(capsys, "trace", str(tele))
        assert code == 0
        assert "session.submit" in out
        assert "total" in out and "self" in out

    def test_trace_summary_and_min_ms(self, tmp_path, capsys):
        tracer = configure(tmp_path)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        configure(None)
        code, out = self.run_cli(
            capsys, "trace", str(tmp_path), "--summary", "--min-ms", "0",
        )
        assert code == 0
        assert "outer" in out and "inner" in out
        assert "Per-span-name profile" in out

    def test_trace_missing_path_fails_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", str(tmp_path / "nope")])
        assert excinfo.value.code != 0
        assert "does not exist" in capsys.readouterr().err

    def test_trace_unknown_trace_id_fails_cleanly(self, tmp_path, capsys):
        tracer = configure(tmp_path)
        with tracer.span("only"):
            pass
        configure(None)
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", str(tmp_path), "--trace-id", "feedbeef"])
        assert excinfo.value.code != 0
        assert "no span records" in capsys.readouterr().err


class TestView:
    def test_orphan_spans_promote_to_roots(self, tmp_path):
        tracer = configure(tmp_path)
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        configure(None)
        spans = load_spans(tmp_path)
        child = next(s for s in spans if s["name"] == "child")
        child["parent_id"] = "0000000000000000"   # parent record lost
        (tree,) = build_trees(spans)
        assert {root.name for root in tree.roots} == {"parent", "child"}

    def test_summary_accumulates_per_name(self, tmp_path):
        tracer = configure(tmp_path)
        for _ in range(3):
            with tracer.span("repeat"):
                pass
        configure(None)
        rows = summarize_by_name(tmp_path)
        (row,) = [r for r in rows if r["name"] == "repeat"]
        assert row["count"] == 3
        assert row["total_s"] >= row["self_s"] >= 0.0
