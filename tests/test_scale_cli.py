"""Golden and behavioural tests for the ``repro scale`` CLI subcommand.

The golden comparison freezes the scale command's wiring the same way
``test_cli_golden.py`` does for the other subcommands: the expected text
is rendered by driving :class:`ScaleRunner` directly, and the real CLI —
which routes through :meth:`Session.submit` — must reproduce it byte for
byte.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.analysis.reporting import format_engine_stats
from repro.cli import main
from repro.core.config import AcceleratorConfig
from repro.models.registry import trace_workload
from repro.scale import Interconnect, ScaleRunner, format_scaling_report

MODEL = "snli"
EPOCHS = 1
BATCHES = 1
BATCH_SIZE = 4
MAX_GROUPS = 8
DEVICES = 2


def _golden_scale() -> str:
    """The scale command's output rendered without the Session layer."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        config = AcceleratorConfig().with_pe(datatype="fp32")
        interconnect = Interconnect(link_gbps=25.0, hop_latency_cycles=500)
        print(f"Accelerator: {config.describe()}")
        print(f"Scaling: {DEVICES} device(s), data partition, "
              f"{interconnect.describe()}")
        print(f"Training {MODEL} for {EPOCHS} epoch(s)...")
        trace = trace_workload(
            MODEL, epochs=EPOCHS, batches_per_epoch=BATCHES,
            batch_size=BATCH_SIZE, seed=0,
        )
        runner = ScaleRunner(config, max_groups=MAX_GROUPS)
        report = runner.run(
            trace.final_epoch(), workload=MODEL, num_devices=DEVICES,
            partition="data", interconnect=interconnect,
        )
        print(format_scaling_report(report))
        print(format_engine_stats(runner.engine.stats))
    return buffer.getvalue()


class TestScaleGolden:
    def test_scale_output_is_byte_identical(self, capsys):
        golden = _golden_scale()
        assert main([
            "scale", MODEL, "--devices", str(DEVICES),
            "--epochs", str(EPOCHS), "--batches-per-epoch", str(BATCHES),
            "--batch-size", str(BATCH_SIZE), "--max-groups", str(MAX_GROUPS),
        ]) == 0
        assert capsys.readouterr().out == golden


class TestScaleCli:
    def test_single_device_reports_perfect_efficiency(self, capsys):
        assert main([
            "scale", MODEL, "--devices", "1",
            "--link-gbps", "unbounded", "--hop-latency-cycles", "0",
            "--epochs", str(EPOCHS), "--batches-per-epoch", str(BATCHES),
            "--batch-size", str(BATCH_SIZE), "--max-groups", str(MAX_GROUPS),
        ]) == 0
        out = capsys.readouterr().out
        assert "Scaling efficiency:     100.0%" in out
        assert "ideal (unbounded)" in out

    def test_json_format_emits_the_result_envelope(self, capsys):
        assert main([
            "scale", MODEL, "--devices", "2", "--partition", "pipeline",
            "--format", "json",
            "--epochs", str(EPOCHS), "--batches-per-epoch", str(BATCHES),
            "--batch-size", str(BATCH_SIZE), "--max-groups", str(MAX_GROUPS),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "scale"
        assert payload["result"]["partition"] == "pipeline"
        assert payload["result"]["num_devices"] == 2
        assert len(payload["result"]["report"]["devices"]) == 2

    def test_bad_link_bandwidth_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scale", MODEL, "--link-gbps", "fast"])
        assert excinfo.value.code == 2

    def test_bad_partition_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scale", MODEL, "--partition", "tensor"])
        assert excinfo.value.code == 2
