"""Tests for the Table 2 configuration dataclasses."""

import pytest

from repro.core.config import (
    AcceleratorConfig,
    MemoryConfig,
    PEConfig,
    TileConfig,
    bfloat16_config,
    paper_default_config,
)


class TestPEConfig:
    def test_defaults_match_table2(self):
        config = PEConfig()
        assert config.lanes == 16
        assert config.staging_depth == 3
        assert config.datatype == "fp32"
        assert config.lookahead == 2
        assert config.value_bits == 32
        assert config.max_speedup == 3.0

    def test_bfloat16_width(self):
        assert PEConfig(datatype="bfloat16").value_bits == 16

    def test_rejects_bad_lanes(self):
        with pytest.raises(ValueError):
            PEConfig(lanes=0)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            PEConfig(staging_depth=0)

    def test_rejects_unknown_datatype(self):
        with pytest.raises(ValueError):
            PEConfig(datatype="int4")


class TestTileConfig:
    def test_defaults_match_table2(self):
        config = TileConfig()
        assert config.rows == 4
        assert config.columns == 4
        assert config.pes == 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TileConfig(rows=0)


class TestAcceleratorConfig:
    def test_defaults_match_table2(self):
        config = paper_default_config()
        assert config.num_tiles == 16
        assert config.total_pes == 256
        assert config.macs_per_cycle == 4096
        assert config.frequency_mhz == 500
        assert config.tech_node_nm == 65
        assert config.cycle_time_ns == pytest.approx(2.0)

    def test_memory_defaults_match_table2(self):
        memory = MemoryConfig()
        assert memory.am_kb_per_bank == 256
        assert memory.banks_per_tile == 4
        assert memory.scratchpad_kb == 1
        assert memory.scratchpad_banks == 3
        assert memory.transposers == 15
        assert memory.dram_channels == 4
        assert memory.dram_mts == 3200
        assert memory.on_chip_kb_per_tile == 3 * 256 * 4

    def test_bfloat16_variant(self):
        config = bfloat16_config()
        assert config.pe.datatype == "bfloat16"
        assert config.macs_per_cycle == 4096

    def test_with_pe_override(self):
        config = paper_default_config().with_pe(staging_depth=2)
        assert config.pe.staging_depth == 2
        assert config.pe.lanes == 16

    def test_with_tile_override(self):
        config = paper_default_config().with_tile(rows=8)
        assert config.tile.rows == 8
        assert config.tile.columns == 4
        assert config.total_pes == 16 * 8 * 4

    def test_describe_is_informative(self):
        text = paper_default_config().describe()
        assert "fp32" in text
        assert "500 MHz" in text

    def test_rejects_bad_tiles(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(num_tiles=0)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(frequency_mhz=0)
