"""Dedicated coverage for ``repro.memory.sram`` banking behaviour.

The staging buffers refill up to ``staging_depth`` rows per cycle, so the
scratchpads are banked at least that deep (Table 2: 3 banks of 1 KB);
these tests pin down the striping, rounding and counter arithmetic the
rest of the memory model builds on.
"""

import pytest

from repro.memory.sram import BankedSRAM, Scratchpad, SRAMBank


class TestSRAMBank:
    def test_defaults_and_counters_start_clean(self):
        bank = SRAMBank(capacity_bytes=2048)
        assert bank.width_bytes == 64
        assert bank.reads == 0 and bank.writes == 0
        assert bank.total_accesses == 0
        assert bank.bytes_read() == 0 and bank.bytes_written() == 0

    def test_read_write_accumulate_independently(self):
        bank = SRAMBank(capacity_bytes=1024, width_bytes=32)
        bank.read(4)
        bank.read()
        bank.write(2)
        assert bank.reads == 5
        assert bank.writes == 2
        assert bank.bytes_read() == 5 * 32
        assert bank.bytes_written() == 2 * 32

    def test_zero_access_count_is_allowed(self):
        bank = SRAMBank(capacity_bytes=1024)
        bank.read(0)
        bank.write(0)
        assert bank.total_accesses == 0

    @pytest.mark.parametrize("method", ["read", "write"])
    def test_negative_counts_rejected(self, method):
        bank = SRAMBank(capacity_bytes=1024)
        with pytest.raises(ValueError):
            getattr(bank, method)(-3)


class TestBankedSRAM:
    def test_rejects_nonpositive_bank_count(self):
        with pytest.raises(ValueError):
            BankedSRAM("AM", banks=0)

    def test_capacity_sums_banks(self):
        sram = BankedSRAM("BM", banks=3, kb_per_bank=8)
        assert sram.capacity_bytes == 3 * 8 * 1024

    def test_access_count_rounds_up_to_width(self):
        sram = BankedSRAM("AM", banks=4, width_bytes=64)
        assert sram.access(1) == 1          # partial line still costs a line
        assert sram.access(64) == 1
        assert sram.access(65) == 2
        assert sram.access(0) == 0

    def test_striping_is_balanced_within_one(self):
        for total_accesses in (1, 3, 4, 5, 17, 64):
            sram = BankedSRAM("AM", banks=4, width_bytes=64)
            sram.access(total_accesses * 64)
            per_bank = [bank.reads for bank in sram.banks]
            assert sum(per_bank) == total_accesses
            assert max(per_bank) - min(per_bank) <= 1

    def test_round_robin_continues_across_calls(self):
        sram = BankedSRAM("AM", banks=4, width_bytes=64)
        for _ in range(6):
            sram.access(64)
        per_bank = [bank.reads for bank in sram.banks]
        assert sum(per_bank) == 6
        assert max(per_bank) - min(per_bank) <= 1

    def test_reads_and_writes_tracked_separately(self):
        sram = BankedSRAM("CM", banks=2, width_bytes=64)
        sram.access(256)
        sram.access(128, write=True)
        assert sram.total_reads == 4
        assert sram.total_writes == 2
        assert sram.total_accesses == 6

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            BankedSRAM("AM").access(-1)


class TestScratchpad:
    def test_table2_defaults(self):
        pad = Scratchpad("A-pad")
        assert len(pad.sram.banks) == 3
        assert pad.sram.capacity_bytes == 3 * 1024

    def test_refill_rows_one_access_per_narrow_row(self):
        pad = Scratchpad("A-pad", banks=3, width_bytes=64)
        # A 16-lane FP32 row is 64 bytes: exactly one full-width access.
        assert pad.refill_rows(rows=5, row_bytes=64) == 5
        assert pad.total_accesses == 5

    def test_wide_rows_cost_multiple_accesses(self):
        pad = Scratchpad("B-pad", banks=3, width_bytes=64)
        assert pad.refill_rows(rows=2, row_bytes=130) == 2 * 3

    def test_spill_outputs_counts_writes(self):
        pad = Scratchpad("C-pad")
        pad.spill_outputs(values=32, value_bytes=4)   # 128 bytes -> 2 lines
        assert pad.sram.total_writes == 2
        assert pad.sram.total_reads == 0
