"""Smoke tests that the example gallery keeps running end to end.

The heavier examples (the pruning study and the design-space sweep) are
exercised indirectly by the integration tests; here the quick ones are run
as-is so a regression in the public API surfaces immediately.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Execute an example script as __main__ and return its stdout."""
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart_runs_and_reports_speedups(self, capsys):
        output = run_example("quickstart.py", capsys)
        assert "TensorDash on alexnet" in output
        assert "Total" in output
        assert "energy efficiency" in output.lower()

    def test_pe_microbenchmark_reproduces_fig7(self, capsys):
        output = run_example("pe_microbenchmark.py", capsys)
        assert "TensorDash: 2 cycles" in output
        assert "lookaside" in output

    def test_inference_prescheduling_reports_compression(self, capsys):
        output = run_example("inference_prescheduling.py", capsys)
        assert "pre-scheduled weights" in output
        assert "group compression" in output

    def test_all_examples_are_documented_in_readme(self):
        readme = (EXAMPLES_DIR.parent / "README.md").read_text()
        for script in EXAMPLES_DIR.glob("*.py"):
            assert script.name in readme, f"{script.name} missing from README examples table"
