"""Tests for study execution, checkpointing, resume and the explore CLI."""

import json

import pytest

from repro.cli import main
from repro.explore import (
    StudyResumeError,
    StudyRunner,
    StudySpec,
    study_to_csv,
    study_to_dict,
)


def tiny_spec(**overrides):
    payload = {
        "name": "tiny",
        "workloads": ["snli"],
        "knobs": {"rows": [1, 4], "staging": [2, 3]},
        "epochs": 1,
        "batches_per_epoch": 1,
        "batch_size": 4,
        "max_groups": 8,
    }
    payload.update(overrides)
    return StudySpec.from_dict(payload)


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    """One cold study run, shared by the read-only assertions below."""
    study_dir = tmp_path_factory.mktemp("study")
    runner = StudyRunner(tiny_spec(), study_dir=study_dir)
    return study_dir, runner.run()


class TestMemoryKnobs:
    """The memory hierarchy as a swept study axis."""

    @pytest.fixture(scope="class")
    def bandwidth_study(self):
        spec = tiny_spec(
            name="bandwidth",
            knobs={"dram_bandwidth_gbps": [2, 51.2]},
            objectives=["speedup", "stall_fraction", "dram_bytes"],
        )
        return StudyRunner(spec).run()

    def test_memory_metrics_recorded(self, bandwidth_study):
        for point in bandwidth_study.points:
            metrics = point.metrics
            assert 0.0 <= metrics["stall_fraction"] <= 1.0
            assert metrics["dram_bytes"] > 0
            assert metrics["operational_intensity"] > 0
            assert 0.0 <= metrics["memory_bound_fraction"] <= 1.0
            assert metrics["ridge_point"] > 0

    def test_starved_point_stalls_more_than_table2_point(self, bandwidth_study):
        by_label = {p.config_label: p for p in bandwidth_study.points}
        starved = by_label["dram_bandwidth_gbps=2"]
        roomy = by_label["dram_bandwidth_gbps=51.2"]
        assert starved.metrics["stall_fraction"] >= roomy.metrics["stall_fraction"]
        assert starved.metrics["stall_fraction"] > 0
        assert starved.metrics["memory_bound_fraction"] > 0
        assert starved.metrics["speedup"] <= roomy.metrics["speedup"]

    def test_stall_and_dram_objectives_drive_the_frontier(self, bandwidth_study):
        frontier = bandwidth_study.frontier(["speedup", "stall_fraction"])
        assert frontier
        best = bandwidth_study.best_per_objective(["stall_fraction"])
        assert best["stall_fraction"].config_label == "dram_bandwidth_gbps=51.2"

    def test_report_includes_roofline_section(self, bandwidth_study):
        from repro.explore.report import format_roofline_section, format_study_report

        section = format_roofline_section(bandwidth_study)
        assert section is not None
        assert "Roofline" in section
        assert "ridge" in section
        assert "memory" in section
        assert section in format_study_report(bandwidth_study)

    def test_sram_kb_knob_increases_dram_bytes_when_tiny(self):
        spec = tiny_spec(name="capacity", knobs={"sram_kb": [1, 4096]})
        result = StudyRunner(spec).run()
        by_label = {p.config_label: p for p in result.points}
        assert (
            by_label["sram_kb=1"].metrics["dram_bytes"]
            > by_label["sram_kb=4096"].metrics["dram_bytes"]
        )

    def test_unbounded_points_have_no_ridge_metric(self, study):
        _, result = study
        for point in result.points:
            assert "ridge_point" not in point.metrics
            assert point.metrics["stall_fraction"] == 0.0


class TestStudyRunner:
    def test_every_point_recorded_in_order(self, study):
        _, result = study
        points = tiny_spec().expand()
        assert [r.point_id for r in result.points] == [p.point_id for p in points]
        for record in result.points:
            assert record.metrics["speedup"] >= 1.0
            assert record.metrics["energy_efficiency"] > 0
            assert record.metrics["area_overhead"] > 1.0

    def test_frontier_is_nonempty_subset(self, study):
        _, result = study
        frontier = result.frontier()
        assert 1 <= len(frontier) <= len(result.points)
        ids = {r.point_id for r in result.points}
        assert all(r.point_id in ids for r in frontier)

    def test_best_per_objective_covers_spec_objectives(self, study):
        _, result = study
        best = result.best_per_objective()
        assert set(best) == set(result.spec.objectives)

    def test_manifest_checkpointed(self, study):
        study_dir, result = study
        manifest = json.loads((study_dir / "manifest.json").read_text())
        assert manifest["spec_fingerprint"] == result.spec.fingerprint()
        assert len(manifest["completed"]) == len(result.points)

    def test_study_dict_and_csv_exports(self, study):
        _, result = study
        payload = study_to_dict(result)
        assert len(payload["points"]) == len(result.points)
        assert set(payload["frontier"]) <= {p["point_id"] for p in payload["points"]}
        csv_text = study_to_csv(result)
        assert csv_text.count("\n") == len(result.points) + 1
        assert "speedup" in csv_text.splitlines()[0]

    def test_resume_skips_completed_points(self, study):
        study_dir, first = study
        runner = StudyRunner(tiny_spec(), study_dir=study_dir)
        result = runner.run(resume=True)
        assert result.resumed_points == len(first.points)
        assert result.stats.layers_simulated == 0
        assert [r.metrics for r in result.points] == [r.metrics for r in first.points]

    def test_restart_after_lost_manifest_hits_cache(self, study):
        """A killed study re-simulates nothing: every layer is a cache hit."""
        study_dir, first = study
        (study_dir / "manifest.json").unlink()
        runner = StudyRunner(tiny_spec(), study_dir=study_dir)
        result = runner.run(resume=True)
        assert result.resumed_points == 0
        assert result.stats.layers_simulated == 0
        assert result.stats.cache_hits > 0
        assert result.stats.cache_misses == 0
        for got, want in zip(result.points, first.points):
            assert got.metrics == want.metrics

    def test_resume_survives_presentation_changes(self, study):
        # Renaming the study or changing its objectives keeps the
        # manifest valid; sampling resumes the subset for free.
        study_dir, first = study
        changed = tiny_spec(name="renamed", objectives=["speedup"],
                            mode="random", sample=2)
        result = StudyRunner(changed, study_dir=study_dir).run(resume=True)
        assert len(result.points) == 2
        assert result.resumed_points == 2
        assert result.stats.layers_simulated == 0

    def test_sampled_resume_preserves_unsampled_manifest_records(self, tmp_path):
        spec = tiny_spec()
        study_dir = tmp_path / "study"
        StudyRunner(spec, study_dir=study_dir).run()
        # Keep a single record so the sampled resume is guaranteed real
        # work (sample=2 can cover at most one completed point) and
        # therefore rewrites the manifest.
        manifest = json.loads((study_dir / "manifest.json").read_text())
        assert len(manifest["completed"]) == 4
        kept = sorted(manifest["completed"])[0]
        manifest["completed"] = {kept: manifest["completed"][kept]}
        (study_dir / "manifest.json").write_text(json.dumps(manifest))

        sampled = tiny_spec(mode="random", sample=2)
        result = StudyRunner(sampled, study_dir=study_dir).run(resume=True)
        assert len(result.points) == 2
        # Every previously completed record survives alongside the
        # sampled run's results — nothing is discarded.
        after = json.loads((study_dir / "manifest.json").read_text())
        assert set(manifest["completed"]) <= set(after["completed"])
        assert {p.point_id for p in result.points} <= set(after["completed"])

    def test_resume_rejects_spec_drift(self, study):
        study_dir, _ = study
        changed = tiny_spec(max_groups=16)
        runner = StudyRunner(changed, study_dir=study_dir)
        with pytest.raises(ValueError, match="different spec"):
            runner.run(resume=True)

    def test_partial_manifest_resumes_remaining(self, tmp_path):
        spec = tiny_spec(knobs={"rows": [1, 4]})
        study_dir = tmp_path / "study"
        StudyRunner(spec, study_dir=study_dir).run()
        manifest = json.loads((study_dir / "manifest.json").read_text())
        dropped = sorted(manifest["completed"])[0]
        del manifest["completed"][dropped]
        (study_dir / "manifest.json").write_text(json.dumps(manifest))

        result = StudyRunner(spec, study_dir=study_dir).run(resume=True)
        assert result.resumed_points == 1
        assert len(result.points) == 2
        # The re-run point's layers all come from the engine cache.
        assert result.stats.layers_simulated == 0

    def test_in_memory_run_without_study_dir(self):
        spec = tiny_spec(knobs={"staging": [2]})
        result = StudyRunner(spec).run()
        assert len(result.points) == 1
        assert result.stats.cache_dir is None

    def test_resume_without_study_dir_raises(self):
        with pytest.raises(StudyResumeError, match="study_dir"):
            StudyRunner(tiny_spec()).run(resume=True)


class TestExploreCli:
    def write_spec(self, tmp_path, **overrides):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec(**overrides).to_dict()))
        return str(path)

    def test_explore_end_to_end_with_resume(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        study_dir = str(tmp_path / "study")
        assert main(["explore", spec_path, "--study-dir", study_dir]) == 0
        output = capsys.readouterr().out
        assert "Pareto frontier" in output
        assert "Best per objective" in output

        assert main(["explore", spec_path, "--study-dir", study_dir, "--resume"]) == 0
        output = capsys.readouterr().out
        assert "resuming: 4/4" in output
        assert "layers simulated=0" in output

    def test_explore_json_output_is_clean(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path, knobs={"staging": [2]})
        assert main(["explore", spec_path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["name"] == "tiny"
        assert len(payload["points"]) == 1

    def test_explore_sample_and_objectives_flags(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        assert main([
            "explore", spec_path, "--sample", "2", "--seed", "3",
            "--objectives", "speedup,area_overhead",
        ]) == 0
        output = capsys.readouterr().out
        assert "2 of 4 points (random)" in output

    def test_explore_rejects_bad_spec(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"workloads": ["nope"]}))
        with pytest.raises(SystemExit):
            main(["explore", str(path)])

    def test_explore_rejects_missing_spec_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["explore", str(tmp_path / "absent.json")])

    def test_explore_rejects_directory_as_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["explore", str(tmp_path)])

    def test_explore_rejects_file_as_study_dir(self, tmp_path):
        spec_path = self.write_spec(tmp_path)
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(SystemExit):
            main(["explore", spec_path, "--study-dir", str(blocker)])

    def test_explore_unregistered_metric_objective(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path, knobs={"staging": [2, 3]})
        assert main([
            "explore", spec_path, "--objectives", "tensordash_energy_pj:min",
        ]) == 0
        assert "tensordash_energy_pj" in capsys.readouterr().out

    def test_explore_resume_requires_study_dir(self, tmp_path):
        spec_path = self.write_spec(tmp_path)
        with pytest.raises(SystemExit):
            main(["explore", spec_path, "--resume"])

    def test_explore_rejects_unwritable_output_before_running(self, tmp_path):
        spec_path = self.write_spec(tmp_path)
        with pytest.raises(SystemExit):
            main(["explore", spec_path,
                  "--output", str(tmp_path / "no-such-dir" / "out.json")])

    def test_explore_csv_honors_objectives_override(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path, knobs={"staging": [2, 3]})
        assert main([
            "explore", spec_path, "--format", "csv",
            "--objectives", "area_overhead",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = lines[0].split(",")
        pareto = header.index("pareto")
        area = header.index("area_overhead")
        marked = [line.split(",") for line in lines[1:] if line.split(",")[pareto] == "1"]
        # Single minimised objective: exactly the minimum-area rows are marked.
        best = min(float(line.split(",")[area]) for line in lines[1:])
        assert marked and all(float(row[area]) == best for row in marked)


class TestSweepAlias:
    def test_sweep_runs_through_study_machinery(self, capsys):
        exit_code = main([
            "sweep", "snli", "--knob", "staging", "--values", "2,3",
            "--epochs", "1", "--max-groups", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "staging=2" in output
        assert "staging=3" in output

    def test_sweep_accepts_every_explore_knob(self, capsys):
        exit_code = main([
            "sweep", "snli", "--knob", "power_gating", "--values", "false,true",
            "--epochs", "1", "--max-groups", "8",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "power_gating=True" in output
