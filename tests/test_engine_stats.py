"""EngineStats counter round-trips and concurrency with the parallel backend.

``as_dict``/``from_dict`` must survive documents written by newer code
(extra keys), partial documents (missing counters default to zero), and
``snapshot``/``since`` must compose into exact per-request deltas — the
contract the session's ``engine`` envelope delta and the telemetry
metrics feed both ride on.
"""

import numpy as np

from repro.engine import SimulationEngine
from repro.engine.engine import EngineStats
from repro.telemetry.metrics import LAYERS_SIMULATED
from tests.test_engine_backends import make_conv_trace


class TestRoundTrips:
    def test_as_dict_from_dict_round_trip(self):
        stats = EngineStats(
            backend="parallel", jobs=4, cache_dir="/tmp/c", shared_dir="/tmp/s",
            layers_simulated=10, cache_hits=7, cache_misses=3,
            memo_hits=4, shared_hits=2, disk_hits=1,
        )
        rebuilt = EngineStats.from_dict(stats.as_dict())
        assert rebuilt == stats

    def test_from_dict_ignores_unknown_and_derived_fields(self):
        payload = {
            "backend": "vectorized",
            "layers_simulated": 5,
            "cache_hits": 2,
            "cache_misses": 3,
            "hit_rate": 0.99,            # derived: recomputed, not loaded
            "future_counter": 123,       # newer writer: ignored
            "nested": {"also": "fine"},
        }
        stats = EngineStats.from_dict(payload)
        assert stats.layers_simulated == 5
        assert stats.cache_hits == 2
        assert stats.hit_rate == 2 / 5
        assert not hasattr(stats, "future_counter")

    def test_from_dict_defaults_missing_counters(self):
        stats = EngineStats.from_dict({})
        assert stats.backend == "vectorized"
        assert stats.jobs == 1
        assert stats.cache_dir is None
        assert stats.layers_total == 0
        assert stats.hit_rate == 0.0

    def test_snapshot_is_independent(self):
        stats = EngineStats(backend="vectorized", layers_simulated=1)
        frozen = stats.snapshot()
        stats.layers_simulated = 9
        stats.cache_hits = 4
        assert frozen.layers_simulated == 1
        assert frozen.cache_hits == 0

    def test_since_yields_exact_deltas_with_current_metadata(self):
        before = EngineStats(
            backend="vectorized", layers_simulated=3, cache_hits=1,
            cache_misses=2, memo_hits=1,
        )
        after = EngineStats(
            backend="vectorized", jobs=2, layers_simulated=10, cache_hits=5,
            cache_misses=7, memo_hits=2, shared_hits=1, disk_hits=2,
        )
        delta = after.since(before)
        assert delta.jobs == 2
        assert delta.layers_simulated == 7
        assert delta.cache_hits == 4
        assert delta.cache_misses == 5
        assert (delta.memo_hits, delta.shared_hits, delta.disk_hits) == (1, 1, 2)
        # The delta survives its own serialisation round-trip.
        assert EngineStats.from_dict(delta.as_dict()) == delta

    def test_snapshot_since_round_trip_through_real_engine(self, tmp_path):
        rng = np.random.default_rng(11)
        layers = [make_conv_trace(rng, name=f"conv{i}") for i in range(3)]
        engine = SimulationEngine(
            backend="vectorized", cache_dir=tmp_path / "cache",
            max_groups=8, max_batch=2,
        )
        engine.simulate_layers(layers)
        before = engine.stats.snapshot()
        engine.simulate_layers(layers)          # all disk hits
        delta = engine.stats.since(before)
        assert delta.layers_simulated == 0
        assert delta.cache_hits == 3
        assert delta.disk_hits == 3
        assert delta.hit_rate == 1.0


class TestParallelBackendConcurrency:
    def test_parallel_backend_metric_updates_are_exact(self):
        """The parallel backend's worker threads must not lose counter
        increments: engine stats and the telemetry counter agree with the
        layer count exactly, run after run."""
        rng = np.random.default_rng(23)
        layers = [
            make_conv_trace(rng, name=f"conv{i}", channels=4, size=8)
            for i in range(6)
        ]
        engine = SimulationEngine(
            backend="parallel", jobs=4, max_groups=8, max_batch=2,
        )
        metric_before = LAYERS_SIMULATED.value(backend="parallel")
        for _ in range(3):
            engine.simulate_layers(layers)
        assert engine.stats.layers_simulated == 18
        assert LAYERS_SIMULATED.value(backend="parallel") == metric_before + 18
