"""Tests for the recurrent cells (LSTM, GRU, RNN)."""

import numpy as np
import pytest

from repro.nn import GRUCell, LSTMCell, RNNCell


class TestRNNCell:
    def test_forward_shape(self):
        cell = RNNCell(8, 16)
        x = np.zeros((4, 8), dtype=np.float32)
        h = np.zeros((4, 16), dtype=np.float32)
        assert cell(x, h).shape == (4, 16)

    def test_output_bounded_by_tanh(self):
        cell = RNNCell(8, 16)
        rng = np.random.default_rng(0)
        out = cell(rng.normal(size=(4, 8)).astype(np.float32) * 10,
                   rng.normal(size=(4, 16)).astype(np.float32) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_backward_produces_gradients(self):
        cell = RNNCell(8, 16)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        h = rng.normal(size=(4, 16)).astype(np.float32)
        out = cell(x, h)
        grad_x, grad_h = cell.backward(np.ones_like(out))
        assert grad_x.shape == x.shape
        assert grad_h.shape == h.shape
        assert cell.input_proj.weight.grad is not None


class TestLSTMCell:
    def test_forward_shapes(self):
        cell = LSTMCell(8, 16)
        x = np.zeros((4, 8), dtype=np.float32)
        h, c = cell.initial_state(4)
        h_new, c_new = cell(x, (h, c))
        assert h_new.shape == (4, 16)
        assert c_new.shape == (4, 16)

    def test_state_persistence_changes_output(self):
        cell = LSTMCell(8, 16)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 8)).astype(np.float32)
        state = cell.initial_state(2)
        h1, c1 = cell(x, state)
        h2, _ = cell(x, (h1, c1))
        assert not np.allclose(h1, h2)

    def test_backward_returns_three_gradients(self):
        cell = LSTMCell(8, 16)
        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        state = cell.initial_state(4)
        h_new, _ = cell(x, state)
        grad_x, grad_h, grad_c = cell.backward(np.ones_like(h_new))
        assert grad_x.shape == (4, 8)
        assert grad_h.shape == (4, 16)
        assert grad_c.shape == (4, 16)

    def test_gates_keep_cell_state_bounded(self):
        cell = LSTMCell(4, 8)
        rng = np.random.default_rng(4)
        state = cell.initial_state(2)
        for _ in range(50):
            x = rng.normal(size=(2, 4)).astype(np.float32)
            h, c = cell(x, state)
            state = (h, c)
        assert np.all(np.abs(state[0]) <= 1.0)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            LSTMCell(4, 8).backward(np.zeros((2, 8)))


class TestGRUCell:
    def test_forward_shape(self):
        cell = GRUCell(8, 16)
        x = np.zeros((4, 8), dtype=np.float32)
        h = cell.initial_state(4)
        assert cell(x, h).shape == (4, 16)

    def test_backward_produces_gradients(self):
        cell = GRUCell(8, 16)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 8)).astype(np.float32)
        h = cell.initial_state(4)
        out = cell(x, h)
        grad_x, grad_h = cell.backward(np.ones_like(out))
        assert grad_x.shape == x.shape
        assert grad_h.shape == (4, 16)

    def test_zero_update_gate_interpolation(self):
        """With zero input and zero state the output stays near zero."""
        cell = GRUCell(4, 8)
        out = cell(np.zeros((2, 4), dtype=np.float32), cell.initial_state(2))
        assert np.all(np.abs(out) < 1.0)

    def test_cells_are_traceable_through_linear_submodules(self):
        cell = GRUCell(4, 8)
        assert len(cell.traceable_modules()) == 2
