"""Tests pinning down the scheduler's static priority semantics.

These encode the paper's priority order explicitly (dense, lookahead 1,
lookahead 2, then the five lookaside options) and the sharing of the MS
select signals between the A- and B-side multiplexers of a lane.
"""

import numpy as np
import pytest

from repro.core.config import PEConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.pe import TensorDashPE
from repro.core.scheduler import BatchScheduler, HardwareScheduler


class TestPriorityOrder:
    def setup_method(self):
        self.scheduler = HardwareScheduler()

    def _window_with(self, positions):
        window = np.zeros((3, 16), dtype=bool)
        for position in positions:
            window[position] = True
        return window

    def test_dense_preferred_over_lookahead(self):
        window = self._window_with([(0, 8), (1, 8), (2, 8)])
        schedule = self.scheduler.schedule_step(window)
        assert schedule.selections[8] == (0, 8)

    def test_lookahead1_preferred_over_lookahead2_when_both_rows_full(self):
        # Rows +1 and +2 fully effectual, row +0 empty: every lane has both
        # lookahead options available at its turn and must take the nearer one.
        window = np.zeros((3, 16), dtype=bool)
        window[1, :] = True
        window[2, :] = True
        schedule = self.scheduler.schedule_step(window)
        for lane, selection in enumerate(schedule.selections):
            assert selection == (1, lane)

    def test_lookahead2_used_when_it_is_the_only_work(self):
        window = np.zeros((3, 16), dtype=bool)
        window[2, :] = True
        schedule = self.scheduler.schedule_step(window)
        for lane, selection in enumerate(schedule.selections):
            assert selection == (2, lane)
        assert schedule.advance == 3

    def test_earliest_level_lane_steals_via_lookaside(self):
        """Scheduling levels run in order {0,5,10}, {1,6,11}, ...: lane 10
        (level 0) grabs (1, 9) and lane 6 (level 1) grabs (1, 7) via their
        lookaside options before the lanes those positions "belong to"
        (7, 8, 9 in later levels) ever get a chance."""
        window = self._window_with([(1, 7), (1, 9)])
        schedule = self.scheduler.schedule_step(window)
        assert schedule.selections[10] == (1, 9)
        assert schedule.selections[6] == (1, 7)
        for lane in (7, 8, 9):
            assert schedule.selections[lane] is None

    def test_idle_lane_when_nothing_reachable(self):
        # Only a position no option of lane 8 can reach: (1, 12).
        window = self._window_with([(1, 12)])
        schedule = self.scheduler.schedule_step(window)
        assert schedule.selections[8] is None

    def test_earlier_level_lane_wins_contended_position(self):
        """Lane 5 (level 0) takes (1, 4) before lane 3 (level 3) can."""
        window = self._window_with([(1, 4)])
        schedule = self.scheduler.schedule_step(window)
        takers = [lane for lane, s in enumerate(schedule.selections) if s == (1, 4)]
        assert takers == [5]


class TestSharedSelectSignals:
    def test_ms_signal_moves_both_operands_in_tandem(self):
        """The same (step, lane) is applied to the A and B streams of a lane,
        so the products always pair the original operands."""
        rng = np.random.default_rng(0)
        rows, lanes = 30, 16
        a = rng.uniform(1.0, 2.0, size=(rows, lanes))
        b = rng.uniform(1.0, 2.0, size=(rows, lanes))
        b[rng.random((rows, lanes)) < 0.5] = 0.0
        pe = TensorDashPE(PEConfig())
        result, schedules = pe.process(a, b)
        # Reconstruct the accumulated output strictly from the schedules,
        # reading both operands at the scheduled position.
        position = 0
        accumulated = 0.0
        for schedule in schedules:
            for selection in schedule.selections:
                if selection is None:
                    continue
                step, lane = selection
                accumulated += a[position + step, lane] * b[position + step, lane]
            position += min(schedule.advance, rows - position)
        assert accumulated == pytest.approx(result.output, rel=1e-12)


class TestBatchSchedulerWithOtherGeometries:
    @pytest.mark.parametrize("depth", [2, 3])
    def test_matches_reference_for_depth(self, depth):
        pattern = ConnectivityPattern(staging_depth=depth)
        reference = HardwareScheduler(pattern)
        batch = BatchScheduler(pattern)
        rng = np.random.default_rng(depth)
        for _ in range(20):
            stream = rng.random((25, 16)) > 0.6
            expected, _ = reference.process_stream(stream)
            assert batch.stream_cycles(stream) == expected

    def test_eight_lane_geometry(self):
        pattern = ConnectivityPattern(lanes=8, staging_depth=3)
        reference = HardwareScheduler(pattern)
        batch = BatchScheduler(pattern)
        rng = np.random.default_rng(99)
        stream = rng.random((40, 8)) > 0.6
        expected, _ = reference.process_stream(stream)
        assert batch.stream_cycles(stream) == expected
