"""Tests for the area, power and energy accounting models."""

import pytest

from repro.core.config import AcceleratorConfig, PEConfig, bfloat16_config, paper_default_config
from repro.energy.accounting import EnergyAccountant, EnergyBreakdown
from repro.energy.area_model import AreaModel
from repro.energy.energy_model import ComputeEnergyModel, EnergyPerAccess
from repro.energy.power_model import PowerModel
from repro.memory.traffic import MemoryTraffic


class TestAreaModel:
    def test_fp32_component_breakdown_matches_table3(self):
        model = AreaModel(paper_default_config())
        tensordash = model.tensordash()
        assert tensordash.compute_cores == pytest.approx(30.41, rel=0.01)
        assert tensordash.transposers == pytest.approx(0.38, rel=0.01)
        assert tensordash.schedulers_and_b_muxes == pytest.approx(0.91, rel=0.01)
        assert tensordash.a_muxes == pytest.approx(1.73, rel=0.01)
        assert tensordash.compute_total == pytest.approx(33.44, rel=0.01)

    def test_fp32_baseline_total_matches_table3(self):
        model = AreaModel(paper_default_config())
        assert model.baseline().compute_total == pytest.approx(30.80, rel=0.01)

    def test_fp32_compute_overhead_is_about_nine_percent(self):
        overhead = AreaModel(paper_default_config()).compute_overhead()
        assert overhead == pytest.approx(1.09, abs=0.01)

    def test_bfloat16_compute_overhead_is_larger_but_small(self):
        fp32 = AreaModel(paper_default_config()).compute_overhead()
        bf16 = AreaModel(bfloat16_config()).compute_overhead()
        assert bf16 > fp32
        assert 1.10 <= bf16 <= 1.20

    def test_chip_overhead_is_negligible_with_memories(self):
        overhead = AreaModel(paper_default_config()).chip_overhead()
        assert 1.0 <= overhead <= 1.01

    def test_baseline_has_no_tensordash_components(self):
        baseline = AreaModel().baseline()
        assert baseline.schedulers_and_b_muxes == 0.0
        assert baseline.a_muxes == 0.0

    def test_area_scales_with_pe_count(self):
        small = AreaModel(AcceleratorConfig(num_tiles=8)).baseline().compute_cores
        large = AreaModel(AcceleratorConfig(num_tiles=16)).baseline().compute_cores
        assert large == pytest.approx(2 * small)

    def test_as_dict_lists_all_components(self):
        breakdown = AreaModel().tensordash()
        assert set(breakdown.as_dict()) == {
            "compute_cores",
            "transposers",
            "schedulers_and_b_muxes",
            "a_muxes",
            "on_chip_sram",
            "scratchpads",
        }


class TestPowerModel:
    def test_fp32_component_breakdown_matches_table3(self):
        model = PowerModel(paper_default_config())
        tensordash = model.tensordash()
        assert tensordash.compute_cores == pytest.approx(13910, rel=0.01)
        assert tensordash.transposers == pytest.approx(47.3, rel=0.01)
        assert tensordash.schedulers_and_b_muxes == pytest.approx(102.8, rel=0.01)
        assert tensordash.a_muxes == pytest.approx(145.3, rel=0.01)
        assert tensordash.total == pytest.approx(14205, rel=0.01)

    def test_fp32_power_overhead_is_about_two_percent(self):
        overhead = PowerModel(paper_default_config()).power_overhead()
        assert overhead == pytest.approx(1.02, abs=0.01)

    def test_bfloat16_power_overhead_is_modest(self):
        overhead = PowerModel(bfloat16_config()).power_overhead()
        assert 1.02 <= overhead <= 1.08

    def test_power_scales_with_frequency(self):
        slow = PowerModel(AcceleratorConfig(frequency_mhz=250)).baseline().total
        fast = PowerModel(AcceleratorConfig(frequency_mhz=500)).baseline().total
        assert fast == pytest.approx(2 * slow)


class TestComputeEnergy:
    def test_energy_proportional_to_cycles(self):
        model = ComputeEnergyModel()
        assert model.baseline_core_energy_pj(2000) == pytest.approx(
            2 * model.baseline_core_energy_pj(1000)
        )

    def test_core_efficiency_matches_speedup_over_power_overhead(self):
        """With a speedup of S, core energy efficiency should be about S/1.02."""
        model = ComputeEnergyModel()
        baseline_cycles = 10000
        speedup = 1.95
        tensordash_cycles = int(baseline_cycles / speedup)
        ratio = model.baseline_core_energy_pj(baseline_cycles) / model.tensordash_core_energy_pj(
            tensordash_cycles
        )
        assert ratio == pytest.approx(speedup / 1.021, rel=0.02)

    def test_power_gated_energy_equals_baseline(self):
        model = ComputeEnergyModel()
        assert model.tensordash_core_energy_pj(1000, power_gated=True) == pytest.approx(
            model.baseline_core_energy_pj(1000)
        )


class TestEnergyAccountant:
    def _traffic(self):
        return MemoryTraffic(dram_bytes=10_000, sram_bytes=100_000, scratchpad_bytes=400_000)

    def test_breakdown_has_three_components(self):
        accountant = EnergyAccountant()
        breakdown = accountant.baseline_energy(1000, self._traffic())
        fractions = breakdown.fractions()
        assert set(fractions) == {"core", "sram", "dram"}
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_efficiency_improves_with_speedup(self):
        accountant = EnergyAccountant()
        slow = accountant.efficiency(10000, 10000, self._traffic())
        fast = accountant.efficiency(10000, 5000, self._traffic())
        assert fast.core_efficiency > slow.core_efficiency
        assert fast.overall_efficiency > slow.overall_efficiency

    def test_overall_efficiency_below_core_efficiency(self):
        """Memory energy is shared, so the overall ratio is diluted."""
        accountant = EnergyAccountant()
        report = accountant.efficiency(10000, 5000, self._traffic())
        assert report.overall_efficiency < report.core_efficiency
        assert report.overall_efficiency > 1.0

    def test_no_speedup_means_slight_penalty(self):
        """Without speedup TensorDash pays its 2% power overhead."""
        accountant = EnergyAccountant()
        report = accountant.efficiency(10000, 10000, self._traffic())
        assert 0.97 < report.overall_efficiency < 1.0

    def test_power_gating_removes_the_penalty(self):
        accountant = EnergyAccountant()
        report = accountant.efficiency(10000, 10000, self._traffic(), power_gated=True)
        assert report.overall_efficiency == pytest.approx(1.0)

    def test_breakdown_addition(self):
        a = EnergyBreakdown(core_pj=1, sram_pj=2, dram_pj=3)
        b = EnergyBreakdown(core_pj=10, sram_pj=20, dram_pj=30)
        total = a + b
        assert total.total_pj == pytest.approx(66)

    def test_empty_breakdown_fractions(self):
        assert EnergyBreakdown(0, 0, 0).fractions() == {"core": 0.0, "sram": 0.0, "dram": 0.0}
