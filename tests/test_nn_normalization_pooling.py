"""Tests for normalisation and pooling layers."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm1D,
    BatchNorm2D,
    GlobalAvgPool2D,
    LayerNorm,
    MaxPool2D,
)


class TestBatchNorm2D:
    def test_training_output_is_normalised(self):
        rng = np.random.default_rng(0)
        layer = BatchNorm2D(4)
        x = rng.normal(3.0, 2.0, size=(8, 4, 6, 6)).astype(np.float32)
        out = layer(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated_in_training(self):
        layer = BatchNorm2D(2, momentum=0.5)
        x = np.ones((4, 2, 3, 3), dtype=np.float32) * 10.0
        layer(x)
        assert np.all(layer.running_mean > 0)

    def test_eval_mode_uses_running_stats(self):
        layer = BatchNorm2D(2)
        x = np.random.default_rng(1).normal(size=(4, 2, 3, 3)).astype(np.float32)
        layer(x)
        layer.training = False
        out_eval = layer(x)
        # Evaluation output should differ from a perfect re-normalisation.
        assert out_eval.shape == x.shape

    def test_backward_gradients_sum_to_zero_per_channel(self):
        """BN backward projects out the mean: channel gradients sum to ~0."""
        rng = np.random.default_rng(2)
        layer = BatchNorm2D(3)
        x = rng.normal(size=(4, 3, 5, 5)).astype(np.float32)
        out = layer(x)
        grad_in = layer.backward(rng.normal(size=out.shape).astype(np.float32))
        assert np.allclose(grad_in.sum(axis=(0, 2, 3)), 0.0, atol=1e-3)

    def test_gradient_absorbs_sparsity(self):
        """The DenseNet effect: a sparse upstream gradient densifies through BN."""
        rng = np.random.default_rng(3)
        layer = BatchNorm2D(4)
        x = rng.normal(size=(4, 4, 8, 8)).astype(np.float32)
        layer(x)
        sparse_grad = rng.normal(size=x.shape).astype(np.float32)
        sparse_grad[rng.random(x.shape) < 0.6] = 0.0
        grad_in = layer.backward(sparse_grad)
        input_sparsity = np.mean(grad_in == 0)
        upstream_sparsity = np.mean(sparse_grad == 0)
        assert input_sparsity < 0.05
        assert upstream_sparsity > 0.5

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            BatchNorm2D(2).backward(np.zeros((1, 2, 3, 3)))


class TestBatchNorm1DAndLayerNorm:
    def test_batchnorm1d_normalises_features(self):
        rng = np.random.default_rng(4)
        layer = BatchNorm1D(8)
        x = rng.normal(5.0, 3.0, size=(32, 8)).astype(np.float32)
        out = layer(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-4)

    def test_batchnorm1d_backward_shape(self):
        layer = BatchNorm1D(8)
        x = np.random.default_rng(5).normal(size=(16, 8)).astype(np.float32)
        out = layer(x)
        assert layer.backward(np.ones_like(out)).shape == x.shape

    def test_layernorm_normalises_last_dim(self):
        rng = np.random.default_rng(6)
        layer = LayerNorm(10)
        x = rng.normal(2.0, 4.0, size=(5, 10)).astype(np.float32)
        out = layer(x)
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)

    def test_layernorm_backward_shape(self):
        layer = LayerNorm(10)
        x = np.random.default_rng(7).normal(size=(5, 10)).astype(np.float32)
        out = layer(x)
        assert layer.backward(np.ones_like(out)).shape == x.shape


class TestPoolingLayers:
    def test_max_pool_shape_and_backward(self):
        layer = MaxPool2D(kernel_size=2)
        x = np.random.default_rng(8).normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = layer(x)
        assert out.shape == (2, 3, 4, 4)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert grad.sum() == pytest.approx(out.size)

    def test_avg_pool_shape_and_backward(self):
        layer = AvgPool2D(kernel_size=2)
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        out = layer(x)
        assert np.allclose(out, 1.0)
        grad = layer.backward(np.ones_like(out))
        assert np.allclose(grad, 0.25)

    def test_global_avg_pool(self):
        layer = GlobalAvgPool2D()
        x = np.arange(32, dtype=np.float32).reshape(2, 4, 2, 2)
        out = layer(x)
        assert out.shape == (2, 4)
        assert out[0, 0] == pytest.approx(x[0, 0].mean())
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert np.allclose(grad, 0.25)

    def test_pool_backward_before_forward_raises(self):
        for layer in (MaxPool2D(2), AvgPool2D(2), GlobalAvgPool2D()):
            with pytest.raises(RuntimeError):
                layer.backward(np.zeros((1, 1, 2, 2)))
