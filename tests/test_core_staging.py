"""Tests for the operand staging buffer."""

import numpy as np
import pytest

from repro.core.staging import StagingBuffer


def make_stream(rows=10, lanes=16, sparsity=0.5, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.random((rows, lanes)).astype(np.float32)
    values[rng.random((rows, lanes)) < sparsity] = 0.0
    return values


class TestWindow:
    def test_window_shows_first_depth_rows(self):
        stream = make_stream(rows=10)
        buffer = StagingBuffer(stream, depth=3)
        assert np.array_equal(buffer.window(), stream[:3])

    def test_window_pads_with_zeros_past_stream_end(self):
        stream = make_stream(rows=2)
        buffer = StagingBuffer(stream, depth=3)
        window = buffer.window()
        assert np.array_equal(window[:2], stream)
        assert np.all(window[2] == 0)

    def test_zero_vector_matches_values(self):
        stream = make_stream()
        buffer = StagingBuffer(stream, depth=3)
        assert np.array_equal(buffer.zero_vector(), buffer.window() == 0)
        assert np.array_equal(buffer.nonzero_vector(), ~buffer.zero_vector())

    def test_value_at_reads_through_window(self):
        stream = make_stream()
        buffer = StagingBuffer(stream, depth=3)
        assert buffer.value_at(1, 5) == float(stream[1, 5])

    def test_value_at_past_end_reads_zero(self):
        stream = make_stream(rows=2)
        buffer = StagingBuffer(stream, depth=3)
        assert buffer.value_at(2, 0) == 0.0

    def test_value_at_rejects_bad_step(self):
        buffer = StagingBuffer(make_stream(), depth=3)
        with pytest.raises(IndexError):
            buffer.value_at(3, 0)


class TestAdvance:
    def test_advance_moves_window(self):
        stream = make_stream(rows=10)
        buffer = StagingBuffer(stream, depth=3)
        buffer.advance(2)
        assert np.array_equal(buffer.window(), stream[2:5])

    def test_advance_caps_at_stream_end(self):
        buffer = StagingBuffer(make_stream(rows=4), depth=3)
        assert buffer.advance(3) == 3
        assert buffer.advance(3) == 1
        assert buffer.exhausted

    def test_advance_rejects_negative(self):
        buffer = StagingBuffer(make_stream(), depth=3)
        with pytest.raises(ValueError):
            buffer.advance(-1)

    def test_visible_rows_shrinks_near_end(self):
        buffer = StagingBuffer(make_stream(rows=4), depth=3)
        assert buffer.visible_rows == 3
        buffer.advance(3)
        assert buffer.visible_rows == 1

    def test_reset_rewinds(self):
        stream = make_stream()
        buffer = StagingBuffer(stream, depth=3)
        buffer.advance(5)
        buffer.reset()
        assert np.array_equal(buffer.window(), stream[:3])

    def test_iteration_yields_raw_rows(self):
        stream = make_stream(rows=5)
        buffer = StagingBuffer(stream, depth=3)
        rows = list(buffer)
        assert len(rows) == 5
        assert np.array_equal(np.stack(rows), stream)


class TestValidation:
    def test_rejects_non_2d_stream(self):
        with pytest.raises(ValueError):
            StagingBuffer(np.zeros((3, 4, 5)), depth=3)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            StagingBuffer(np.zeros((4, 16)), depth=0)
