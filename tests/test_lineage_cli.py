"""CLI + service tests for ``repro diff`` (:mod:`repro.lineage`).

Covers the acceptance criteria of the lineage PR end-to-end:

* a manifest diffed against itself exits 0 with an empty delta;
* an injected metric regression makes ``--fail-on regressed`` exit 1,
  with byte-identical golden table output (the style of
  ``test_cli_golden.py``: expected text rendered by a frozen copy of
  the report logic, compared character by character);
* mode auto-detection (study dirs, manifests, segments, BENCH files)
  and the ``POST /v1/diff`` service route;
* the jobs/explore integration: the same study submitted twice through
  the async job service yields manifests whose diff is empty.
"""

import copy
import io
import json
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.analysis.reporting import format_table
from repro.api.schema import DiffRequest, request_from_dict
from repro.api.session import Session
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

BASE_MANIFEST = {
    "version": 1,
    "spec_fingerprint": "fp-golden",
    "completed": {
        "p1": {
            "point_id": "p1", "workload": "snli", "scenario": "dense",
            "knobs": [["staging", 2]], "label": "snli/dense/staging=2",
            "config_label": "c",
            "metrics": {"speedup": 1.5, "energy_efficiency": 1.2,
                        "area_overhead": 0.1},
        },
        "p2": {
            "point_id": "p2", "workload": "snli", "scenario": "dense",
            "knobs": [["staging", 4]], "label": "snli/dense/staging=4",
            "config_label": "c",
            "metrics": {"speedup": 1.8, "energy_efficiency": 1.1,
                        "area_overhead": 0.2},
        },
    },
}


def _write_pair(tmp_path):
    """Baseline + candidate with one slowed point (p2's speedup drops)."""
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(BASE_MANIFEST))
    regressed = copy.deepcopy(BASE_MANIFEST)
    regressed["completed"]["p2"]["metrics"]["speedup"] = 1.0
    b.write_text(json.dumps(regressed))
    return a, b


def _run(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


# ----------------------------------------------------------------------
# golden output

def _golden_identity(path) -> str:
    lines = [
        f"Diff (study): {path} -> {path}",
        "Points: 2 matched, 0 added, 0 removed",
        "Metric deltas: 0 improved, 0 regressed, 0 changed (tolerance 0)",
        "No differences: the snapshots are identical.",
        "",
        "Frontier (speedup:max, energy_efficiency:max, area_overhead:min): "
        "2 held, 0 entered, 0 left",
    ]
    return "\n".join(lines) + "\n"


def _golden_regression(a, b) -> str:
    """The expected regression report, rendered by frozen logic."""
    table = format_table(
        "Changed metrics",
        ["point", "metric", "a", "b", "delta", "relative", "class"],
        [["snli/dense/staging=4", "speedup", "1.8", "1", "-0.8", "-44.4%",
          "regressed"]],
    )
    lines = [
        f"Diff (study): {a} -> {b}",
        "Points: 2 matched, 0 added, 0 removed",
        "Metric deltas: 0 improved, 1 regressed, 0 changed (tolerance 0)",
        "",
        table,
        "",
        "Frontier (speedup:max, energy_efficiency:max, area_overhead:min): "
        "1 held, 0 entered, 1 left",
        "  - p2 left the frontier",
        "",
        "Attribution (single axes explaining every change):",
        "  staging = 4",
        "FAIL: 2 regressed entries (--fail-on regressed)",
    ]
    return "\n".join(lines) + "\n"


class TestDiffCliGolden:
    def test_identity_diff_exits_zero_with_empty_delta(self, tmp_path):
        a, _ = _write_pair(tmp_path)
        code, output = _run(["diff", str(a), str(a)])
        assert code == 0
        assert output == _golden_identity(a)

    def test_injected_regression_fails_loudly_with_golden_table(
        self, tmp_path
    ):
        a, b = _write_pair(tmp_path)
        code, output = _run(
            ["diff", str(a), str(b), "--fail-on", "regressed"]
        )
        assert code == 1
        assert output == _golden_regression(a, b)

    def test_without_fail_on_a_regression_still_exits_zero(self, tmp_path):
        a, b = _write_pair(tmp_path)
        code, output = _run(["diff", str(a), str(b)])
        assert code == 0
        assert "regressed" in output

    def test_fail_on_changed_trips_on_any_movement(self, tmp_path):
        a, b = _write_pair(tmp_path)
        code, output = _run(["diff", str(a), str(b), "--fail-on", "changed"])
        assert code == 1
        assert "--fail-on changed" in output

    def test_tolerance_flag_absorbs_the_change(self, tmp_path):
        a, b = _write_pair(tmp_path)
        code, output = _run(
            ["diff", str(a), str(b), "--tolerance", "0.5",
             "--objectives", "energy_efficiency",
             "--fail-on", "changed"]
        )
        assert code == 0
        assert "identical" in output

    def test_ignore_flag_drops_the_noisy_metric(self, tmp_path):
        a, b = _write_pair(tmp_path)
        code, output = _run(
            ["diff", str(a), str(b), "--ignore", "speedup",
             "--objectives", "energy_efficiency", "--fail-on", "changed"]
        )
        assert code == 0


class TestDiffCliFormats:
    def test_json_format_emits_the_result_envelope(self, tmp_path):
        a, b = _write_pair(tmp_path)
        code, output = _run(["diff", str(a), str(b), "--format", "json"])
        assert code == 0
        envelope = json.loads(output)
        assert envelope["kind"] == "diff"
        assert envelope["result"]["summary"]["regressed"] == 1
        assert envelope["result"]["deltas"][0]["metric"] == "speedup"

    def test_markdown_format_renders_a_pipe_table(self, tmp_path):
        a, b = _write_pair(tmp_path)
        code, output = _run(["diff", str(a), str(b), "--format", "markdown"])
        assert code == 0
        assert "| point | metric |" in output
        assert "`p2` left the frontier" in output


class TestDiffCliDetection:
    def test_study_dir_and_segment_forms_diff_as_identical(self, tmp_path):
        study = tmp_path / "study"
        study.mkdir()
        (study / "manifest.json").write_text(json.dumps(BASE_MANIFEST))
        segment = tmp_path / "run.jsonl"
        lines = [json.dumps({"kind": "header", "version": 1,
                             "spec_fingerprint": "fp-golden"})]
        for record in BASE_MANIFEST["completed"].values():
            lines.append(json.dumps({"kind": "point", "record": record}))
        segment.write_text("\n".join(lines) + "\n")
        code, output = _run(
            ["diff", str(study), str(segment), "--fail-on", "changed"]
        )
        assert code == 0
        assert "identical" in output

    def test_bench_mode_autodetects_from_filenames(self):
        path = str(REPO_ROOT / "BENCH_telemetry.json")
        code, output = _run(["diff", path, path, "--fail-on", "regressed"])
        assert code == 0
        assert "Diff (bench)" in output
        assert "enabled_overhead_fraction" in output

    def test_bench_dir_against_itself_is_clean(self):
        code, output = _run(
            ["diff", str(REPO_ROOT), str(REPO_ROOT),
             "--mode", "bench", "--fail-on", "regressed"]
        )
        assert code == 0

    def test_injected_bench_regression_fails(self, tmp_path):
        committed = json.loads(
            (REPO_ROOT / "BENCH_telemetry.json").read_text()
        )
        fresh = copy.deepcopy(committed)
        fresh["enabled_overhead_fraction"] = 0.9
        fresh_path = tmp_path / "BENCH_telemetry.json"
        fresh_path.write_text(json.dumps(fresh))
        code, output = _run(
            ["diff", str(REPO_ROOT / "BENCH_telemetry.json"),
             str(fresh_path), "--fail-on", "regressed"]
        )
        assert code == 1
        assert "FAIL" in output

    def test_mixed_modes_are_a_usage_error(self, tmp_path):
        a, _ = _write_pair(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", str(a), str(REPO_ROOT / "BENCH_telemetry.json")])
        assert excinfo.value.code == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["diff", str(tmp_path / "nope.json"),
                  str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# schema + service surface

class TestDiffRequestSurface:
    def test_request_round_trips_through_the_wire_format(self):
        request = DiffRequest(
            a=BASE_MANIFEST, b=BASE_MANIFEST, tolerance=0.1,
            ignore=["speedup"], a_label="left", b_label="right",
        )
        payload = json.loads(json.dumps(request.to_dict()))
        assert request_from_dict(payload) == request

    def test_bad_mode_and_tolerance_are_schema_errors(self):
        from repro.api.schema import SchemaError

        with pytest.raises(SchemaError, match="mode"):
            DiffRequest(a={}, b={}, mode="nope")
        with pytest.raises(SchemaError, match="tolerance"):
            DiffRequest(a={}, b={}, tolerance=-1.0)

    def test_post_v1_diff_route_exists(self):
        from repro.api.service import POST_ROUTES

        assert POST_ROUTES.get("/v1/diff") == "diff"

    def test_session_diff_result_round_trips(self):
        session = Session()
        result = session.diff(BASE_MANIFEST, BASE_MANIFEST)
        assert result.kind == "diff"
        assert result.result.identical
        document = json.loads(json.dumps(result.to_dict()))
        assert document["result"]["summary"]["matched_points"] == 2

    def test_malformed_payload_is_a_schema_error(self):
        from repro.api.schema import SchemaError

        session = Session()
        with pytest.raises(SchemaError, match="DiffRequest.a"):
            session.diff({"junk": True}, BASE_MANIFEST)


# ----------------------------------------------------------------------
# jobs/explore integration: PR8 manifests + PR9 jobs + this PR's diff

class TestJobsExploreLineage:
    def test_same_study_twice_through_jobs_diffs_empty(self, tmp_path):
        """Submit one study twice via the async job store into two
        study dirs; the two manifests must diff as identical."""
        from repro.api.schema import ExploreRequest
        from repro.jobs import JobStore

        spec = {
            "name": "lineage-e2e", "workloads": ["snli"],
            "knobs": {"staging": [1, 2]}, "epochs": 1,
            "batches_per_epoch": 1, "batch_size": 4, "max_groups": 8,
        }
        store = JobStore(Session(), workers=1)
        try:
            job_ids = []
            for run in ("first", "second"):
                request = ExploreRequest(
                    spec=spec, study_dir=str(tmp_path / run)
                )
                job_ids.append(store.submit(request))
            for job_id in job_ids:
                record = store.wait(job_id, timeout=300)
                assert record.state == "succeeded", record.error
        finally:
            store.shutdown()
        for run in ("first", "second"):
            assert (tmp_path / run / "manifest.json").exists()
        code, output = _run(
            ["diff", str(tmp_path / "first"), str(tmp_path / "second"),
             "--fail-on", "changed"]
        )
        assert code == 0
        assert "identical" in output
