"""Tests for the multi-tile accelerator model."""

import numpy as np
import pytest

from repro.core.accelerator import Accelerator
from repro.core.config import AcceleratorConfig, PEConfig, TileConfig
from repro.core.tile import TensorDashTile


def make_groups(num_groups=6, tile_rows=4, stream_rows=25, lanes=16, sparsity=0.6, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((num_groups, tile_rows, stream_rows, lanes)) > sparsity


class TestTileCycles:
    def test_matches_functional_tile_model(self):
        """The vectorised cycle path agrees with the per-value tile model."""
        rng = np.random.default_rng(0)
        stream_rows, lanes = 30, 16
        accelerator = Accelerator()
        for seed in range(3):
            rng = np.random.default_rng(seed)
            b_streams = []
            for _ in range(4):
                b = rng.random((stream_rows, lanes))
                b[rng.random((stream_rows, lanes)) < 0.6] = 0.0
                b_streams.append(b)
            a_streams = [rng.random((stream_rows, lanes)) for _ in range(4)]
            functional = TensorDashTile().process(a_streams, b_streams, compute_outputs=False)
            effectual = np.stack([b != 0 for b in b_streams])
            assert accelerator.tile_cycles(effectual) == functional.cycles

    def test_batch_matches_individual_groups(self):
        accelerator = Accelerator()
        groups = make_groups(num_groups=8, seed=1)
        batched = accelerator.tile_cycles_batch(groups)
        individual = np.array([accelerator.tile_cycles(g) for g in groups])
        assert np.array_equal(batched, individual)

    def test_power_gated_matches_baseline(self):
        config = AcceleratorConfig(power_gated=True)
        accelerator = Accelerator(config)
        groups = make_groups(sparsity=0.9, seed=2)
        cycles = accelerator.tile_cycles_batch(groups)
        assert np.all(cycles == groups.shape[2])

    def test_empty_groups(self):
        accelerator = Accelerator()
        cycles = accelerator.tile_cycles_batch(np.zeros((0, 4, 10, 16), dtype=bool))
        assert cycles.shape == (0,)

    def test_rejects_bad_shape(self):
        accelerator = Accelerator()
        with pytest.raises(ValueError):
            accelerator.tile_cycles_batch(np.zeros((4, 10, 16), dtype=bool))


class TestRunOperation:
    def test_speedup_between_one_and_depth(self):
        accelerator = Accelerator()
        result = accelerator.run_operation("AxW", make_groups(sparsity=0.7, seed=3))
        assert 1.0 <= result.speedup <= accelerator.config.pe.max_speedup

    def test_dense_operation_has_unit_speedup(self):
        accelerator = Accelerator()
        groups = np.ones((4, 4, 20, 16), dtype=bool)
        result = accelerator.run_operation("AxW", groups)
        assert result.speedup == pytest.approx(1.0)
        assert result.potential_speedup == pytest.approx(1.0)

    def test_potential_speedup_upper_bounds_actual(self):
        accelerator = Accelerator()
        for sparsity in (0.3, 0.6, 0.9):
            result = accelerator.run_operation("AxW", make_groups(sparsity=sparsity, seed=4))
            assert result.speedup <= result.potential_speedup + 1e-9

    def test_accepts_list_of_groups(self):
        accelerator = Accelerator()
        groups = [g for g in make_groups(num_groups=3, seed=5)]
        from_list = accelerator.run_operation("AxW", groups)
        from_array = accelerator.run_operation("AxW", np.stack(groups))
        assert from_list.tensordash_cycles == from_array.tensordash_cycles
        assert from_list.baseline_cycles == from_array.baseline_cycles

    def test_mac_accounting(self):
        accelerator = Accelerator()
        groups = make_groups(num_groups=2, tile_rows=4, stream_rows=10, seed=6)
        result = accelerator.run_operation("WxG", groups)
        assert result.macs_total == 2 * 4 * 10 * 16
        assert result.macs_effectual == int(groups.sum())


class TestConfigPlumbing:
    def test_describe_mentions_geometry(self):
        description = Accelerator().describe()
        assert "16 tiles" in description
        assert "4x4" in description

    def test_staging_depth_two_configuration(self):
        config = AcceleratorConfig(pe=PEConfig(staging_depth=2))
        accelerator = Accelerator(config)
        groups = make_groups(sparsity=0.9, seed=7)
        deep = Accelerator().tile_cycles_batch(groups).sum()
        shallow = accelerator.tile_cycles_batch(groups).sum()
        assert shallow >= deep

    def test_row_geometry_affects_speedup(self):
        """Fig. 17: grouping more rows per tile cannot increase speedup."""
        rng = np.random.default_rng(8)
        streams = rng.random((16, 40, 16)) > 0.7
        accelerator = Accelerator()

        def speedup_with_rows(rows):
            grouped = streams.reshape(16 // rows, rows, 40, 16)
            tensordash = accelerator.tile_cycles_batch(grouped).sum()
            baseline = grouped.shape[0] * 40
            return baseline / tensordash

        assert speedup_with_rows(1) >= speedup_with_rows(4) >= speedup_with_rows(16)
