"""Tests for Module/Parameter plumbing, Sequential and Graph containers."""

import numpy as np
import pytest

from repro.nn import Add, Concat, Conv2D, Flatten, Linear, ReLU, Sequential
from repro.nn.model import Graph
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_accumulate_grad(self):
        parameter = Parameter(np.zeros((2, 2)))
        parameter.accumulate_grad(np.ones((2, 2)))
        parameter.accumulate_grad(np.ones((2, 2)))
        assert np.allclose(parameter.grad, 2.0)

    def test_zero_grad(self):
        parameter = Parameter(np.zeros(3))
        parameter.accumulate_grad(np.ones(3))
        parameter.zero_grad()
        assert parameter.grad is None

    def test_sparsity(self):
        parameter = Parameter(np.array([0.0, 1.0, 0.0, 3.0]))
        assert parameter.sparsity() == pytest.approx(0.5)

    def test_shape_and_size(self):
        parameter = Parameter(np.zeros((3, 4)))
        assert parameter.shape == (3, 4)
        assert parameter.size == 12


class TestModulePlumbing:
    def test_named_parameters_are_qualified(self):
        model = Sequential([Linear(4, 3, name="fc1"), Linear(3, 2, name="fc2")])
        names = dict(model.named_parameters())
        assert any("layer0" in n and "weight" in n for n in names)

    def test_parameter_count(self):
        model = Sequential([Linear(4, 3), Linear(3, 2)])
        assert model.parameter_count() == (4 * 3 + 3) + (3 * 2 + 2)

    def test_train_eval_propagate(self):
        model = Sequential([Linear(4, 3), ReLU()])
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_traceable_modules_lists_conv_and_linear_only(self):
        model = Sequential([Conv2D(3, 4, 3), ReLU(), Flatten(), Linear(4, 2)])
        traceable = model.traceable_modules()
        assert len(traceable) == 2

    def test_zero_grad_clears_all(self):
        model = Sequential([Linear(4, 3)])
        x = np.ones((2, 4), dtype=np.float32)
        out = model(x)
        model.backward(np.ones_like(out))
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestSequential:
    def test_forward_backward_chain(self):
        rng = np.random.default_rng(0)
        model = Sequential([Linear(8, 6, rng=rng), ReLU(), Linear(6, 4, rng=rng)])
        x = rng.normal(size=(3, 8)).astype(np.float32)
        out = model(x)
        assert out.shape == (3, 4)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_append_and_indexing(self):
        model = Sequential([Linear(4, 4)])
        model.append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)


class TestGraph:
    def _residual_graph(self):
        rng = np.random.default_rng(1)
        graph = Graph(output="out")
        graph.add_node("fc1", Linear(8, 8, rng=rng, name="fc1"), [Graph.INPUT])
        graph.add_node("relu1", ReLU(name="relu1"), ["fc1"])
        graph.add_node("fc2", Linear(8, 8, rng=rng, name="fc2"), ["relu1"])
        graph.add_node("add", Add(name="add"), ["fc2", Graph.INPUT])
        graph.add_node("out", ReLU(name="out"), ["add"])
        return graph

    def test_forward_backward_with_residual(self):
        graph = self._residual_graph()
        x = np.random.default_rng(2).normal(size=(4, 8)).astype(np.float32)
        out = graph(x)
        assert out.shape == (4, 8)
        grad = graph.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_residual_input_gradient_includes_skip_path(self):
        """The input gradient must accumulate both the main and skip paths."""
        rng = np.random.default_rng(3)
        graph = Graph(output="add")
        graph.add_node("fc", Linear(4, 4, rng=rng, name="fc"), [Graph.INPUT])
        graph.add_node("add", Add(name="add"), ["fc", Graph.INPUT])
        x = rng.normal(size=(2, 4)).astype(np.float32)
        graph(x)
        grad = graph.backward(np.ones((2, 4), dtype=np.float32))
        weight = graph._modules["fc"].weight.data
        expected = np.ones((2, 4)) @ weight + np.ones((2, 4))
        assert np.allclose(grad, expected, atol=1e-5)

    def test_concat_graph_splits_gradient(self):
        rng = np.random.default_rng(4)
        graph = Graph(output="concat")
        graph.add_node("a", Linear(4, 3, rng=rng, name="a"), [Graph.INPUT])
        graph.add_node("b", Linear(4, 5, rng=rng, name="b"), [Graph.INPUT])
        graph.add_node("concat", Concat(axis=1, name="concat"), ["a", "b"])
        x = rng.normal(size=(2, 4)).astype(np.float32)
        out = graph(x)
        assert out.shape == (2, 8)
        grad = graph.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_rejects_duplicate_node_names(self):
        graph = Graph(output="x")
        graph.add_node("x", ReLU(), [Graph.INPUT])
        with pytest.raises(ValueError):
            graph.add_node("x", ReLU(), [Graph.INPUT])

    def test_rejects_forward_references(self):
        graph = Graph(output="later")
        with pytest.raises(ValueError):
            graph.add_node("early", ReLU(), ["later"])

    def test_rejects_reserved_input_name(self):
        graph = Graph(output="x")
        with pytest.raises(ValueError):
            graph.add_node("input", ReLU(), ["input"])

    def test_node_names_in_order(self):
        graph = self._residual_graph()
        assert graph.node_names() == ["fc1", "relu1", "fc2", "add", "out"]

    def test_backward_before_forward_raises(self):
        graph = self._residual_graph()
        with pytest.raises(RuntimeError):
            graph.backward(np.zeros((1, 8)))
