"""Tests for SRAM/DRAM models, zero compression and traffic counting."""

import numpy as np
import pytest

from repro.memory.compression import (
    CompressingDMA,
    run_length_decode,
    run_length_encode,
)
from repro.memory.dram import DRAMModel
from repro.memory.sram import BankedSRAM, Scratchpad, SRAMBank
from repro.memory.traffic import MemoryTraffic, TrafficCounter


class TestSRAM:
    def test_bank_access_counters(self):
        bank = SRAMBank(capacity_bytes=1024)
        bank.read(3)
        bank.write(2)
        assert bank.total_accesses == 5
        assert bank.bytes_read() == 3 * 64
        assert bank.bytes_written() == 2 * 64

    def test_bank_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            SRAMBank(capacity_bytes=1024).read(-1)

    def test_banked_sram_capacity(self):
        sram = BankedSRAM("AM", banks=4, kb_per_bank=256)
        assert sram.capacity_bytes == 4 * 256 * 1024

    def test_banked_sram_stripes_accesses(self):
        sram = BankedSRAM("AM", banks=4, kb_per_bank=256, width_bytes=64)
        accesses = sram.access(64 * 8)
        assert accesses == 8
        assert sram.total_reads == 8
        per_bank = [bank.reads for bank in sram.banks]
        assert max(per_bank) - min(per_bank) <= 1

    def test_banked_sram_write_path(self):
        sram = BankedSRAM("CM", banks=2, kb_per_bank=16)
        sram.access(128, write=True)
        assert sram.total_writes == 2
        assert sram.total_reads == 0

    def test_zero_byte_access(self):
        sram = BankedSRAM("AM")
        assert sram.access(0) == 0

    def test_scratchpad_refill_and_spill(self):
        scratchpad = Scratchpad("A-pad")
        scratchpad.refill_rows(rows=3, row_bytes=64)
        scratchpad.spill_outputs(values=16, value_bytes=4)
        assert scratchpad.total_accesses == 3 + 1


class TestDRAM:
    def test_peak_bandwidth(self):
        dram = DRAMModel(channels=4, mts=3200, bus_bits=32)
        assert dram.peak_bandwidth_gbps == pytest.approx(4 * 3200e6 * 4 / 1e9)

    def test_transfer_accumulates_bytes_and_energy(self):
        dram = DRAMModel()
        dram.transfer(1000)
        dram.transfer(500, write=True)
        assert dram.bytes_read == 1000
        assert dram.bytes_written == 500
        assert dram.total_bytes == 1500
        assert dram.energy_pj == pytest.approx(1500 * dram.pj_per_byte)

    def test_latency_scales_with_bytes(self):
        dram = DRAMModel()
        small = dram.transfer(1000).latency_ns
        large = dram.transfer(10000).latency_ns
        assert large == pytest.approx(small * 10)

    def test_reset(self):
        dram = DRAMModel()
        dram.transfer(100)
        dram.reset()
        assert dram.total_bytes == 0
        assert dram.energy_pj == 0.0

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            DRAMModel().transfer(-1)


class TestRunLengthCoding:
    def test_roundtrip_random_sparse(self):
        rng = np.random.default_rng(0)
        for sparsity in (0.0, 0.5, 0.95, 1.0):
            values = rng.normal(size=200)
            values[rng.random(200) < sparsity] = 0.0
            encoded = run_length_encode(values)
            assert np.allclose(run_length_decode(encoded, 200), values)

    def test_all_zero_stream_encodes_compactly(self):
        encoded = run_length_encode(np.zeros(100))
        assert len(encoded) == 1

    def test_long_zero_runs_chunked_at_max_run(self):
        encoded = run_length_encode(np.zeros(600), max_run=255)
        assert len(encoded) == 3

    def test_decode_rejects_overflow(self):
        with pytest.raises(ValueError):
            run_length_decode([(0, 1.0), (0, 2.0)], total=1)


class TestCompressingDMA:
    def test_compression_ratio_tracks_sparsity(self):
        rng = np.random.default_rng(1)
        dma = CompressingDMA(value_bytes=4)
        ratios = []
        for sparsity in (0.0, 0.5, 0.9):
            tensor = rng.normal(size=(64, 64))
            tensor[rng.random(tensor.shape) < sparsity] = 0.0
            ratios.append(dma.compressed_size(tensor).ratio)
        assert ratios[0] <= ratios[1] <= ratios[2]
        assert ratios[2] > 5.0

    def test_dense_tensor_does_not_inflate_meaningfully(self):
        dma = CompressingDMA(value_bytes=4)
        result = dma.compressed_size(np.ones((32, 32)))
        assert result.compressed_bytes <= result.dense_bytes + dma.run_bytes

    def test_compress_decompress_roundtrip(self):
        rng = np.random.default_rng(2)
        dma = CompressingDMA()
        tensor = rng.normal(size=(8, 16))
        tensor[rng.random(tensor.shape) < 0.6] = 0.0
        encoded, _ = dma.compress(tensor)
        assert np.allclose(dma.decompress(encoded, tensor.shape), tensor)


class TestTrafficCounter:
    def _operands(self, sparsity):
        rng = np.random.default_rng(3)
        activations = rng.normal(size=(8, 16, 8, 8)).astype(np.float32)
        activations[rng.random(activations.shape) < sparsity] = 0.0
        weights = rng.normal(size=(32, 16, 3, 3)).astype(np.float32)
        return {"A": activations, "W": weights}

    def test_compression_reduces_dram_bytes(self):
        dense_counter = TrafficCounter(compress_offchip=False)
        compressed_counter = TrafficCounter(compress_offchip=True)
        operands = self._operands(sparsity=0.7)
        dense = dense_counter.operation_traffic(operands, outputs_size=1024)
        compressed = compressed_counter.operation_traffic(operands, outputs_size=1024)
        assert compressed.dram_bytes < dense.dram_bytes

    def test_scheduled_onchip_reduces_sram_bytes(self):
        plain = TrafficCounter(scheduled_onchip=False)
        scheduled = TrafficCounter(scheduled_onchip=True)
        operands = self._operands(sparsity=0.7)
        assert (
            scheduled.operation_traffic(operands, 1024).sram_bytes
            < plain.operation_traffic(operands, 1024).sram_bytes
        )

    def test_traffic_addition_and_scaling(self):
        traffic = MemoryTraffic(dram_bytes=100, sram_bytes=200, scratchpad_bytes=300)
        doubled = traffic + traffic
        assert doubled.dram_bytes == 200
        scaled = traffic.scaled(2.5)
        assert scaled.sram_bytes == 500

    def test_scaled_rounds_instead_of_truncating(self):
        # Regression: int() used to floor every count, so extrapolating
        # sampled streams systematically undercounted traffic.
        traffic = MemoryTraffic(dram_bytes=999, sram_bytes=1001, scratchpad_bytes=3)
        scaled = traffic.scaled(1.0 / 3.0)
        assert scaled.dram_bytes == 333
        assert scaled.sram_bytes == 334   # 333.67 rounds up, not down
        assert scaled.scratchpad_bytes == 1
        up = MemoryTraffic(dram_bytes=7, sram_bytes=0, scratchpad_bytes=0).scaled(1.99)
        assert up.dram_bytes == 14        # 13.93 -> 14, int() would give 13

    def test_scaled_round_trip_error_is_bounded(self):
        traffic = MemoryTraffic(dram_bytes=12345, sram_bytes=67891, scratchpad_bytes=11)
        for factor in (0.1, 1.5, 3.1415):
            scaled = traffic.scaled(factor)
            assert abs(scaled.dram_bytes - traffic.dram_bytes * factor) <= 0.5
            assert abs(scaled.sram_bytes - traffic.sram_bytes * factor) <= 0.5

    def test_bfloat16_traffic_is_half_of_fp32(self):
        operands = self._operands(sparsity=0.0)
        fp32 = TrafficCounter(value_bytes=4, compress_offchip=False)
        bf16 = TrafficCounter(value_bytes=2, compress_offchip=False)
        assert (
            bf16.operation_traffic(operands, 0).dram_bytes
            == fp32.operation_traffic(operands, 0).dram_bytes // 2
        )
