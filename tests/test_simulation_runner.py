"""Tests for the experiment runner and model-level aggregation."""

import numpy as np
import pytest

from repro.core.config import AcceleratorConfig
from repro.models import build_alexnet, build_gcn
from repro.nn.optim import MomentumSGD
from repro.simulation.runner import ExperimentRunner, simulate_model_training
from repro.training import SyntheticImageDataset, SyntheticSequenceDataset, Trainer, TrainingConfig


@pytest.fixture(scope="module")
def alexnet_trace():
    model = build_alexnet(width_multiplier=0.5)
    dataset = SyntheticImageDataset(size=32, seed=0)
    trainer = Trainer(
        model,
        MomentumSGD(model.parameters(), lr=0.01),
        config=TrainingConfig(epochs=3, batches_per_epoch=2, batch_size=8),
    )
    return trainer.train(dataset, model_name="alexnet")


class TestExperimentRunner:
    def test_run_final_epoch_aggregates_layers(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=32)
        result = runner.run_final_epoch(alexnet_trace)
        assert result.model_name == "alexnet"
        assert len(result.layer_results) > 0

    def test_per_operation_speedups_contain_total(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=32)
        result = runner.run_final_epoch(alexnet_trace)
        speedups = result.per_operation_speedups()
        assert set(speedups) == {"AxW", "AxG", "WxG", "Total"}
        for value in speedups.values():
            assert 1.0 <= value <= 3.0 + 1e-9

    def test_potential_upper_bounds_actual(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=32)
        result = runner.run_final_epoch(alexnet_trace)
        potential = result.potential_speedups()
        actual = result.per_operation_speedups()
        # The restricted interconnect cannot beat ideal work reduction,
        # except where the 3x staging cap binds (then both are capped).
        assert actual["Total"] <= max(potential["Total"], 3.0) + 1e-9

    def test_cycles_accounting_consistency(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=32)
        result = runner.run_final_epoch(alexnet_trace)
        per_op_sum = sum(
            result.cycles(op)["baseline"] for op in ("AxW", "AxG", "WxG")
        )
        assert per_op_sum == result.cycles()["baseline"]

    def test_run_over_training_returns_series(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=16)
        series = runner.run_over_training(alexnet_trace)
        assert len(series) == len(alexnet_trace.epochs)
        series_sampled = runner.run_over_training(alexnet_trace, num_points=2)
        assert len(series_sampled) == 2

    def test_potential_speedups_from_trace(self, alexnet_trace):
        potentials = ExperimentRunner.potential_speedups_from_trace(
            alexnet_trace.final_epoch()
        )
        assert set(potentials) == {"AxW", "AxG", "WxG", "Total"}
        assert all(v >= 1.0 for v in potentials.values())

    def test_energy_report_structure(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=32)
        result = runner.run_final_epoch(alexnet_trace)
        report = runner.energy_report(result)
        assert report.core_efficiency >= 1.0
        assert report.overall_efficiency >= 1.0
        assert report.overall_efficiency <= report.core_efficiency
        fractions = report.baseline.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_power_gated_energy_report(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=16)
        result = runner.run_final_epoch(alexnet_trace)
        gated = runner.energy_report(result, power_gated=True)
        ungated = runner.energy_report(result)
        # Power gating removes the scheduler/mux power draw.
        assert gated.tensordash.core_pj <= ungated.tensordash.core_pj


class TestRunBatch:
    def test_batch_matches_per_epoch_runs(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=16)
        epoch = alexnet_trace.final_epoch()
        earlier = alexnet_trace.epochs[0]
        batched = runner.run_batch([("alexnet", epoch), ("alexnet-e0", earlier)])
        assert [r.model_name for r in batched] == ["alexnet", "alexnet-e0"]

        solo = ExperimentRunner(max_groups=16)
        expected = [solo.run_epoch("alexnet", epoch), solo.run_epoch("alexnet-e0", earlier)]
        for got, want in zip(batched, expected):
            assert got.epoch == want.epoch
            assert len(got.layer_results) == len(want.layer_results)
            assert got.cycles() == want.cycles()
            assert got.speedup() == pytest.approx(want.speedup())

    def test_batch_is_one_engine_pass(self, alexnet_trace):
        runner = ExperimentRunner(max_groups=8)
        epoch = alexnet_trace.final_epoch()
        runner.run_batch([("a", epoch), ("b", epoch)])
        total_layers = sum(
            1 for layer in epoch.layers if layer.activation_mask is not None
        )
        assert runner.engine_stats.layers_simulated == 2 * total_layers

    def test_empty_batch(self):
        assert ExperimentRunner(max_groups=8).run_batch([]) == []


class TestSimulateModelTraining:
    def test_end_to_end_convenience(self):
        model = build_alexnet(width_multiplier=0.5)
        dataset = SyntheticImageDataset(size=32, seed=1)
        result = simulate_model_training(
            model, dataset, "alexnet", epochs=1, batches_per_epoch=1,
            batch_size=4, max_groups=16,
        )
        assert result.speedup() >= 1.0

    def test_gcn_shows_virtually_no_speedup(self):
        model = build_gcn(vocab_size=64, sequence_length=10, num_classes=64)
        dataset = SyntheticSequenceDataset(vocab_size=64, sequence_length=10, num_classes=64)
        result = simulate_model_training(
            model, dataset, "gcn", epochs=1, batches_per_epoch=1,
            batch_size=8, max_groups=16,
        )
        assert result.speedup() == pytest.approx(1.0, abs=0.1)

    def test_custom_config_is_used(self):
        model = build_alexnet(width_multiplier=0.5)
        dataset = SyntheticImageDataset(size=32, seed=2)
        config = AcceleratorConfig(power_gated=True)
        result = simulate_model_training(
            model, dataset, "alexnet", config=config, epochs=1,
            batches_per_epoch=1, batch_size=4, max_groups=8,
        )
        assert result.speedup() == pytest.approx(1.0)
