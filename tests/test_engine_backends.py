"""Backend equivalence and result-cache tests for the simulation engine.

The engine's core guarantee is that backend choice is purely a wall-clock
decision: ``vectorized`` and ``parallel`` must be bit-identical to the
``reference`` oracle — same cycle counts, same MAC counts, same traffic —
across sparsity levels and layer shapes.  These tests enforce that at the
operation level (random row groups) and at the system level (traced
layers through the full ``SimulationEngine``), and cover the on-disk
cache's hit/miss/invalidation semantics.
"""

import numpy as np
import pytest

from repro.core.accelerator import Accelerator
from repro.core.config import AcceleratorConfig
from repro.core.tile import TensorDashTile
from repro.engine import (
    ParallelBackend,
    ReferenceBackend,
    ResultCache,
    SimulationEngine,
    VectorizedBackend,
    available_backends,
    config_fingerprint,
    get_backend,
    layer_key,
    trace_fingerprint,
)
from repro.training.tracing import LayerTrace


def random_groups(rng, num_groups, tile_rows, stream_rows, lanes=16, sparsity=0.6):
    return rng.random((num_groups, tile_rows, stream_rows, lanes)) >= sparsity


def make_conv_trace(rng, name="conv0", channels=6, size=10, batch=2,
                    kernel=3, sparsity=0.6):
    shape = (batch, channels, size, size)
    activation = rng.random(shape) >= sparsity
    gradient = rng.random(shape) >= sparsity
    weights = rng.random((4, channels, kernel, kernel)) >= 0.2
    return LayerTrace(
        layer_name=name,
        layer_type="conv",
        kernel=kernel,
        stride=1,
        padding=1,
        weight_mask=weights,
        activation_mask=activation,
        output_gradient_mask=gradient,
        macs=int(np.prod(shape)) * 9,
    )


def assert_results_identical(lhs, rhs):
    assert [r.layer_name for r in lhs] == [r.layer_name for r in rhs]
    for a, b in zip(lhs, rhs):
        assert set(a.operations) == set(b.operations)
        for op in a.operations:
            assert a.operations[op] == b.operations[op], (a.layer_name, op)
        assert a.traffic == b.traffic


class TestBackendRegistry:
    def test_all_three_backends_registered(self):
        assert {"reference", "vectorized", "parallel"} <= set(available_backends())

    def test_get_backend_resolves_names_and_instances(self):
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend(None), VectorizedBackend)
        parallel = get_backend("parallel", jobs=3)
        assert isinstance(parallel, ParallelBackend)
        assert parallel.jobs == 3
        instance = VectorizedBackend()
        assert get_backend(instance) is instance

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("quantum")


class TestOperationEquivalence:
    """Property test: random sparsities/shapes, bit-identical operations."""

    @pytest.mark.parametrize("sparsity", [0.0, 0.3, 0.6, 0.9, 1.0])
    def test_vectorized_matches_reference_across_sparsity(self, sparsity):
        rng = np.random.default_rng(int(sparsity * 10))
        acc = Accelerator()
        groups = random_groups(rng, 6, 4, 33, sparsity=sparsity)
        ref = ReferenceBackend().run_operation(acc, "AxW", groups)
        vec = VectorizedBackend().run_operation(acc, "AxW", groups)
        assert ref == vec

    @pytest.mark.parametrize("seed", range(5))
    def test_vectorized_matches_reference_random_shapes(self, seed):
        rng = np.random.default_rng(seed)
        num_groups = int(rng.integers(1, 9))
        tile_rows = int(rng.integers(1, 5))
        stream_rows = int(rng.integers(1, 50))
        sparsity = float(rng.random())
        config = AcceleratorConfig().with_pe(
            staging_depth=int(rng.integers(1, 5))
        ).with_tile(rows=tile_rows)
        acc = Accelerator(config)
        groups = random_groups(rng, num_groups, tile_rows, stream_rows,
                               sparsity=sparsity)
        ref = ReferenceBackend().run_operation(acc, "WxG", groups)
        vec = VectorizedBackend().run_operation(acc, "WxG", groups)
        assert ref == vec

    def test_power_gated_baseline_identical(self):
        rng = np.random.default_rng(7)
        acc = Accelerator(AcceleratorConfig(power_gated=True))
        groups = random_groups(rng, 4, 4, 20, sparsity=0.5)
        ref = ReferenceBackend().run_operation(acc, "AxG", groups)
        vec = VectorizedBackend().run_operation(acc, "AxG", groups)
        assert ref == vec
        assert ref.tensordash_cycles == ref.baseline_cycles

    def test_accelerator_serial_and_batched_paths_agree(self):
        rng = np.random.default_rng(11)
        acc = Accelerator()
        groups = random_groups(rng, 5, 4, 29, sparsity=0.7)
        serial = acc.run_operation_serial("AxW", list(groups))
        batched = acc.run_operation_batched("AxW", groups)
        assert serial == batched


class TestTileFastPath:
    @pytest.mark.parametrize("sparsity", [0.0, 0.4, 0.8])
    def test_vectorized_tile_cycles_match_serial(self, sparsity):
        rng = np.random.default_rng(int(sparsity * 10) + 1)
        a_streams = [rng.random((26, 16)) for _ in range(4)]
        b_streams = []
        for _ in range(4):
            b = rng.random((26, 16))
            b[rng.random((26, 16)) < sparsity] = 0.0
            b_streams.append(b)
        tile = TensorDashTile()
        serial = tile.process(a_streams, b_streams, compute_outputs=False,
                              vectorized=False)
        fast = tile.process(a_streams, b_streams, compute_outputs=False,
                            vectorized=True)
        assert serial.cycles == fast.cycles
        assert serial.stall_cycles == fast.stall_cycles
        assert serial.macs_performed == fast.macs_performed


class TestSystemEquivalence:
    """Traced layers through the full engine, all three backends."""

    @pytest.fixture(scope="class")
    def traces(self):
        rng = np.random.default_rng(42)
        return [
            make_conv_trace(rng, "conv_dense", sparsity=0.1),
            make_conv_trace(rng, "conv_mid", sparsity=0.5),
            make_conv_trace(rng, "conv_sparse", sparsity=0.9),
        ]

    @pytest.fixture(scope="class")
    def reference_results(self, traces):
        engine = SimulationEngine(backend="reference", max_groups=16)
        return engine.simulate_layers(traces)

    def test_vectorized_bit_identical(self, traces, reference_results):
        engine = SimulationEngine(backend="vectorized", max_groups=16)
        assert_results_identical(engine.simulate_layers(traces),
                                 reference_results)

    def test_parallel_bit_identical(self, traces, reference_results):
        engine = SimulationEngine(backend="parallel", jobs=2, max_groups=16)
        results = engine.simulate_layers(traces)
        assert_results_identical(results, reference_results)

    def test_parallel_single_job_falls_back_in_process(self, traces,
                                                       reference_results):
        engine = SimulationEngine(backend="parallel", jobs=1, max_groups=16)
        assert_results_identical(engine.simulate_layers(traces),
                                 reference_results)

    def test_all_backends_identical_under_finite_hierarchy(self, traces):
        """Memory-aware results are backend-invariant too (incl. stalls)."""
        config = AcceleratorConfig().with_hierarchy(
            dram_bandwidth_gbps=4.0, sram_kb=128
        )
        reference = SimulationEngine(
            config, backend="reference", max_groups=16
        ).simulate_layers(traces)
        assert any(
            op.memory_bound
            for result in reference
            for op in result.operations.values()
        )
        for backend, jobs in (("vectorized", None), ("parallel", 2)):
            results = SimulationEngine(
                config, backend=backend, jobs=jobs, max_groups=16
            ).simulate_layers(traces)
            assert_results_identical(results, reference)

    def test_refill_clamp_equivalence_deep_staging(self):
        """staging depth > scratchpad banks: the clamp binds, backends agree."""
        rng = np.random.default_rng(11)
        config = AcceleratorConfig().with_pe(staging_depth=4).with_hierarchy(
            dram_bandwidth_gbps=51.2
        )
        acc = Accelerator(config)
        # Single-row groups: the group advance equals the row advance, so
        # highly sparse streams regularly drain all 4 staging rows at once
        # and hit the 3-bank refill ceiling.
        groups = random_groups(rng, 8, 1, 40, sparsity=0.97)
        ref = ReferenceBackend().run_operation(acc, "AxW", groups)
        vec = VectorizedBackend().run_operation(acc, "AxW", groups)
        assert ref == vec
        unclamped = VectorizedBackend().run_operation(
            Accelerator(AcceleratorConfig().with_pe(staging_depth=4)),
            "AxW", groups,
        )
        assert vec.tensordash_cycles > unclamped.tensordash_cycles

    def test_layers_without_masks_are_skipped(self, traces):
        engine = SimulationEngine(backend="vectorized", max_groups=16)
        bare = LayerTrace(layer_name="untraced", layer_type="conv")
        results = engine.simulate_layers([bare] + list(traces))
        assert [r.layer_name for r in results] == [t.layer_name for t in traces]

    def test_stats_count_simulated_layers(self, traces):
        engine = SimulationEngine(backend="vectorized", max_groups=16)
        engine.simulate_layers(traces)
        assert engine.stats.layers_simulated == len(traces)
        assert engine.stats.backend == "vectorized"
        assert engine.stats.as_dict()["hit_rate"] == 0.0


class TestResultCache:
    @pytest.fixture()
    def traces(self):
        rng = np.random.default_rng(3)
        return [make_conv_trace(rng, f"conv{i}", sparsity=0.5) for i in range(3)]

    def test_second_run_is_all_hits_and_bit_identical(self, traces, tmp_path):
        first = SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                                 max_groups=16)
        results_first = first.simulate_layers(traces)
        assert first.stats.cache_misses == len(traces)
        assert first.stats.layers_simulated == len(traces)

        second = SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                                  max_groups=16)
        results_second = second.simulate_layers(traces)
        assert second.stats.cache_hits == len(traces)
        assert second.stats.cache_misses == 0
        assert second.stats.layers_simulated == 0
        assert second.stats.hit_rate == 1.0
        assert_results_identical(results_first, results_second)

    def test_config_change_invalidates(self, traces, tmp_path):
        SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                         max_groups=16).simulate_layers(traces)
        other = SimulationEngine(
            AcceleratorConfig().with_pe(staging_depth=2),
            backend="vectorized", cache_dir=tmp_path, max_groups=16,
        )
        other.simulate_layers(traces)
        assert other.stats.cache_hits == 0
        assert other.stats.cache_misses == len(traces)

    def test_hierarchy_change_invalidates(self, traces, tmp_path):
        """Results from differing memory hierarchies must never collide."""
        SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                         max_groups=16).simulate_layers(traces)
        bounded = SimulationEngine(
            AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=4.0),
            backend="vectorized", cache_dir=tmp_path, max_groups=16,
        )
        bounded.simulate_layers(traces)
        assert bounded.stats.cache_hits == 0
        assert bounded.stats.cache_misses == len(traces)
        # A different bandwidth is again a different key...
        other = SimulationEngine(
            AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=8.0),
            backend="vectorized", cache_dir=tmp_path, max_groups=16,
        )
        other.simulate_layers(traces)
        assert other.stats.cache_hits == 0
        # ...while re-running the same bounded config is all hits, with
        # the stall/bound fields surviving the round trip.
        again = SimulationEngine(
            AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=4.0),
            backend="vectorized", cache_dir=tmp_path, max_groups=16,
        )
        cached = again.simulate_layers(traces)
        assert again.stats.cache_hits == len(traces)
        fresh = SimulationEngine(
            AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=4.0),
            backend="vectorized", max_groups=16,
        ).simulate_layers(traces)
        assert_results_identical(cached, fresh)
        assert any(
            op.tensordash_stall_cycles > 0
            for result in cached
            for op in result.operations.values()
        )

    def test_backend_is_part_of_the_key(self, traces, tmp_path):
        SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                         max_groups=16).simulate_layers(traces)
        ref = SimulationEngine(backend="reference", cache_dir=tmp_path,
                               max_groups=16)
        ref.simulate_layers(traces)
        assert ref.stats.cache_hits == 0

    def test_trace_change_invalidates(self, tmp_path):
        rng = np.random.default_rng(9)
        trace_a = make_conv_trace(rng, "conv", sparsity=0.5)
        trace_b = make_conv_trace(rng, "conv", sparsity=0.5)  # new random masks
        engine = SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                                  max_groups=16)
        engine.simulate_layers([trace_a])
        engine.simulate_layers([trace_b])
        assert engine.stats.cache_misses == 2

    def test_corrupt_entry_is_a_miss(self, traces, tmp_path):
        engine = SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                                  max_groups=16)
        engine.simulate_layers(traces)
        for path in engine.cache.cache_dir.glob("*/*.json"):
            path.write_text("{not json")
        again = SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                                 max_groups=16)
        again.simulate_layers(traces)
        assert again.stats.cache_hits == 0
        assert again.stats.cache_misses == len(traces)

    def test_fingerprints_are_stable_and_sensitive(self):
        rng = np.random.default_rng(5)
        trace = make_conv_trace(rng, "conv", sparsity=0.5)
        config = AcceleratorConfig()
        fp1 = config_fingerprint(config, 16, 4)
        fp2 = config_fingerprint(config, 16, 4)
        assert fp1 == fp2
        assert fp1 != config_fingerprint(config, 32, 4)
        tfp = trace_fingerprint(trace)
        assert tfp == trace_fingerprint(trace)
        key = layer_key(fp1, tfp, "vectorized")
        assert key != layer_key(fp1, tfp, "reference")

    def test_cache_len_counts_entries(self, traces, tmp_path):
        engine = SimulationEngine(backend="vectorized", cache_dir=tmp_path,
                                  max_groups=16)
        engine.simulate_layers(traces)
        assert len(ResultCache(tmp_path)) == len(traces)


class TestRunnerIntegration:
    def test_experiment_runner_exposes_engine_stats(self, tmp_path):
        from repro.simulation.runner import ExperimentRunner
        from repro.training.tracing import EpochTrace

        rng = np.random.default_rng(21)
        epoch = EpochTrace(epoch=0,
                           layers=[make_conv_trace(rng, "c0"),
                                   make_conv_trace(rng, "c1")])
        runner = ExperimentRunner(max_groups=16, backend="vectorized",
                                  cache_dir=tmp_path)
        runner.run_epoch("toy", epoch)
        assert runner.engine_stats.cache_misses == 2
        rerun = ExperimentRunner(max_groups=16, backend="vectorized",
                                 cache_dir=tmp_path)
        rerun.run_epoch("toy", epoch)
        assert rerun.engine_stats.cache_hits == 2
        assert rerun.engine_stats.layers_simulated == 0

    def test_runner_backend_equivalence_on_trained_trace(self):
        """End-to-end: a real (briefly trained) model, all backends agree."""
        from repro.models import build_snli
        from repro.nn.optim import MomentumSGD
        from repro.simulation.runner import ExperimentRunner
        from repro.training import (
            SyntheticSequenceDataset,
            Trainer,
            TrainingConfig,
        )

        model = build_snli(seed=0)
        dataset = SyntheticSequenceDataset(vocab_size=512, sequence_length=20,
                                           num_classes=3, seed=0)
        trainer = Trainer(
            model, MomentumSGD(model.parameters(), lr=0.01),
            config=TrainingConfig(epochs=1, batches_per_epoch=1, batch_size=4),
        )
        trace = trainer.train(dataset, model_name="snli")
        results = {}
        for backend in ("reference", "vectorized", "parallel"):
            runner = ExperimentRunner(max_groups=8, backend=backend, jobs=2)
            results[backend] = runner.run_final_epoch(trace)
        ref = results["reference"]
        for backend in ("vectorized", "parallel"):
            assert_results_identical(results[backend].layer_results,
                                     ref.layer_results)
            assert results[backend].speedup() == ref.speedup()
