"""Tests for the multi-device scaling subsystem (:mod:`repro.scale`).

The load-bearing contracts:

* **single-device parity** — one device with an unbounded interconnect
  (and, since a single device never communicates, with any interconnect)
  reproduces plain single-accelerator simulation bit-exactly;
* **monotonicity** — scaling efficiency never exceeds 1.0, and shrinking
  the link bandwidth never improves it;
* **schema round-trip** — ``ScaleRequest`` / ``ScaleResult`` obey the
  same dict/JSON round-trip contract as every other api type;
* **integration** — the session handler, the batch service route and the
  explore knobs all reach the same model.
"""

import json

import numpy as np
import pytest

from repro.api.schema import (
    ApiResult,
    ScaleRequest,
    ScaleResult,
    SchemaError,
    request_from_dict,
)
from repro.core.config import AcceleratorConfig
from repro.models.registry import trace_workload
from repro.scale import (
    Interconnect,
    ScaleRunner,
    ScalingReport,
    check_partition,
    partition_data,
    partition_pipeline,
    stage_boundary_bytes,
    weight_gradient_bytes,
)
from repro.simulation.runner import ExperimentRunner

MODEL = "snli"
EPOCHS = 1
BATCHES = 1
BATCH_SIZE = 4
MAX_GROUPS = 32


@pytest.fixture(scope="module")
def epoch_trace():
    trace = trace_workload(MODEL, epochs=EPOCHS, batches_per_epoch=BATCHES,
                           batch_size=BATCH_SIZE, seed=0)
    return trace.final_epoch()


@pytest.fixture(scope="module")
def scale_runner():
    return ScaleRunner(AcceleratorConfig(), max_groups=MAX_GROUPS)


class TestInterconnect:
    def test_unbounded_costs_nothing(self):
        link = Interconnect.unbounded()
        assert link.is_unbounded
        assert link.transfer_cycles(10 ** 9, 500.0) == 0
        assert link.allreduce_cycles(10 ** 9, 8, 500.0) == 0

    def test_transfer_charges_bandwidth_and_hops(self):
        link = Interconnect(link_gbps=25.0, hop_latency_cycles=100)
        # 25 GB/s at 500 MHz = 50 bytes per cycle.
        assert link.transfer_cycles(5000, 500.0) == 100 + 100
        assert link.transfer_cycles(5000, 500.0, hops=3) == 300 + 100
        assert link.transfer_cycles(0, 500.0) == 0

    def test_allreduce_ring_volume(self):
        link = Interconnect(link_gbps=25.0, hop_latency_cycles=0)
        # 4 devices, 1000 bytes: 6 steps x 250 bytes / 50 B-per-cycle.
        assert link.allreduce_cycles(1000, 4, 500.0) == 30
        assert link.allreduce_cycles(1000, 1, 500.0) == 0

    def test_allreduce_monotone_in_bandwidth(self):
        slow = Interconnect(link_gbps=1.0).allreduce_cycles(10 ** 6, 4, 500.0)
        fast = Interconnect(link_gbps=100.0).allreduce_cycles(10 ** 6, 4, 500.0)
        assert slow > fast > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Interconnect(link_gbps=0)
        with pytest.raises(ValueError):
            Interconnect(hop_latency_cycles=-1)
        # NaN passes ordering comparisons; an infinite link is spelled
        # link_gbps=None.  Both must be rejected, not crash later.
        with pytest.raises(ValueError):
            Interconnect(link_gbps=float("nan"))
        with pytest.raises(ValueError):
            Interconnect(link_gbps=float("inf"))

    def test_dict_round_trip(self):
        for link in (Interconnect.unbounded(), Interconnect.default(),
                     Interconnect(link_gbps=3.5, hop_latency_cycles=7)):
            assert Interconnect.from_dict(link.as_dict()) == link

    def test_describe(self):
        assert Interconnect.unbounded().describe() == "ideal (unbounded)"
        assert "25 GB/s" in Interconnect.default().describe()


class TestPartition:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown partition"):
            check_partition("tensor")

    def test_single_device_returns_original_trace(self, epoch_trace):
        assert partition_data(epoch_trace, 1)[0] is epoch_trace
        assert partition_pipeline(epoch_trace, 1)[0] is epoch_trace

    def test_data_shards_preserve_every_sample(self, epoch_trace):
        shards = partition_data(epoch_trace, 2)
        assert len(shards) == 2
        for layer in epoch_trace.layers:
            if layer.activation_mask is None:
                continue
            pieces = [
                shard_layer.activation_mask
                for shard in shards
                for shard_layer in shard.layers
                if shard_layer.layer_name == layer.layer_name
            ]
            rebuilt = np.concatenate(pieces, axis=0)
            np.testing.assert_array_equal(rebuilt, layer.activation_mask)

    def test_data_more_devices_than_samples_leaves_idle_shards(self, epoch_trace):
        batch = epoch_trace.layers[0].activation_mask.shape[0]
        shards = partition_data(epoch_trace, batch + 3)
        busy = [shard for shard in shards if shard.layers]
        assert len(busy) == batch

    def test_pipeline_stages_are_contiguous_and_cover(self, epoch_trace):
        stages = partition_pipeline(epoch_trace, 3)
        assert len(stages) == 3
        names = [layer.layer_name for stage in stages for layer in stage.layers]
        assert names == [layer.layer_name for layer in epoch_trace.layers]

    def test_weight_gradient_bytes_counts_every_parameter(self, epoch_trace):
        expected = sum(
            layer.weight_mask.size
            for layer in epoch_trace.layers
            if layer.weight_mask is not None
        )
        assert weight_gradient_bytes(epoch_trace, 4) == expected * 4

    def test_stage_boundary_bytes(self, epoch_trace):
        stages = partition_pipeline(epoch_trace, 2)
        boundaries = stage_boundary_bytes(stages, 4)
        assert len(boundaries) == 1
        first_downstream = stages[1].layers[0]
        assert boundaries[0] == first_downstream.activation_mask.size * 4


class TestSingleDeviceParity:
    """N=1 must be bit-identical to plain single-accelerator simulation."""

    @pytest.mark.parametrize("partition", ["data", "pipeline"])
    @pytest.mark.parametrize(
        "interconnect", [Interconnect.unbounded(), Interconnect.default()],
        ids=["unbounded", "default-link"],
    )
    def test_one_device_matches_plain_simulation(
        self, epoch_trace, scale_runner, partition, interconnect
    ):
        plain = ExperimentRunner(
            AcceleratorConfig(), max_groups=MAX_GROUPS
        ).run_epoch(MODEL, epoch_trace).cycles()
        report = scale_runner.run(
            epoch_trace, workload=MODEL, num_devices=1,
            partition=partition, interconnect=interconnect,
        )
        assert report.scaled_cycles == plain["tensordash"]
        assert report.single_device_cycles == plain["tensordash"]
        assert report.single_device_baseline_cycles == plain["baseline"]
        assert report.comm_stall_cycles == 0
        assert report.speedup == 1.0
        assert report.efficiency == 1.0
        assert report.bound == "compute"

    def test_one_device_shard_is_pure_cache_reuse(self, epoch_trace):
        runner = ScaleRunner(AcceleratorConfig(), max_groups=MAX_GROUPS)
        runner.run(epoch_trace, num_devices=1)
        stats = runner.engine.stats
        # The reference pass simulates every layer once; the single
        # shard (the same trace object) is served from the memo.
        assert stats.layers_simulated == len(epoch_trace.layers)
        assert stats.cache_hits >= len(epoch_trace.layers)


class TestMonotonicity:
    @pytest.mark.parametrize("partition", ["data", "pipeline"])
    @pytest.mark.parametrize("devices", [1, 2, 4])
    def test_efficiency_never_exceeds_one(
        self, epoch_trace, scale_runner, partition, devices
    ):
        report = scale_runner.run(
            epoch_trace, num_devices=devices, partition=partition,
            interconnect=Interconnect.unbounded(),
        )
        assert 0.0 < report.efficiency <= 1.0

    @pytest.mark.parametrize("partition", ["data", "pipeline"])
    def test_efficiency_non_increasing_with_finite_link(
        self, epoch_trace, scale_runner, partition
    ):
        links = [
            Interconnect.unbounded(),
            Interconnect(link_gbps=100.0, hop_latency_cycles=100),
            Interconnect(link_gbps=25.0, hop_latency_cycles=500),
            Interconnect(link_gbps=1.0, hop_latency_cycles=500),
        ]
        efficiencies = [
            scale_runner.run(
                epoch_trace, num_devices=2, partition=partition,
                interconnect=link,
            ).efficiency
            for link in links
        ]
        assert all(
            earlier >= later
            for earlier, later in zip(efficiencies, efficiencies[1:])
        )
        # A badly starved link must actually expose communication.
        report = scale_runner.run(
            epoch_trace, num_devices=2, partition=partition,
            interconnect=links[-1],
        )
        assert report.comm_stall_cycles > 0
        assert report.bound == "interconnect"

    def test_comm_fraction_within_bounds(self, epoch_trace, scale_runner):
        report = scale_runner.run(
            epoch_trace, num_devices=4, partition="data",
            interconnect=Interconnect(link_gbps=0.5, hop_latency_cycles=500),
        )
        assert 0.0 <= report.comm_fraction <= 1.0


class TestScalingReport:
    def test_dict_round_trip(self, epoch_trace, scale_runner):
        report = scale_runner.run(
            epoch_trace, workload=MODEL, num_devices=2, partition="data",
        )
        rebuilt = ScalingReport.from_dict(
            json.loads(json.dumps(report.as_dict()))
        )
        assert rebuilt == report
        assert rebuilt.efficiency == report.efficiency

    def test_device_rows_and_verdicts(self, epoch_trace, scale_runner):
        report = scale_runner.run(epoch_trace, num_devices=2, partition="data")
        assert len(report.devices) == 2
        for device in report.devices:
            assert device.total_cycles == max(
                device.compute_cycles, device.comm_cycles
            )
            assert device.bound in ("compute", "link")


class TestSchema:
    def test_request_round_trip(self):
        request = ScaleRequest(
            model=MODEL, epochs=1, num_devices=4, partition="pipeline",
            link_gbps=12.5, hop_latency_cycles=64, trace_max_batch=8,
        )
        assert ScaleRequest.from_dict(request.to_dict()) == request
        wire = json.dumps(request.to_dict())
        assert request_from_dict(json.loads(wire)) == request

    def test_request_unbounded_link_round_trip(self):
        request = ScaleRequest(
            model=MODEL, link_gbps=None, hop_latency_cycles=0
        )
        rebuilt = ScaleRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert rebuilt.link_gbps is None

    def test_result_round_trip(self, epoch_trace, scale_runner):
        report = scale_runner.run(epoch_trace, workload=MODEL, num_devices=2)
        result = ScaleResult(
            model=MODEL, config="cfg", partition="data", num_devices=2,
            link=report.interconnect.describe(), speedup=report.speedup,
            efficiency=report.efficiency, comm_fraction=report.comm_fraction,
            single_device_cycles=report.single_device_cycles,
            scaled_cycles=report.scaled_cycles, report=report.as_dict(),
        )
        assert ScaleResult.from_dict(json.loads(json.dumps(result.to_dict()))) == result

    @pytest.mark.parametrize(
        "overrides, field",
        [
            ({"num_devices": 0}, "ScaleRequest.num_devices"),
            ({"num_devices": "two"}, "ScaleRequest.num_devices"),
            ({"partition": "tensor"}, "ScaleRequest.partition"),
            ({"link_gbps": -1.0}, "ScaleRequest.link_gbps"),
            ({"link_gbps": float("nan")}, "ScaleRequest.link_gbps"),
            ({"hop_latency_cycles": -5}, "ScaleRequest.hop_latency_cycles"),
            ({"trace_max_batch": 0}, "ScaleRequest.trace_max_batch"),
            ({"model": "not-a-model"}, "ScaleRequest.model"),
        ],
    )
    def test_validation_names_the_bad_field(self, overrides, field):
        payload = ScaleRequest(model=MODEL).to_dict()
        payload.update(overrides)
        with pytest.raises(SchemaError) as excinfo:
            ScaleRequest.from_dict(payload)
        assert excinfo.value.field == field


class TestSessionIntegration:
    @pytest.fixture(scope="class")
    def session(self):
        from repro.api.session import Session

        return Session()

    def test_submit_returns_scale_envelope(self, session):
        result = session.scale(
            MODEL, epochs=EPOCHS, batches_per_epoch=BATCHES,
            batch_size=BATCH_SIZE, max_groups=MAX_GROUPS, num_devices=2,
        )
        assert isinstance(result, ApiResult)
        assert result.kind == "scale"
        assert isinstance(result.result, ScaleResult)
        assert result.result.num_devices == 2
        assert result.result.report["devices"]
        # The envelope round-trips through JSON like every other kind.
        assert ApiResult.from_dict(json.loads(json.dumps(result.to_dict())))

    def test_warm_session_resimulates_nothing(self, session):
        params = dict(
            epochs=EPOCHS, batches_per_epoch=BATCHES,
            batch_size=BATCH_SIZE, max_groups=MAX_GROUPS, num_devices=2,
        )
        session.scale(MODEL, **params)
        again = session.scale(MODEL, **params)
        assert again.engine["layers_simulated"] == 0
        assert again.engine["cache_hits"] > 0

    def test_parity_against_simulate_through_the_session(self, session):
        scale = session.scale(
            MODEL, epochs=EPOCHS, batches_per_epoch=BATCHES,
            batch_size=BATCH_SIZE, max_groups=MAX_GROUPS,
            num_devices=1, link_gbps=None, hop_latency_cycles=0,
        )
        report = ScalingReport.from_dict(scale.result.report)
        assert report.scaled_cycles == report.single_device_cycles
        assert scale.result.efficiency == 1.0


class TestExploreIntegration:
    def test_scale_knobs_validate(self):
        from repro.explore.spec import StudySpec

        spec = StudySpec(
            workloads=[MODEL],
            knobs={"num_devices": [1, 2], "partition": ["data"]},
            epochs=1, batches_per_epoch=1, batch_size=4, max_groups=8,
        )
        points = spec.expand()
        assert len(points) == 2
        # Scaling knobs never touch the per-device hardware config.
        assert points[0].config() == AcceleratorConfig()
        assert points[1].scale_plan() == {"num_devices": 2, "partition": "data"}

    @pytest.mark.parametrize(
        "knobs, message",
        [
            ({"num_devices": [0]}, "num_devices"),
            ({"partition": ["tensor"]}, "partition"),
            ({"link_gbps": [-2]}, "link_gbps"),
            ({"link_gbps": [float("nan")]}, "link_gbps"),
            ({"warp_drive": [1]}, "unknown knob"),
        ],
    )
    def test_bad_scale_knobs_rejected(self, knobs, message):
        from repro.explore.spec import StudySpec

        with pytest.raises(ValueError, match=message):
            StudySpec(workloads=[MODEL], knobs=knobs)

    def test_study_records_scaling_metrics(self, tmp_path):
        from repro.explore.report import format_study_report
        from repro.explore.runner import StudyRunner
        from repro.explore.spec import StudySpec

        spec = StudySpec(
            name="scale-study",
            workloads=[MODEL],
            knobs={"num_devices": [1, 2]},
            objectives=["scaled_speedup", "scaling_efficiency", "comm_fraction"],
            epochs=1, batches_per_epoch=1, batch_size=4, max_groups=8,
        )
        study = StudyRunner(spec).run()
        for point, devices in zip(study.points, (1, 2)):
            assert point.metrics["num_devices"] == float(devices)
            assert 0.0 < point.metrics["scaling_efficiency"] <= 1.0
        report = format_study_report(study)
        assert "Scaling (speedup vs one device" in report

    def test_trace_max_batch_is_fingerprinted_only_when_set(self):
        from repro.explore.spec import StudySpec

        base = StudySpec(workloads=[MODEL])
        raised = StudySpec(workloads=[MODEL], trace_max_batch=8)
        assert base.fingerprint() != raised.fingerprint()
        assert base.trace_max_batch is None


class TestServiceRoute:
    def test_scale_route_is_registered(self):
        from repro.api.service import POST_ROUTES

        assert POST_ROUTES["/v1/scale"] == "scale"
