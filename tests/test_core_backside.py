"""Tests for pre-scheduling (scheduled-form storage) and the back-side scheduler."""

import numpy as np
import pytest

from repro.core.backside import BacksideScheduler, PreScheduler
from repro.core.interconnect import ConnectivityPattern


def make_stream(rows=40, lanes=16, sparsity=0.6, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.random((rows, lanes))
    values[rng.random((rows, lanes)) < sparsity] = 0.0
    return values


class TestPreScheduler:
    def test_roundtrip_reproduces_original(self):
        scheduler = PreScheduler()
        for seed in range(5):
            stream = make_stream(seed=seed)
            assert np.allclose(scheduler.roundtrip(stream), stream)

    def test_roundtrip_dense_stream(self):
        scheduler = PreScheduler()
        stream = make_stream(sparsity=0.0, seed=1)
        assert np.allclose(scheduler.roundtrip(stream), stream)

    def test_roundtrip_all_zero_stream(self):
        scheduler = PreScheduler()
        stream = np.zeros((30, 16))
        assert np.allclose(scheduler.roundtrip(stream), stream)

    def test_compression_ratio_grows_with_sparsity(self):
        scheduler = PreScheduler()
        ratios = []
        for sparsity in (0.0, 0.3, 0.6, 0.9):
            stream = make_stream(rows=120, sparsity=sparsity, seed=2)
            ratios.append(scheduler.compress(stream).compression_ratio)
        assert ratios == sorted(ratios)
        assert ratios[0] == pytest.approx(1.0)

    def test_compression_ratio_capped_by_staging_depth(self):
        scheduler = PreScheduler()
        stream = make_stream(rows=90, sparsity=0.99, seed=3)
        assert scheduler.compress(stream).compression_ratio <= 3.0 + 1e-9

    def test_scheduled_rows_never_exceed_dense_rows(self):
        scheduler = PreScheduler()
        for sparsity in (0.0, 0.5, 0.9):
            stream = make_stream(rows=50, sparsity=sparsity, seed=4)
            scheduled = scheduler.compress(stream)
            assert scheduled.scheduled_row_count <= scheduled.dense_rows

    def test_every_nonzero_value_stored_exactly_once(self):
        scheduler = PreScheduler()
        stream = make_stream(rows=40, sparsity=0.7, seed=5)
        scheduled = scheduler.compress(stream)
        stored = sorted(
            value
            for row in scheduled.rows
            for value, idx in zip(row.values, row.indices)
            if idx is not None
        )
        original = sorted(stream[stream != 0].tolist())
        assert np.allclose(stored, original)

    def test_rejects_wrong_lane_count(self):
        scheduler = PreScheduler()
        with pytest.raises(ValueError):
            scheduler.compress(np.zeros((10, 8)))

    def test_works_with_two_deep_pattern(self):
        scheduler = PreScheduler(ConnectivityPattern(staging_depth=2))
        stream = make_stream(rows=40, sparsity=0.7, seed=6)
        assert np.allclose(scheduler.roundtrip(stream), stream)
        assert scheduler.compress(stream).compression_ratio <= 2.0 + 1e-9

    def test_footprint_values(self):
        scheduler = PreScheduler()
        stream = make_stream(rows=40, sparsity=0.8, seed=7)
        scheduled = scheduler.compress(stream)
        assert scheduled.footprint_values() == scheduled.scheduled_row_count * 16


class TestBacksideScheduler:
    def test_storage_savings_track_sparsity(self):
        backside = BacksideScheduler()
        sparse_saving = backside.storage_savings(make_stream(sparsity=0.8, seed=8))
        dense_saving = backside.storage_savings(make_stream(sparsity=0.0, seed=8))
        assert sparse_saving > dense_saving
        assert dense_saving == pytest.approx(0.0)

    def test_iterative_scheduler_takes_levels_cycles_per_row(self):
        backside = BacksideScheduler(iterative=True)
        block = make_stream(rows=30, sparsity=0.5, seed=9)
        scheduled, cycles = backside.schedule_output_block(block)
        levels = len(ConnectivityPattern().level_groups())
        assert cycles == scheduled.scheduled_row_count * levels

    def test_non_iterative_scheduler_is_single_cycle_per_row(self):
        backside = BacksideScheduler(iterative=False)
        block = make_stream(rows=30, sparsity=0.5, seed=10)
        scheduled, cycles = backside.schedule_output_block(block)
        assert cycles == scheduled.scheduled_row_count

    def test_scheduled_form_decompresses_identically(self):
        backside = BacksideScheduler()
        block = make_stream(rows=30, sparsity=0.5, seed=11)
        scheduled, _ = backside.schedule_output_block(block)
        assert np.allclose(backside.pre_scheduler.decompress(scheduled), block)
