"""Tests for the 16x16 grouped tensor layout and the transposers."""

import numpy as np
import pytest

from repro.memory.layout import GroupedTensorLayout, TensorGroup
from repro.memory.transposer import Transposer, TransposerArray


class TestGroupedLayout:
    def test_group_count_for_aligned_shape(self):
        layout = GroupedTensorLayout()
        assert layout.group_count((32, 32, 4)) == 2 * 2 * 4

    def test_group_count_for_ragged_shape(self):
        layout = GroupedTensorLayout()
        assert layout.group_count((17, 18, 3)) == 2 * 2 * 3

    def test_roundtrip_aligned(self):
        rng = np.random.default_rng(0)
        layout = GroupedTensorLayout()
        tensor = rng.normal(size=(32, 16, 4)).astype(np.float32)
        packed = layout.group_all(tensor)
        assert np.allclose(layout.ungroup(packed, tensor.shape), tensor)

    def test_roundtrip_ragged(self):
        rng = np.random.default_rng(1)
        layout = GroupedTensorLayout()
        tensor = rng.normal(size=(18, 21, 5)).astype(np.float32)
        packed = layout.group_all(tensor)
        assert np.allclose(layout.ungroup(packed, tensor.shape), tensor)

    def test_group_block_holds_contiguous_channels(self):
        rng = np.random.default_rng(2)
        layout = GroupedTensorLayout()
        tensor = rng.normal(size=(32, 20, 3)).astype(np.float32)
        group = TensorGroup(channel_start=16, row_start=0, column=1)
        block = layout.extract_group(tensor, group)
        assert np.allclose(block[2], tensor[16:32, 2, 1])

    def test_channel_block_access(self):
        rng = np.random.default_rng(3)
        layout = GroupedTensorLayout()
        tensor = rng.normal(size=(40, 8, 8)).astype(np.float32)
        block = layout.channel_block(tensor, row=3, column=5, channel_start=16)
        assert np.allclose(block, tensor[16:32, 3, 5])

    def test_channel_block_pads_ragged_channels(self):
        layout = GroupedTensorLayout()
        tensor = np.ones((10, 4, 4), dtype=np.float32)
        block = layout.channel_block(tensor, 0, 0, 0)
        assert block.shape == (16,)
        assert np.allclose(block[:10], 1.0)
        assert np.allclose(block[10:], 0.0)

    def test_groups_allocated_in_channel_column_row_order(self):
        layout = GroupedTensorLayout()
        groups = layout.groups_for_shape((32, 16, 2))
        # First groups iterate the channel dimension fastest.
        assert groups[0] == TensorGroup(0, 0, 0)
        assert groups[1] == TensorGroup(16, 0, 0)
        assert groups[2] == TensorGroup(0, 0, 1)

    def test_ungroup_rejects_wrong_group_count(self):
        layout = GroupedTensorLayout()
        with pytest.raises(ValueError):
            layout.ungroup(np.zeros((3, 16, 16)), (32, 32, 4))

    def test_iter_channel_blocks_covers_tensor(self):
        layout = GroupedTensorLayout()
        tensor = np.arange(16 * 2 * 2, dtype=np.float32).reshape(16, 2, 2)
        blocks = list(layout.iter_channel_blocks(tensor))
        assert len(blocks) == 4
        total = sum(float(b.sum()) for b in blocks)
        assert total == pytest.approx(float(tensor.sum()))

    def test_rejects_bad_group_dimensions(self):
        with pytest.raises(ValueError):
            GroupedTensorLayout(group_channels=0)


class TestTransposer:
    def test_transpose_group(self):
        rng = np.random.default_rng(4)
        group = rng.normal(size=(16, 16)).astype(np.float32)
        transposer = Transposer()
        assert np.allclose(transposer.transpose_group(group), group.T)

    def test_read_row_is_transposed_view(self):
        rng = np.random.default_rng(5)
        group = rng.normal(size=(16, 16)).astype(np.float32)
        transposer = Transposer()
        transposer.load_group(group)
        assert np.allclose(transposer.read_row(3), group[:, 3])

    def test_read_block_is_passthrough(self):
        rng = np.random.default_rng(6)
        group = rng.normal(size=(16, 16)).astype(np.float32)
        transposer = Transposer()
        transposer.load_group(group)
        assert np.allclose(transposer.read_block(7), group[7])

    def test_access_counters(self):
        transposer = Transposer()
        transposer.load_group(np.zeros((16, 16)))
        transposer.read_row(0)
        transposer.read_row(1)
        assert transposer.loads == 1
        assert transposer.reads == 2

    def test_read_before_load_raises(self):
        with pytest.raises(RuntimeError):
            Transposer().read_row(0)

    def test_rejects_wrong_group_shape(self):
        with pytest.raises(ValueError):
            Transposer().load_group(np.zeros((8, 16)))

    def test_layout_plus_transposer_recover_transposed_tensor(self):
        """End to end: grouped storage + transposer yields the backward-pass view."""
        rng = np.random.default_rng(7)
        layout = GroupedTensorLayout()
        tensor = rng.normal(size=(16, 16, 1)).astype(np.float32)
        packed = layout.group_all(tensor)
        transposer = Transposer()
        transposed = transposer.transpose_group(packed[0])
        # Block r of the group is channels at row r; its transpose serves
        # one channel across all 16 rows, which is the weight/gradient
        # regrouping the backward pass needs.
        assert np.allclose(transposed[3], tensor[3, :, 0])


class TestTransposerArray:
    def test_round_robin_dispatch(self):
        array = TransposerArray(count=3)
        group = np.zeros((16, 16))
        for _ in range(6):
            array.transpose_group(group)
        assert array.total_loads == 6
        assert all(t.loads == 2 for t in array.transposers)

    def test_total_reads(self):
        array = TransposerArray(count=2)
        array.transpose_group(np.zeros((16, 16)))
        assert array.total_reads == 16

    def test_rejects_zero_transposers(self):
        with pytest.raises(ValueError):
            TransposerArray(count=0)
