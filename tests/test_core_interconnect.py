"""Tests for the sparse interconnect connectivity pattern."""

import pytest

from repro.core.interconnect import ConnectivityPattern, PAPER_LEVEL_GROUPS


class TestDefaultPattern:
    def setup_method(self):
        self.pattern = ConnectivityPattern()

    def test_default_has_eight_options_per_lane(self):
        assert self.pattern.options_per_lane == 8

    def test_first_option_is_dense_position(self):
        for lane in range(16):
            assert self.pattern.options_for_lane(lane)[0] == (0, lane)

    def test_lookahead_options_stay_in_lane(self):
        for lane in range(16):
            options = self.pattern.options_for_lane(lane)
            assert options[1] == (1, lane)
            assert options[2] == (2, lane)

    def test_paper_lookaside_pattern_for_lane8(self):
        # Fig. 9: lane 8 can reach lanes 7, 9, 6, 10 and 5 at the steps shown.
        options = self.pattern.options_for_lane(8)
        assert options == (
            (0, 8), (1, 8), (2, 8), (1, 7), (1, 9), (2, 6), (2, 10), (1, 5),
        )

    def test_lane_indices_wrap_around(self):
        options = self.pattern.options_for_lane(0)
        assert (1, 15) in options     # i-1 wraps
        assert (2, 14) in options     # i-2 wraps
        assert (1, 13) in options     # i-3 wraps

    def test_every_lane_has_unique_option_positions(self):
        for lane in range(16):
            options = self.pattern.options_for_lane(lane)
            assert len(set(options)) == len(options)

    def test_select_bits_is_three(self):
        assert self.pattern.select_bits() == 3


class TestLevelGroups:
    def test_paper_level_groups_are_conflict_free(self):
        pattern = ConnectivityPattern()
        assert pattern.validate_level_groups(PAPER_LEVEL_GROUPS)

    def test_greedy_groups_match_paper_for_default_geometry(self):
        pattern = ConnectivityPattern()
        groups = [tuple(g) for g in pattern.level_groups()]
        assert groups == [tuple(g) for g in PAPER_LEVEL_GROUPS]

    def test_greedy_groups_cover_all_lanes_exactly_once(self):
        pattern = ConnectivityPattern(lanes=16)
        lanes = [lane for group in pattern.level_groups() for lane in group]
        assert sorted(lanes) == list(range(16))

    def test_greedy_groups_are_conflict_free_for_other_geometries(self):
        for lanes in (4, 8, 12, 32):
            pattern = ConnectivityPattern(lanes=lanes)
            assert pattern.validate_level_groups(pattern.level_groups())

    def test_overlapping_group_detected_as_invalid(self):
        pattern = ConnectivityPattern()
        # Lanes 0 and 1 share option positions (lane 1's (1,0) vs lane 0's (1,0)).
        assert not pattern.validate_level_groups([[0, 1]])


class TestReducedDepth:
    def test_two_deep_buffer_keeps_five_options(self):
        # The Fig. 19 low-cost design point: lookahead 1, 5 movements.
        pattern = ConnectivityPattern(staging_depth=2)
        assert pattern.options_per_lane == 5
        for step, _ in pattern.template:
            assert step <= 1

    def test_depth_one_is_dense_only(self):
        pattern = ConnectivityPattern(staging_depth=1)
        assert pattern.options_per_lane == 1
        assert pattern.options_for_lane(3) == ((0, 3),)

    def test_promotion_map_reaches_every_position(self):
        pattern = ConnectivityPattern()
        reachable = pattern.promotion_map()
        # Every staging position within the depth must be readable by at
        # least its own lane's dense/lookahead option.
        for lane in range(16):
            for step in range(3):
                assert (step, lane) in reachable


class TestValidation:
    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            ConnectivityPattern(lanes=0)

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            ConnectivityPattern(staging_depth=0)

    def test_rejects_template_without_dense_position(self):
        with pytest.raises(ValueError):
            ConnectivityPattern(template=[(1, 0), (2, 0)])

    def test_custom_template_is_respected(self):
        pattern = ConnectivityPattern(template=[(0, 0), (1, 0), (1, 1)])
        assert pattern.options_per_lane == 3
        assert pattern.options_for_lane(5) == ((0, 5), (1, 5), (1, 6))
