"""Dedicated coverage for ``repro.memory.dram`` transfer latency/energy math.

The DRAM model is what grounds both the energy accounting (pJ/byte) and —
through :mod:`repro.memory.hierarchy` — the bandwidth-constrained cycle
model, so its arithmetic is pinned down here.
"""

import pytest

from repro.memory.dram import DEFAULT_PJ_PER_BYTE, DRAMModel


class TestBandwidth:
    def test_table2_peak_bandwidth(self):
        # 4-channel LPDDR4-3200, 32-bit bus: 4 * 3200e6 * 4 B = 51.2 GB/s.
        assert DRAMModel().peak_bandwidth_gbps == pytest.approx(51.2)

    def test_bandwidth_scales_with_channels_and_rate(self):
        one = DRAMModel(channels=1).peak_bandwidth_gbps
        four = DRAMModel(channels=4).peak_bandwidth_gbps
        assert four == pytest.approx(4 * one)
        slow = DRAMModel(mts=1600).peak_bandwidth_gbps
        assert DRAMModel(mts=3200).peak_bandwidth_gbps == pytest.approx(2 * slow)

    def test_bandwidth_scales_with_bus_width(self):
        narrow = DRAMModel(bus_bits=16).peak_bandwidth_gbps
        assert DRAMModel(bus_bits=32).peak_bandwidth_gbps == pytest.approx(2 * narrow)

    def test_rejects_nonpositive_channels(self):
        with pytest.raises(ValueError):
            DRAMModel(channels=0)


class TestTransferLatency:
    def test_latency_is_bytes_over_peak_bandwidth(self):
        dram = DRAMModel()
        transfer = dram.transfer(51_200)
        # 51200 B at 51.2 GB/s = 1 microsecond = 1000 ns.
        assert transfer.latency_ns == pytest.approx(1000.0)

    def test_zero_byte_transfer_has_zero_latency_and_energy(self):
        transfer = DRAMModel().transfer(0)
        assert transfer.latency_ns == 0.0
        assert transfer.energy_pj == 0.0

    def test_latency_linear_in_bytes(self):
        dram = DRAMModel()
        assert dram.transfer(3000).latency_ns == pytest.approx(
            3 * dram.transfer(1000).latency_ns
        )

    def test_fewer_channels_mean_proportionally_longer_latency(self):
        wide = DRAMModel(channels=4).transfer(4096).latency_ns
        narrow = DRAMModel(channels=1).transfer(4096).latency_ns
        assert narrow == pytest.approx(4 * wide)


class TestTransferEnergy:
    def test_energy_is_pj_per_byte(self):
        dram = DRAMModel()
        transfer = dram.transfer(1000)
        assert transfer.energy_pj == pytest.approx(1000 * DEFAULT_PJ_PER_BYTE)

    def test_custom_pj_per_byte(self):
        dram = DRAMModel(pj_per_byte=10.0)
        dram.transfer(100)
        dram.transfer(50, write=True)
        assert dram.energy_pj == pytest.approx(1500.0)

    def test_reads_and_writes_charged_identically(self):
        dram = DRAMModel()
        read = dram.transfer(2048).energy_pj
        write = dram.transfer(2048, write=True).energy_pj
        assert read == pytest.approx(write)


class TestAccounting:
    def test_directional_byte_counters(self):
        dram = DRAMModel()
        dram.transfer(300)
        dram.transfer(200)
        dram.transfer(100, write=True)
        assert dram.bytes_read == 500
        assert dram.bytes_written == 100
        assert dram.total_bytes == 600

    def test_capacity_from_gb(self):
        assert DRAMModel(capacity_gb=16).capacity_bytes == 16 * (1 << 30)

    def test_reset_clears_all_counters(self):
        dram = DRAMModel()
        dram.transfer(100)
        dram.transfer(100, write=True)
        dram.reset()
        assert dram.bytes_read == 0
        assert dram.bytes_written == 0
        assert dram.energy_pj == 0.0

    def test_transfer_record_carries_direction(self):
        dram = DRAMModel()
        assert dram.transfer(10).write is False
        assert dram.transfer(10, write=True).write is True

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel().transfer(-5)
