"""Property-based tests for memory-side invariants.

* The 16x16 grouped layout is lossless for arbitrary tensor shapes.
* Zero run-length coding round-trips arbitrary sparse streams.
* Pre-scheduling (scheduled-form storage) round-trips arbitrary operand
  streams and never stores more rows than the dense form.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.backside import PreScheduler
from repro.memory.compression import run_length_decode, run_length_encode
from repro.memory.layout import GroupedTensorLayout


@st.composite
def small_tensors(draw):
    channels = draw(st.integers(min_value=1, max_value=40))
    height = draw(st.integers(min_value=1, max_value=20))
    width = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    sparsity = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = np.random.default_rng(seed)
    tensor = rng.normal(size=(channels, height, width)).astype(np.float32)
    tensor[rng.random(tensor.shape) < sparsity] = 0.0
    return tensor


@st.composite
def sparse_vectors(draw, max_length=300):
    length = draw(st.integers(min_value=0, max_value=max_length))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    sparsity = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = np.random.default_rng(seed)
    values = rng.normal(size=length)
    values[rng.random(length) < sparsity] = 0.0
    return values


@st.composite
def operand_streams(draw, lanes=16, max_rows=30):
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    sparsity = draw(st.floats(min_value=0.0, max_value=1.0))
    rng = np.random.default_rng(seed)
    stream = rng.uniform(0.5, 2.0, size=(rows, lanes))
    stream[rng.random(stream.shape) < sparsity] = 0.0
    return stream


class TestLayoutProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_tensors())
    def test_grouped_layout_roundtrip(self, tensor):
        layout = GroupedTensorLayout()
        packed = layout.group_all(tensor)
        assert np.allclose(layout.ungroup(packed, tensor.shape), tensor)

    @settings(max_examples=60, deadline=None)
    @given(small_tensors())
    def test_group_count_matches_enumeration(self, tensor):
        layout = GroupedTensorLayout()
        assert layout.group_count(tensor.shape) == len(
            layout.groups_for_shape(tensor.shape)
        )


class TestCompressionProperties:
    @settings(max_examples=100, deadline=None)
    @given(sparse_vectors())
    def test_run_length_roundtrip(self, values):
        encoded = run_length_encode(values)
        assert np.allclose(run_length_decode(encoded, len(values)), values)

    @settings(max_examples=100, deadline=None)
    @given(sparse_vectors())
    def test_encoded_records_never_exceed_values_plus_one(self, values):
        encoded = run_length_encode(values)
        nonzero = int(np.count_nonzero(values))
        # One record per non-zero plus at most the zero-run terminators.
        assert len(encoded) <= nonzero + max(1, len(values) // 255 + 1)


class TestPreSchedulingProperties:
    @settings(max_examples=60, deadline=None)
    @given(operand_streams())
    def test_scheduled_form_roundtrip(self, stream):
        scheduler = PreScheduler()
        assert np.allclose(scheduler.roundtrip(stream), stream)

    @settings(max_examples=60, deadline=None)
    @given(operand_streams())
    def test_scheduled_rows_bounded(self, stream):
        scheduler = PreScheduler()
        scheduled = scheduler.compress(stream)
        rows = stream.shape[0]
        assert -(-rows // 3) <= scheduled.scheduled_row_count <= rows
