"""Metrics instruments, registry semantics, and the exposition formats.

Counters only go up, gauges move freely, histograms bucket cumulatively
with Prometheus ``le``/``_sum``/``_count`` semantics; registration is
idempotent per (name, type, labels); rendering is deterministic and the
instruments stay correct under concurrent writers (the threading HTTP
server and the parallel backend both update them from many threads).
"""

import threading

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.metrics import (
    CACHE_HITS,
    CACHE_MISSES,
    LAYERS_SIMULATED,
    get_registry,
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("test_total", "testing", labels=("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.value(kind="unseen") == 0.0

    def test_negative_increment_rejected(self):
        counter = Counter("test_total", "testing")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_set_must_match_exactly(self):
        counter = Counter("test_total", "testing", labels=("kind",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(kind="a", extra="b")

    def test_render_sorts_series_and_escapes(self):
        counter = Counter("test_total", "testing", labels=("kind",))
        counter.inc(4, kind="b")
        counter.inc(1, kind='a"quote\\slash')
        assert counter.render() == [
            'test_total{kind="a\\"quote\\\\slash"} 1',
            'test_total{kind="b"} 4',
        ]


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("test_gauge", "testing")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3.0
        gauge.set(0.5)
        assert gauge.value() == 0.5
        assert gauge.render() == ["test_gauge 0.5"]


class TestHistogram:
    def test_cumulative_buckets_sum_and_count(self):
        histogram = Histogram("test_seconds", "testing", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        lines = histogram.render()
        assert lines == [
            'test_seconds_bucket{le="0.1"} 1',
            'test_seconds_bucket{le="1"} 3',
            'test_seconds_bucket{le="10"} 4',
            'test_seconds_bucket{le="+Inf"} 5',
            "test_seconds_sum 56.05",
            "test_seconds_count 5",
        ]
        assert histogram.value() == 5

    def test_snapshot_structure(self):
        histogram = Histogram("test_seconds", "testing", buckets=(1.0,),
                              labels=("kind",))
        histogram.observe(0.5, kind="simulate")
        snap = histogram.snapshot()
        assert snap["type"] == "histogram"
        assert snap["buckets"] == [1.0]
        (series,) = snap["values"]
        assert series["labels"] == {"kind": "simulate"}
        assert series["counts"] == [1, 0]
        assert series["sum"] == 0.5
        assert series["count"] == 1

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("test", "testing", buckets=())


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x", labels=("kind",))
        again = registry.counter("x_total", "x", labels=("kind",))
        assert again is first

    def test_conflicting_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x", labels=("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total", "x", labels=("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", "x", labels=("other",))

    def test_prometheus_rendering_has_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "second").inc(2)
        registry.gauge("a_gauge", "first").set(1)
        text = registry.render_prometheus()
        assert text.splitlines() == [
            "# HELP a_gauge first",
            "# TYPE a_gauge gauge",
            "a_gauge 1",
            "# HELP b_total second",
            "# TYPE b_total counter",
            "b_total 2",
        ]
        assert text.endswith("\n")

    def test_as_dict_mirrors_rendering(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "second", labels=("kind",)).inc(3, kind="x")
        payload = registry.as_dict()
        assert payload == {
            "b_total": {
                "type": "counter",
                "help": "second",
                "values": [{"labels": {"kind": "x"}, "value": 3.0}],
            }
        }

    def test_default_registry_preseeds_cache_tiers(self):
        payload = get_registry().as_dict()
        tiers = {
            series["labels"]["tier"]
            for series in payload["repro_cache_hits_total"]["values"]
        }
        assert {"memo", "shared", "disk"} <= tiers
        assert "repro_cache_misses_total" in payload


class TestConcurrency:
    def test_concurrent_counter_updates_do_not_lose_increments(self):
        counter = Counter("test_total", "testing", labels=("kind",))
        histogram = Histogram("test_seconds", "testing", buckets=(0.5,))
        workers, per_worker = 8, 500

        def hammer(index):
            kind = f"k{index % 2}"
            for _ in range(per_worker):
                counter.inc(kind=kind)
                histogram.observe(index * 0.001)

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(kind="k0") == workers / 2 * per_worker
        assert counter.value(kind="k1") == workers / 2 * per_worker
        assert histogram.value() == workers * per_worker


class TestEngineFeed:
    def test_engine_feeds_layer_and_cache_counters(self, tmp_path):
        import numpy as np

        from repro.engine import SimulationEngine
        from tests.test_engine_backends import make_conv_trace

        rng = np.random.default_rng(7)
        layers = [make_conv_trace(rng, name=f"conv{i}") for i in range(2)]
        engine = SimulationEngine(
            backend="vectorized", cache_dir=tmp_path / "cache",
            max_groups=8, max_batch=2,
        )
        simulated_before = LAYERS_SIMULATED.value(backend="vectorized")
        misses_before = CACHE_MISSES.value()
        disk_before = CACHE_HITS.value(tier="disk")

        engine.simulate_layers(layers)
        assert LAYERS_SIMULATED.value(backend="vectorized") == simulated_before + 2
        assert CACHE_MISSES.value() == misses_before + 2

        # Second pass: memo is off, the disk tier serves both layers.
        engine.simulate_layers(layers)
        assert CACHE_HITS.value(tier="disk") == disk_before + 2
        assert LAYERS_SIMULATED.value(backend="vectorized") == simulated_before + 2
