"""End-to-end tests for the asynchronous job API of ``repro serve``.

Real :class:`ThreadingHTTPServer` on an ephemeral port, real
:class:`~repro.api.session.Session` underneath: jobs are submitted,
watched over Server-Sent Events, cancelled mid-study and resumed from
the on-disk segment manifest — the full backend story the subsystem
exists for.  Also home of the strict-HTTP-semantics regressions
(404/405/413) and the graceful-shutdown tests, including a subprocess
killed with SIGTERM.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api.schema import JobRecord, JobResult
from repro.api.service import create_server
from repro.api.session import Session
from repro.telemetry.schema import validate_file

SIMULATE = {
    "kind": "simulate", "model": "snli", "epochs": 1,
    "batches_per_epoch": 1, "batch_size": 4, "max_groups": 8,
}

SPEC = {
    "name": "jobs-e2e", "workloads": ["snli"],
    "knobs": {"staging": [1, 2]}, "epochs": 1,
    "batches_per_epoch": 1, "batch_size": 4, "max_groups": 8,
}


def _start(**kwargs):
    kwargs.setdefault("session", Session())
    kwargs.setdefault("job_workers", 1)
    server = create_server(port=0, quiet=True, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, f"http://{host}:{port}"


def _request(url, method="GET", payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def _read_sse(url, on_event=None, timeout=300):
    """Parse one SSE stream to completion; returns the event list.

    ``on_event(event)`` fires per parsed event (e.g. to cancel the job
    mid-stream); events carry their ``event:`` type under ``"_event"``.
    """
    events = []
    request = urllib.request.Request(url)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.headers["Content-Type"] == "text/event-stream"
        event_type, data = None, None
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue
            if line.startswith("event: "):
                event_type = line[len("event: "):]
            elif line.startswith("data: "):
                data = line[len("data: "):]
            elif not line and event_type is not None:
                event = json.loads(data)
                event["_event"] = event_type
                events.append(event)
                if on_event is not None:
                    on_event(event)
                event_type, data = None, None
    return events


def _wait_terminal(base, job_id, timeout=120):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, record, _ = _request(f"{base}/v1/jobs/{job_id}")
        assert status == 200
        if record["state"] in ("succeeded", "failed", "cancelled"):
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestJobLifecycle:
    @pytest.fixture(scope="class")
    def service(self):
        server, thread, base = _start(session=Session(), job_workers=2)
        yield base
        server.shutdown_gracefully(drain_seconds=5.0)
        thread.join(timeout=5.0)

    def test_submit_returns_202_with_a_valid_record(self, service):
        status, record, _ = _request(
            service + "/v1/jobs", "POST", SIMULATE)
        assert status == 202
        parsed = JobRecord.from_dict(record)
        assert parsed.state in ("queued", "running")
        assert parsed.request_kind == "simulate"
        assert parsed.request["model"] == "snli"
        _wait_terminal(service, parsed.job_id)

    def test_async_result_matches_the_blocking_route(self, service):
        body = dict(SIMULATE)
        del body["kind"]
        status, blocking, _ = _request(
            service + "/v1/simulate", "POST", body)
        assert status == 200
        status, record, _ = _request(service + "/v1/jobs", "POST", SIMULATE)
        assert status == 202
        final = _wait_terminal(service, record["job_id"])
        assert final["state"] == "succeeded"
        status, result, _ = _request(
            f"{service}/v1/jobs/{record['job_id']}/result")
        assert status == 200
        parsed = JobResult.from_dict(result)
        # The simulation payload is deterministic, so the asynchronous
        # path must produce exactly what the blocking route returned
        # (the engine delta differs: the second run is pure cache hits).
        assert parsed.result["kind"] == "simulate"
        assert parsed.result["result"] == blocking["result"]

    def test_sse_stream_carries_states_and_progress(self, service):
        status, record, _ = _request(service + "/v1/jobs", "POST", SIMULATE)
        events = _read_sse(f"{service}/v1/jobs/{record['job_id']}/events")
        kinds = [event["_event"] for event in events]
        assert kinds[0] == "state" and events[0]["state"] == "queued"
        assert kinds[-1] == "state" and events[-1]["state"] == "succeeded"
        assert "progress" in kinds
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs) == list(range(1, len(seqs) + 1))

    def test_sse_since_resumes_after_a_sequence_number(self, service):
        status, record, _ = _request(service + "/v1/jobs", "POST", SIMULATE)
        job_id = record["job_id"]
        everything = _read_sse(f"{service}/v1/jobs/{job_id}/events")
        cut = everything[1]["seq"]
        tail = _read_sse(f"{service}/v1/jobs/{job_id}/events?since={cut}")
        assert [e["seq"] for e in tail] == [
            e["seq"] for e in everything if e["seq"] > cut
        ]

    def test_explore_job_streams_per_point_progress(self, service):
        status, record, _ = _request(
            service + "/v1/jobs", "POST", {"kind": "explore", "spec": SPEC})
        assert status == 202
        events = _read_sse(f"{service}/v1/jobs/{record['job_id']}/events")
        points = [e for e in events if e["_event"] == "point"]
        assert len(points) == 2
        assert [(p["done"], p["total"]) for p in points] == [(1, 2), (2, 2)]
        assert all(p["workload"] == "snli" for p in points)
        assert all(p["speedup"] > 0 for p in points)
        assert events[-1]["state"] == "succeeded"

    def test_jobs_list_filters_by_state(self, service):
        status, record, _ = _request(service + "/v1/jobs", "POST", SIMULATE)
        _wait_terminal(service, record["job_id"])
        status, listing, _ = _request(service + "/v1/jobs?state=succeeded")
        assert status == 200
        assert record["job_id"] in {job["job_id"] for job in listing["jobs"]}
        assert all(job["state"] == "succeeded" for job in listing["jobs"])
        assert listing["workers"] == 2

    def test_result_of_unfinished_job_is_409(self, service):
        status, record, _ = _request(service + "/v1/jobs", "POST", SIMULATE)
        status, payload, _ = _request(
            f"{service}/v1/jobs/{record['job_id']}/result")
        if status == 409:   # still queued/running when we asked
            assert payload["state"] in ("queued", "running")
        else:               # or it already finished: both are correct
            assert status == 200
        _wait_terminal(service, record["job_id"])

    def test_health_reports_the_job_store(self, service):
        status, health, _ = _request(service + "/v1/health")
        assert status == 200
        assert health["jobs"]["workers"] == 2
        assert health["jobs"]["accepting"] is True
        assert "/v1/jobs" in health["endpoints"]


class TestCancelAndResume:
    def test_cancel_mid_study_then_resume_from_the_manifest(self, tmp_path):
        """The subsystem's acceptance story: cancel an explore job at a
        point boundary, then resume it (twice) from the segment manifest
        — the second resume re-simulates zero layers."""
        spec = dict(SPEC, name="resume-e2e",
                    knobs={"staging": [1, 2, 3], "rows": [2, 4]})
        body = {"kind": "explore", "spec": spec, "study_dir": "study",
                "resume": False}

        server, thread, base = _start(
            session=Session(), study_root=tmp_path)
        try:
            status, record, _ = _request(base + "/v1/jobs", "POST", body)
            assert status == 202
            job_id = record["job_id"]
            cancelled_after = []

            def cancel_at_first_point(event):
                if event["_event"] == "point" and not cancelled_after:
                    cancelled_after.append(event["done"])
                    _request(f"{base}/v1/jobs/{job_id}/cancel", "POST")

            events = _read_sse(f"{base}/v1/jobs/{job_id}/events",
                               on_event=cancel_at_first_point)
            final = _wait_terminal(base, job_id)
            assert final["state"] == "cancelled"
            assert final["cancel_requested"] is True
            completed = [e for e in events if e["_event"] == "point"]
            assert 1 <= len(completed) < 6
            status, result, _ = _request(f"{base}/v1/jobs/{job_id}/result")
            assert status == 200
            assert result["state"] == "cancelled"
            assert result["result"] is None
        finally:
            server.shutdown_gracefully(drain_seconds=5.0)
            thread.join(timeout=5.0)

        # The cancellation raise lands at the event boundary *after* a
        # point is checkpointed, so the manifest may hold one more point
        # than the stream announced.
        low, high = len(completed), len(completed) + 1
        # A fresh process would see exactly this: a brand-new session
        # resuming the same study directory.
        server, thread, base = _start(
            session=Session(), study_root=tmp_path)
        try:
            status, record, _ = _request(
                base + "/v1/jobs", "POST", dict(body, resume=True))
            assert status == 202
            final = _wait_terminal(base, record["job_id"])
            assert final["state"] == "succeeded"
            status, result, _ = _request(
                f"{base}/v1/jobs/{record['job_id']}/result")
            study = result["result"]["result"]["study"]
            assert low <= study["resumed_points"] <= high
            assert len(study["points"]) == 6

            # Resume once more on the now-complete manifest: every point
            # restores, the engine simulates zero layers.
            status, record, _ = _request(
                base + "/v1/jobs", "POST", dict(body, resume=True))
            final = _wait_terminal(base, record["job_id"])
            assert final["state"] == "succeeded"
            status, result, _ = _request(
                f"{base}/v1/jobs/{record['job_id']}/result")
            study = result["result"]["result"]["study"]
            assert study["resumed_points"] == 6
            assert study["engine"]["layers_simulated"] == 0
        finally:
            server.shutdown_gracefully(drain_seconds=5.0)
            thread.join(timeout=5.0)


class TestHttpSemantics:
    @pytest.fixture(scope="class")
    def service(self):
        server, thread, base = _start(session=Session(), max_body_mb=0.001)
        yield base
        server.shutdown_gracefully(drain_seconds=5.0)
        thread.join(timeout=5.0)

    def test_unknown_path_is_404_with_the_route_list(self, service):
        status, payload, _ = _request(service + "/v1/teleport")
        assert status == 404
        assert "/v1/jobs" in payload["endpoints"]
        assert "/v1/simulate" in payload["endpoints"]

    def test_wrong_method_is_405_with_allow_header(self, service):
        status, payload, headers = _request(service + "/v1/simulate")
        assert status == 405
        assert headers["Allow"] == "POST"
        status, payload, headers = _request(
            service + "/v1/health", "POST", {})
        assert status == 405
        assert headers["Allow"] == "GET"
        status, payload, headers = _request(
            service + "/v1/jobs/zzz/cancel")
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_oversized_body_is_413(self, service):
        huge = dict(SIMULATE, model="x" * 4096)
        status, payload, _ = _request(service + "/v1/jobs", "POST", huge)
        assert status == 413
        assert "max-body-mb" in payload["error"]

    def test_job_submission_requires_an_explicit_kind(self, service):
        status, payload, _ = _request(
            service + "/v1/jobs", "POST", {"model": "snli"})
        assert status == 400
        assert payload["field"] == "request.kind"

    def test_unknown_job_routes_are_404(self, service):
        for path in ("/v1/jobs/nope", "/v1/jobs/nope/result",
                     "/v1/jobs/nope/events"):
            status, payload, _ = _request(service + path)
            assert status == 404, path
        status, payload, _ = _request(
            service + "/v1/jobs/nope/cancel", "POST")
        assert status == 404

    def test_bad_query_parameters_are_400(self, service):
        status, payload, _ = _request(service + "/v1/jobs?state=zombie")
        assert status == 400
        status, record, _ = _request(
            service + "/v1/jobs", "POST",
            {"kind": "simulate", "model": "snli", "epochs": 1,
             "batches_per_epoch": 1, "batch_size": 4, "max_groups": 8})
        assert status == 202
        status, payload, _ = _request(
            f"{service}/v1/jobs/{record['job_id']}/events?since=later")
        assert status == 400
        assert payload["field"] == "since"

    def test_invalid_max_body_mb_is_rejected(self):
        with pytest.raises(ValueError, match="max_body_mb"):
            create_server(port=0, session=Session(), max_body_mb=0.0)

    def test_bind_failure_surfaces_the_oserror(self, service):
        # socketserver calls server_close before __init__ finishes when
        # the bind fails; the teardown must not mask the OSError.
        port = int(service.rsplit(":", 1)[1])
        with pytest.raises(OSError):
            create_server(port=port, session=Session())


class TestHttpStress:
    def test_concurrent_clients_sum_exactly(self):
        """Satellite: N threads submit/poll/cancel over HTTP; nothing is
        lost, nothing runs twice, and the server-side counters add up."""
        server, thread, base = _start(session=Session(), job_workers=3)
        clients, per_client = 6, 3
        results, errors = [], []
        lock = threading.Lock()
        _, stats_before, _ = _request(base + "/v1/stats")

        def client(index):
            try:
                for i in range(per_client):
                    status, record, _ = _request(
                        base + "/v1/jobs", "POST", SIMULATE)
                    assert status == 202
                    if (index + i) % 4 == 3:
                        _request(f"{base}/v1/jobs/{record['job_id']}/cancel",
                                 "POST")
                    final = _wait_terminal(base, record["job_id"])
                    with lock:
                        results.append(final)
            except Exception as exc:   # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)

        try:
            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(clients)]
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=300.0)
            assert errors == []
            total = clients * per_client
            assert len(results) == total
            assert len({record["job_id"] for record in results}) == total
            states = [record["state"] for record in results]
            assert all(s in ("succeeded", "cancelled") for s in states)
            succeeded = states.count("succeeded")
            # Exactly one session execution per non-cancelled job.
            _, stats_after, _ = _request(base + "/v1/stats")
            assert stats_after["requests_served"] \
                - stats_before["requests_served"] == succeeded
            # The metrics registry tells the same story.
            _, metrics, _ = _request(base + "/v1/metrics?format=json")
            by_state = {v["labels"]["state"]: v["value"]
                        for v in metrics["repro_jobs_total"]["values"]}
        finally:
            server.shutdown_gracefully(drain_seconds=10.0)
            thread.join(timeout=5.0)
        assert by_state["succeeded"] >= succeeded
        assert by_state["cancelled"] >= states.count("cancelled")


class TestGracefulShutdown:
    class _GateSession:
        """A session whose one job blocks until the test opens the gate,
        pinning the single worker so the job behind it stays queued."""

        def __init__(self):
            self.gate = threading.Event()
            self.started_at = time.time()

        def stats(self):
            return {}

        def submit(self, request, progress=None, on_event=None):
            assert self.gate.wait(timeout=60.0)

            class _Result:
                @staticmethod
                def to_dict():
                    return {"kind": "simulate"}

            return _Result()

    def test_shutdown_cancels_queued_drains_running_and_closes_logs(
        self, tmp_path
    ):
        audit = tmp_path / "audit.jsonl"
        access = tmp_path / "access.jsonl"
        session = self._GateSession()
        server, thread, base = _start(
            session=session, job_workers=1,
            audit_log=audit, access_log=access)
        status, first, _ = _request(base + "/v1/jobs", "POST", SIMULATE)
        status, second, _ = _request(base + "/v1/jobs", "POST", SIMULATE)
        # Open the gate only once the store has stopped intake — by then
        # the queued job is already cancelled (same critical section),
        # so the running job drains and the queued one never runs.
        def open_after_intake_stops():
            while server.jobs.describe()["accepting"]:
                time.sleep(0.02)
            session.gate.set()

        threading.Thread(target=open_after_intake_stops, daemon=True).start()
        server.shutdown_gracefully(drain_seconds=60.0)
        thread.join(timeout=10.0)
        # Both jobs reached a terminal state before the server exited:
        # the running one drained, the queued one was cancelled.
        states = {
            record.job_id: record.state for record in server.jobs.list()
        }
        assert set(states) == {first["job_id"], second["job_id"]}
        assert states[first["job_id"]] == "succeeded"
        assert states[second["job_id"]] == "cancelled"
        # Both logs were flushed and validate: 3 records for the drained
        # job (submitted/running/succeeded), 2 for the cancelled one.
        counts = validate_file(audit)
        assert counts["job"] == 5
        access_lines = [json.loads(line)
                        for line in access.read_text().splitlines()]
        assert {line["path"] for line in access_lines} == {"/v1/jobs"}
        # The socket is closed: new submissions cannot connect.
        with pytest.raises(urllib.error.URLError):
            _request(base + "/v1/jobs", "POST", SIMULATE)

    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        """Full-process integration: ``repro serve`` under SIGTERM."""
        audit = tmp_path / "audit.jsonl"
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        env.pop("REPRO_TELEMETRY_DIR", None)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--job-workers", "1", "--drain-seconds", "30",
             "--audit-log", str(audit)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner
            base = banner.split("serving on ")[1].split()[0].rstrip(",")
            status, record, _ = _request(base + "/v1/jobs", "POST", SIMULATE)
            assert status == 202
            _wait_terminal(base, record["job_id"])
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
        assert process.returncode == 0
        assert "SIGTERM" in output
        assert "draining jobs" in output
        counts = validate_file(audit)
        assert counts["job"] >= 3
