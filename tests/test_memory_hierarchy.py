"""Tests for the memory-hierarchy performance model and its threading.

Covers the bandwidth/capacity math of ``repro.memory.hierarchy``, the
unbounded-default bit-exactness guarantee, the per-operation stall/bound
verdicts the cycle simulator records, the staging-refill clamp, and the
interaction with sampling/compression.
"""

import numpy as np
import pytest

from repro.core.accelerator import Accelerator, OperationResult
from repro.core.config import AcceleratorConfig
from repro.memory.hierarchy import MemoryHierarchy, bytes_per_cycle
from repro.memory.traffic import MemoryTraffic
from repro.simulation.cycle_sim import LayerSimulator
from repro.training.tracing import LayerTrace


def make_fc_trace(rng, name="fc0", batch=8, features=256, sparsity=0.6):
    activation = rng.random((batch, features)) >= sparsity
    gradient = rng.random((batch, features)) >= sparsity
    weights = rng.random((64, features)) >= 0.1
    return LayerTrace(
        layer_name=name,
        layer_type="fc",
        kernel=1,
        stride=1,
        padding=0,
        weight_mask=weights,
        activation_mask=activation,
        output_gradient_mask=gradient,
        macs=batch * features * 64,
    )


class TestMemoryHierarchyModel:
    def test_default_is_unbounded(self):
        assert MemoryHierarchy().is_unbounded
        assert MemoryHierarchy.unbounded().is_unbounded
        assert not MemoryHierarchy(dram_bandwidth_gbps=10.0).is_unbounded
        assert not MemoryHierarchy(sram_kb=256).is_unbounded

    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(dram_bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            MemoryHierarchy(sram_bandwidth_gbps=-1.0)
        with pytest.raises(ValueError):
            MemoryHierarchy(sram_kb=0)

    def test_bytes_per_cycle(self):
        # 51.2 GB/s at 500 MHz = 102.4 bytes per cycle.
        assert bytes_per_cycle(51.2, 500) == pytest.approx(102.4)
        with pytest.raises(ValueError):
            bytes_per_cycle(0.0, 500)
        with pytest.raises(ValueError):
            bytes_per_cycle(1.0, 0)

    def test_table2_matches_memory_config(self):
        config = AcceleratorConfig()
        hierarchy = MemoryHierarchy.table2(config)
        assert hierarchy.dram_bandwidth_gbps == pytest.approx(
            config.memory.peak_dram_bandwidth_gbps
        )
        assert hierarchy.sram_kb == config.memory.on_chip_kb_per_tile * config.num_tiles
        assert not hierarchy.is_unbounded

    def test_edge_is_bandwidth_starved(self):
        edge = MemoryHierarchy.edge()
        table2 = MemoryHierarchy.table2()
        assert edge.dram_bandwidth_gbps < table2.dram_bandwidth_gbps
        assert edge.sram_kb < table2.sram_kb

    def test_unbounded_constrain_is_identity(self):
        traffic = MemoryTraffic(dram_bytes=10**9, sram_bytes=10**9)
        verdict = MemoryHierarchy().constrain(1234, traffic, 500)
        assert verdict.total_cycles == 1234
        assert verdict.stall_cycles == 0
        assert verdict.bound == "compute"
        assert not verdict.memory_bound
        assert verdict.dram_bytes == traffic.dram_bytes

    def test_constrain_applies_ceil_of_bytes_over_bandwidth(self):
        # 1.0 GB/s at 500 MHz = 2 bytes/cycle; 1001 bytes -> 501 cycles.
        hierarchy = MemoryHierarchy(dram_bandwidth_gbps=1.0)
        verdict = hierarchy.constrain(100, MemoryTraffic(dram_bytes=1001), 500)
        assert verdict.dram_cycles == 501
        assert verdict.total_cycles == 501
        assert verdict.stall_cycles == 401
        assert verdict.bound == "dram"
        assert verdict.memory_bound
        assert verdict.stall_fraction == pytest.approx(401 / 501)

    def test_compute_bound_when_bandwidth_suffices(self):
        hierarchy = MemoryHierarchy(dram_bandwidth_gbps=1.0)
        verdict = hierarchy.constrain(1000, MemoryTraffic(dram_bytes=10), 500)
        assert verdict.total_cycles == 1000
        assert verdict.stall_cycles == 0
        assert verdict.bound == "compute"

    def test_sram_level_can_bind(self):
        hierarchy = MemoryHierarchy(sram_bandwidth_gbps=1.0)
        traffic = MemoryTraffic(dram_bytes=0, sram_bytes=2000)
        verdict = hierarchy.constrain(10, traffic, 500)
        assert verdict.sram_cycles == 1000
        assert verdict.bound == "sram"

    def test_capacity_overflow_spills_to_dram(self):
        hierarchy = MemoryHierarchy(sram_kb=1)
        traffic = MemoryTraffic(dram_bytes=100, sram_bytes=1024 + 500)
        assert hierarchy.spill_bytes(traffic) == 500
        assert hierarchy.effective_dram_bytes(traffic) == 600
        # Without a bandwidth limit the spill costs no cycles, only bytes.
        verdict = hierarchy.constrain(10, traffic, 500)
        assert verdict.dram_bytes == 600
        assert verdict.stall_cycles == 0

    def test_spill_raises_dram_cycles_under_bandwidth_limit(self):
        traffic = MemoryTraffic(dram_bytes=1000, sram_bytes=4096)
        loose = MemoryHierarchy(dram_bandwidth_gbps=1.0)
        tight = MemoryHierarchy(dram_bandwidth_gbps=1.0, sram_kb=1)
        assert (
            tight.constrain(1, traffic, 500).dram_cycles
            > loose.constrain(1, traffic, 500).dram_cycles
        )


class TestConfigWiring:
    def test_default_config_hierarchy_is_unbounded(self):
        assert AcceleratorConfig().hierarchy.is_unbounded

    def test_with_hierarchy_composes(self):
        config = AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=25.6)
        config = config.with_hierarchy(sram_kb=512)
        assert config.hierarchy.dram_bandwidth_gbps == 25.6
        assert config.hierarchy.sram_kb == 512

    def test_describe_mentions_finite_hierarchy_only(self):
        assert "memory:" not in AcceleratorConfig().describe()
        described = AcceleratorConfig().with_hierarchy(
            dram_bandwidth_gbps=12.8
        ).describe()
        assert "12.8 GB/s" in described

    def test_hierarchy_changes_config_repr(self):
        # The engine cache fingerprints configs via repr, so differing
        # hierarchy parameters must never produce colliding keys.
        base = repr(AcceleratorConfig())
        bounded = repr(AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=4.0))
        other = repr(AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=8.0))
        assert len({base, bounded, other}) == 3


class TestRefillClamp:
    def test_unbounded_accelerator_has_no_refill_limit(self):
        assert Accelerator(AcceleratorConfig()).refill_limit is None

    def test_finite_hierarchy_clamps_to_scratchpad_banks(self):
        config = AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=51.2)
        assert Accelerator(config).refill_limit == config.memory.scratchpad_banks

    def test_capacity_only_hierarchy_never_changes_compute_cycles(self):
        # sram_kb alone affects DRAM byte counts, never cycle counts: a
        # huge capacity limit must stay bit-identical to unbounded even
        # for geometries where the refill clamp could bind.
        rng = np.random.default_rng(5)
        groups = rng.random((8, 1, 40, 16)) >= 0.97
        deep = AcceleratorConfig().with_pe(staging_depth=4)
        capacity_only = deep.with_hierarchy(sram_kb=10**6)
        assert Accelerator(capacity_only).refill_limit is None
        assert (
            Accelerator(capacity_only).run_operation_batched("AxW", groups).tensordash_cycles
            == Accelerator(deep).run_operation_batched("AxW", groups).tensordash_cycles
        )

    def test_clamp_only_binds_beyond_bank_depth(self):
        # staging depth 4 > 3 scratchpad banks: a fully drained window
        # wants to advance 4 rows but can only refill 3 per cycle.
        rng = np.random.default_rng(0)
        groups = (rng.random((4, 2, 40, 16)) >= 0.95)
        deep = AcceleratorConfig().with_pe(staging_depth=4)
        unbounded = Accelerator(deep)
        bounded = Accelerator(deep.with_hierarchy(dram_bandwidth_gbps=51.2))
        free = unbounded.run_operation_batched("AxW", groups)
        clamped = bounded.run_operation_batched("AxW", groups)
        assert clamped.tensordash_cycles > free.tensordash_cycles
        # At the default depth (3 = banks) the clamp can never bind.
        base = AcceleratorConfig()
        assert (
            Accelerator(base).run_operation_batched("AxW", groups[:, :, :, :])
            == Accelerator(
                base.with_hierarchy(dram_bandwidth_gbps=51.2)
            ).run_operation_batched("AxW", groups[:, :, :, :])
        )


class TestSimulatorThreading:
    def test_unbounded_layer_results_carry_zero_stalls(self):
        rng = np.random.default_rng(1)
        trace = make_fc_trace(rng)
        result = LayerSimulator(AcceleratorConfig(), max_groups=8).simulate_layer(trace)
        assert result.stall_cycles == 0
        assert result.memory_bound_operations() == []
        assert result.stall_fraction() == 0.0
        # Effective DRAM bytes are recorded even without a limit, and
        # match the traffic estimate byte for byte.
        assert result.effective_dram_bytes() == result.total_traffic().dram_bytes

    def test_finite_bandwidth_adds_stalls_and_lowers_speedup(self):
        rng = np.random.default_rng(2)
        trace = make_fc_trace(rng)
        free = LayerSimulator(AcceleratorConfig(), max_groups=8).simulate_layer(trace)
        tight = LayerSimulator(
            AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=0.5),
            max_groups=8,
        ).simulate_layer(trace)
        assert tight.stall_cycles > 0
        assert tight.memory_bound_operations()
        assert tight.speedup() < free.speedup()
        for op in tight.operations.values():
            assert op.tensordash_cycles >= op.tensordash_compute_cycles
            assert op.baseline_cycles >= op.baseline_compute_cycles

    def test_finite_bandwidth_compute_cycles_match_unbounded(self):
        # The constraint only adds stalls on top of the same compute
        # cycles (default geometry: the refill clamp never binds).
        rng = np.random.default_rng(3)
        trace = make_fc_trace(rng)
        free = LayerSimulator(AcceleratorConfig(), max_groups=8).simulate_layer(trace)
        tight = LayerSimulator(
            AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=0.5),
            max_groups=8,
        ).simulate_layer(trace)
        for name, op in tight.operations.items():
            assert op.tensordash_compute_cycles == free.operations[name].tensordash_cycles
            assert op.baseline_compute_cycles == free.operations[name].baseline_cycles

    def test_recorded_speedup_matches_analytical_formula(self):
        # ``bandwidth_bound_speedup`` and ``MemoryHierarchy.constrain``
        # implement the same shared-memory-floor rule; this invariant ties
        # the analytical helper to the simulator so they cannot drift.
        from repro.simulation.speedup import bandwidth_bound_speedup

        rng = np.random.default_rng(7)
        trace = make_fc_trace(rng)
        result = LayerSimulator(
            AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=1.0, sram_kb=2),
            max_groups=8,
        ).simulate_layer(trace)
        for op in result.operations.values():
            assert op.speedup == pytest.approx(
                bandwidth_bound_speedup(
                    op.baseline_compute_cycles,
                    op.tensordash_compute_cycles,
                    op.memory_cycles,
                )
            )

    def test_compression_reduces_bandwidth_pressure(self):
        # Satellite: CompressingDMA ratios feed the DRAM byte counts the
        # bandwidth model consumes, so disabling compression on a sparse
        # trace must increase both traffic and stall cycles.
        rng = np.random.default_rng(4)
        trace = make_fc_trace(rng, sparsity=0.8)
        from dataclasses import replace

        hierarchy_cfg = AcceleratorConfig().with_hierarchy(dram_bandwidth_gbps=0.5)
        raw_cfg = replace(
            hierarchy_cfg, memory=replace(hierarchy_cfg.memory, compress_offchip=False)
        )
        compressed = LayerSimulator(hierarchy_cfg, max_groups=8).simulate_layer(trace)
        raw = LayerSimulator(raw_cfg, max_groups=8).simulate_layer(trace)
        assert compressed.total_traffic().dram_bytes < raw.total_traffic().dram_bytes
        assert compressed.effective_dram_bytes() < raw.effective_dram_bytes()
        assert compressed.stall_cycles < raw.stall_cycles

    def test_operation_result_properties(self):
        op = OperationResult(
            name="AxW",
            baseline_cycles=200,
            tensordash_cycles=150,
            macs_total=1000,
            macs_effectual=400,
            baseline_stall_cycles=50,
            tensordash_stall_cycles=75,
            memory_cycles=150,
            dram_bytes=4096,
            bound="dram",
        )
        assert op.baseline_compute_cycles == 150
        assert op.tensordash_compute_cycles == 75
        assert op.memory_bound
        assert op.stall_fraction == pytest.approx(0.5)
        assert op.speedup == pytest.approx(200 / 150)
        assert op.compute_speedup == pytest.approx(2.0)
