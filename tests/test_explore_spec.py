"""Tests for study specifications, expansion, sampling and scenarios."""

import json

import numpy as np
import pytest

from repro.explore import StudySpec, apply_scenario, parse_objectives, parse_scenario
from repro.training.tracing import EpochTrace, LayerTrace


def small_spec(**overrides):
    payload = {
        "name": "t",
        "workloads": ["snli"],
        "knobs": {"rows": [1, 4], "staging": [2, 3]},
        "epochs": 1,
        "batches_per_epoch": 1,
        "batch_size": 4,
        "max_groups": 8,
    }
    payload.update(overrides)
    return StudySpec.from_dict(payload)


class TestSpecValidation:
    def test_round_trips_through_dict(self):
        spec = small_spec()
        clone = StudySpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.fingerprint() == spec.fingerprint()

    def test_loads_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(small_spec().to_dict()))
        assert StudySpec.from_json(path).name == "t"

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            StudySpec.from_json(path)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            small_spec(knbos={"rows": [1]})

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            small_spec(workloads=["not-a-model"])

    def test_rejects_unknown_knob(self):
        with pytest.raises(ValueError, match="unknown knob"):
            small_spec(knobs={"voltage": [1]})

    def test_rejects_invalid_knob_value(self):
        with pytest.raises(ValueError, match="invalid value"):
            small_spec(knobs={"datatype": ["fp7"]})
        with pytest.raises(ValueError, match="invalid value"):
            small_spec(knobs={"rows": [0]})

    def test_rejects_invalid_memory_knob_values(self):
        with pytest.raises(ValueError, match="invalid value"):
            small_spec(knobs={"dram_bandwidth_gbps": [0]})
        with pytest.raises(ValueError, match="invalid value"):
            small_spec(knobs={"sram_kb": [-1]})

    def test_rejects_empty_knob_values(self):
        with pytest.raises(ValueError, match="non-empty list"):
            small_spec(knobs={"rows": []})

    def test_rejects_bad_scenario(self):
        with pytest.raises(ValueError, match="scenario"):
            small_spec(scenarios=["gaussian:0.5"])

    def test_rejects_sample_without_random_mode(self):
        with pytest.raises(ValueError, match="sample"):
            small_spec(sample=3)

    def test_random_mode_requires_sample(self):
        with pytest.raises(ValueError, match="sample"):
            small_spec(mode="random")

    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="unknown objective"):
            small_spec(objectives=["throughput"])


class TestExpansion:
    def test_cartesian_size_and_order(self):
        spec = small_spec(scenarios=["traced", "random:0.5"])
        assert spec.space_size == 2 * 2 * 2
        points = spec.expand()
        assert len(points) == 8
        # Deterministic: workload-major, then scenario, then knob product.
        assert points[0].scenario == "traced"
        assert points[0].knobs == (("rows", 1), ("staging", 2))
        assert points[-1].knobs == (("rows", 4), ("staging", 3))

    def test_no_knobs_yields_default_config_point(self):
        spec = small_spec(knobs={})
        points = spec.expand()
        assert len(points) == 1
        assert points[0].config_label == "default"

    def test_point_ids_stable_and_distinct(self):
        first = {p.point_id for p in small_spec().expand()}
        second = {p.point_id for p in small_spec().expand()}
        assert first == second
        assert len(first) == 4

    def test_point_ids_survive_knob_reordering(self):
        # A reordered spec file keeps both the fingerprint and every
        # point id, so an existing manifest still resumes fully.
        a = small_spec(knobs={"rows": [1, 4], "staging": [2, 3]})
        b = small_spec(knobs={"staging": [2, 3], "rows": [1, 4]})
        assert a.fingerprint() == b.fingerprint()
        assert {p.point_id for p in a.expand()} == {p.point_id for p in b.expand()}

    def test_point_id_changes_with_trace_params(self):
        a = small_spec().expand()[0]
        b = small_spec(epochs=2).expand()[0]
        assert a.point_id != b.point_id

    def test_config_applies_every_knob(self):
        spec = small_spec(
            knobs={"rows": [8], "columns": [2], "tiles": [4], "macs": [8],
                   "staging": [2], "datatype": ["bfloat16"], "power_gating": [True]}
        )
        config = spec.expand()[0].config()
        assert config.tile.rows == 8
        assert config.tile.columns == 2
        assert config.num_tiles == 4
        assert config.pe.lanes == 8
        assert config.pe.staging_depth == 2
        assert config.pe.datatype == "bfloat16"
        assert config.power_gated

    def test_config_applies_memory_hierarchy_knobs(self):
        spec = small_spec(knobs={"dram_bandwidth_gbps": [12.8], "sram_kb": [256]})
        config = spec.expand()[0].config()
        assert config.hierarchy.dram_bandwidth_gbps == 12.8
        assert config.hierarchy.sram_kb == 256
        assert not config.hierarchy.is_unbounded

    def test_random_sampling_is_seeded_subset(self):
        spec = small_spec(mode="random", sample=3, seed=42)
        sampled = spec.expand()
        assert len(sampled) == 3
        assert [p.point_id for p in sampled] == [
            p.point_id for p in small_spec(mode="random", sample=3, seed=42).expand()
        ]
        # The sample is a subset of the same-seed cartesian space (the
        # seed also feeds training, so it is part of every point id).
        full_ids = {p.point_id for p in small_spec(seed=42).expand()}
        assert all(p.point_id in full_ids for p in sampled)

    def test_random_sampling_differs_by_seed(self):
        a = [p.point_id for p in small_spec(mode="random", sample=2, seed=0).expand()]
        b = [p.point_id for p in small_spec(mode="random", sample=2, seed=1).expand()]
        assert a != b

    def test_oversampling_returns_whole_space(self):
        spec = small_spec(mode="random", sample=100)
        assert len(spec.expand()) == spec.space_size

    def test_index_decoding_matches_cartesian_order(self):
        # Random mode decodes flat indices instead of materialising the
        # space; the decode must agree with cartesian enumeration.
        spec = small_spec(
            knobs={"rows": [1, 4, 8], "staging": [2, 3], "datatype": ["fp32", "bfloat16"]},
            scenarios=["traced", "random:0.5"],
        )
        full = spec.expand()
        trace_params = full[0].trace_params
        decoded = [spec._point_at(i, trace_params) for i in range(spec.space_size)]
        assert decoded == full

    def test_fingerprint_ignores_presentation_fields(self):
        base = small_spec()
        assert small_spec(name="renamed").fingerprint() == base.fingerprint()
        assert small_spec(objectives=["speedup"]).fingerprint() == base.fingerprint()
        assert small_spec(mode="random", sample=2).fingerprint() == base.fingerprint()
        assert small_spec(max_groups=16).fingerprint() != base.fingerprint()
        assert small_spec(scenarios=["random:0.5"]).fingerprint() != base.fingerprint()


class TestScenarios:
    def test_parse_canonicalises(self):
        assert parse_scenario("TRACED") == "traced"
        assert parse_scenario("random:0.70") == "random:0.7"

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            parse_scenario("random:1.0")
        with pytest.raises(ValueError):
            parse_scenario("random:-0.1")

    def _epoch(self):
        rng = np.random.default_rng(0)
        layer = LayerTrace(
            layer_name="fc1",
            layer_type="fc",
            weight_mask=np.ones((8, 16), dtype=bool),
            activation_mask=rng.random((8, 16)) >= 0.3,
            output_gradient_mask=rng.random((8, 8)) >= 0.3,
            activation_sparsity=0.3,
            gradient_sparsity=0.3,
            macs=1024,
        )
        return EpochTrace(epoch=0, layers=[layer])

    def test_traced_scenario_is_identity(self):
        epoch = self._epoch()
        assert apply_scenario(epoch, "traced") is epoch

    def test_random_scenario_imposes_sparsity(self):
        epoch = apply_scenario(self._epoch(), "random:0.8", seed=0)
        layer = epoch.layers[0]
        assert layer.activation_sparsity == pytest.approx(0.8, abs=0.15)
        assert layer.gradient_sparsity == pytest.approx(0.8, abs=0.2)
        # Shapes, weights and MAC counts are untouched.
        original = self._epoch().layers[0]
        assert layer.activation_mask.shape == original.activation_mask.shape
        assert np.array_equal(layer.weight_mask, original.weight_mask)
        assert layer.macs == original.macs

    def test_random_scenario_is_deterministic(self):
        a = apply_scenario(self._epoch(), "random:0.5", seed=7)
        b = apply_scenario(self._epoch(), "random:0.5", seed=7)
        assert np.array_equal(a.layers[0].activation_mask, b.layers[0].activation_mask)
        c = apply_scenario(self._epoch(), "random:0.5", seed=8)
        assert not np.array_equal(
            a.layers[0].activation_mask, c.layers[0].activation_mask
        )


class TestObjectives:
    def test_defaults_orient_from_registry(self):
        objectives = parse_objectives(["speedup", "area_overhead"])
        assert objectives[0].maximize
        assert not objectives[1].maximize

    def test_explicit_direction_overrides(self):
        objectives = parse_objectives(["area_overhead:max"])
        assert objectives[0].maximize

    def test_explicit_direction_allows_unregistered_metrics(self):
        # Any recorded metric works as a frontier axis when its
        # orientation is spelled out.
        objectives = parse_objectives(["baseline_energy_pj:min"])
        assert objectives[0].name == "baseline_energy_pj"
        assert not objectives[0].maximize

    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            parse_objectives([])
