"""Tests for synthetic datasets, the trainer and operand tracing."""

import numpy as np
import pytest

from repro.models import build_alexnet, build_gcn
from repro.nn.optim import MomentumSGD
from repro.training import (
    SyntheticImageDataset,
    SyntheticPairDataset,
    SyntheticSequenceDataset,
    TraceCollector,
    Trainer,
    TrainingConfig,
)


class TestSyntheticDatasets:
    def test_image_batch_shapes_and_nonnegativity(self):
        dataset = SyntheticImageDataset(num_classes=5, channels=3, size=16)
        images, labels = dataset.sample_batch(8)
        assert images.shape == (8, 3, 16, 16)
        assert labels.shape == (8,)
        assert np.all(images >= 0)
        assert np.all(labels < 5)

    def test_image_dataset_is_class_conditional(self):
        dataset = SyntheticImageDataset(num_classes=2, size=8, seed=0)
        images, labels = dataset.sample_batch(256)
        class0 = images[labels == 0].mean(axis=0)
        class1 = images[labels == 1].mean(axis=0)
        assert not np.allclose(class0, class1, atol=0.05)

    def test_image_batches_iterator(self):
        dataset = SyntheticImageDataset()
        batches = list(dataset.batches(batch_size=4, num_batches=3))
        assert len(batches) == 3

    def test_sequence_batch_shapes(self):
        dataset = SyntheticSequenceDataset(vocab_size=100, sequence_length=12, num_classes=4)
        tokens, labels = dataset.sample_batch(6)
        assert tokens.shape == (6, 12)
        assert np.all(tokens < 100)
        assert np.all(labels < 4)

    def test_sequence_vocabulary_is_skewed(self):
        dataset = SyntheticSequenceDataset(vocab_size=50, sequence_length=100)
        tokens, _ = dataset.sample_batch(64)
        counts = np.bincount(tokens.reshape(-1), minlength=50)
        assert counts[0] > counts[25]

    def test_lm_batch_targets_are_shifted(self):
        dataset = SyntheticSequenceDataset(vocab_size=100, sequence_length=10)
        inputs, targets = dataset.sample_lm_batch(4)
        assert inputs.shape == targets.shape == (4, 10)

    def test_pair_dataset(self):
        dataset = SyntheticPairDataset(vocab_size=64, sequence_length=8)
        premises, hypotheses, labels = dataset.sample_batch(4)
        assert premises.shape == hypotheses.shape == (4, 8)
        assert np.all(labels < 3)

    def test_dataset_len(self):
        assert len(SyntheticImageDataset(num_classes=10, samples_per_class=64)) == 640


class TestTraceCollector:
    def _traced_alexnet(self):
        model = build_alexnet()
        from repro.nn.losses import CrossEntropyLoss

        x = np.abs(np.random.default_rng(0).normal(size=(4, 3, 32, 32))).astype(np.float32)
        loss = CrossEntropyLoss()
        logits = model(x)
        loss(logits, np.array([0, 1, 2, 3]))
        model.backward(loss.backward())
        return model

    def test_collects_every_traceable_layer(self):
        model = self._traced_alexnet()
        trace = TraceCollector().collect(model, epoch=0)
        assert len(trace.layers) == len(model.traceable_modules())

    def test_masks_present_when_requested(self):
        model = self._traced_alexnet()
        trace = TraceCollector(store_masks=True).collect(model, epoch=0)
        conv_trace = trace.layers[0]
        assert conv_trace.activation_mask is not None
        assert conv_trace.weight_mask is not None
        assert conv_trace.output_gradient_mask is not None

    def test_masks_absent_when_disabled(self):
        model = self._traced_alexnet()
        trace = TraceCollector(store_masks=False).collect(model, epoch=0)
        assert trace.layers[0].activation_mask is None
        assert trace.layers[0].activation_sparsity >= 0.0

    def test_conv_layer_metadata(self):
        model = self._traced_alexnet()
        trace = TraceCollector().collect(model, epoch=0)
        conv_trace = trace.layers[0]
        assert conv_trace.layer_type == "conv"
        assert conv_trace.kernel == 3
        assert conv_trace.macs > 0

    def test_fc_layer_metadata(self):
        model = self._traced_alexnet()
        trace = TraceCollector().collect(model, epoch=0)
        fc_traces = [t for t in trace.layers if t.layer_type == "fc"]
        assert fc_traces
        assert all(t.kernel == 1 for t in fc_traces)

    def test_conv_batch_clipping(self):
        model = self._traced_alexnet()
        trace = TraceCollector(max_batch=2).collect(model, epoch=0)
        assert trace.layers[0].activation_mask.shape[0] == 2

    def test_operand_sparsity_accessor(self):
        model = self._traced_alexnet()
        trace = TraceCollector().collect(model, epoch=0)
        layer = trace.layers[2]
        assert layer.operand_sparsity("AxW") == layer.activation_sparsity
        assert layer.operand_sparsity("AxG") == layer.gradient_sparsity
        assert layer.operand_sparsity("WxG") == max(
            layer.gradient_sparsity, layer.activation_sparsity
        )
        with pytest.raises(ValueError):
            layer.operand_sparsity("bogus")

    def test_epoch_mean_sparsity(self):
        model = self._traced_alexnet()
        trace = TraceCollector().collect(model, epoch=0)
        assert 0.0 <= trace.mean_sparsity("activations") <= 1.0
        assert 0.0 <= trace.mean_sparsity("gradients") <= 1.0


class TestTrainer:
    def test_training_produces_one_trace_per_epoch(self):
        model = build_alexnet(width_multiplier=0.5)
        dataset = SyntheticImageDataset(size=32)
        trainer = Trainer(
            model,
            MomentumSGD(model.parameters(), lr=0.01),
            config=TrainingConfig(epochs=3, batches_per_epoch=1, batch_size=4),
        )
        trace = trainer.train(dataset, model_name="alexnet")
        assert len(trace.epochs) == 3
        assert trace.model_name == "alexnet"
        assert len(trainer.epoch_stats) == 3

    def test_loss_decreases_over_training(self):
        model = build_alexnet(width_multiplier=0.5)
        dataset = SyntheticImageDataset(num_classes=4, size=32, seed=1)
        trainer = Trainer(
            model,
            MomentumSGD(model.parameters(), lr=0.005),
            config=TrainingConfig(epochs=6, batches_per_epoch=4, batch_size=8),
        )
        trainer.train(dataset, model_name="alexnet")
        final_loss = trainer.epoch_stats[-1].mean_loss
        assert np.isfinite(final_loss)
        assert final_loss < trainer.epoch_stats[0].mean_loss

    def test_pruning_hook_is_invoked(self):
        calls = []
        model = build_alexnet(width_multiplier=0.5)
        dataset = SyntheticImageDataset(size=32)
        trainer = Trainer(
            model,
            MomentumSGD(model.parameters(), lr=0.01),
            config=TrainingConfig(epochs=2, batches_per_epoch=3, batch_size=4),
            pruning_hook=lambda m, e, s: calls.append((e, s)),
        )
        trainer.train(dataset)
        assert len(calls) == 6

    def test_gcn_trainer_on_sequences(self):
        model = build_gcn(vocab_size=64, sequence_length=10, num_classes=64)
        dataset = SyntheticSequenceDataset(vocab_size=64, sequence_length=10, num_classes=64)
        trainer = Trainer(
            model,
            MomentumSGD(model.parameters(), lr=0.01),
            config=TrainingConfig(epochs=1, batches_per_epoch=2, batch_size=4),
        )
        trace = trainer.train(dataset, model_name="gcn")
        assert len(trace.epochs) == 1

    def test_training_trace_progress_accessors(self):
        model = build_alexnet(width_multiplier=0.5)
        dataset = SyntheticImageDataset(size=32)
        trainer = Trainer(
            model,
            MomentumSGD(model.parameters(), lr=0.01),
            config=TrainingConfig(epochs=4, batches_per_epoch=1, batch_size=4),
        )
        trace = trainer.train(dataset)
        assert trace.final_epoch().epoch == 3
        assert trace.epoch_at_progress(0.0).epoch == 0
        assert trace.epoch_at_progress(1.0).epoch == 3
        assert trace.epoch_at_progress(0.5).epoch in (1, 2)

    def test_final_loss_requires_training(self):
        model = build_alexnet(width_multiplier=0.5)
        trainer = Trainer(model, MomentumSGD(model.parameters(), lr=0.01))
        with pytest.raises(RuntimeError):
            trainer.final_loss()
