"""Tests for the hierarchical hardware scheduler."""

import numpy as np
import pytest

from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import BatchScheduler, HardwareScheduler


def window(depth=3, lanes=16, fill=False):
    return np.full((depth, lanes), fill, dtype=bool)


class TestSingleStep:
    def setup_method(self):
        self.scheduler = HardwareScheduler()

    def test_dense_window_uses_dense_schedule(self):
        schedule = self.scheduler.schedule_step(window(fill=True))
        assert schedule.busy_lanes == 16
        for lane, selection in enumerate(schedule.selections):
            assert selection == (0, lane)
        assert schedule.advance == 1

    def test_empty_window_advances_full_depth(self):
        schedule = self.scheduler.schedule_step(window(fill=False))
        assert schedule.busy_lanes == 0
        assert schedule.advance == 3

    def test_single_sparse_row_advances_by_depth(self):
        w = window()
        # Only the last (deepest) row has work; all of it fits in one cycle.
        w[2, :] = True
        schedule = self.scheduler.schedule_step(w)
        assert schedule.busy_lanes == 16
        assert schedule.advance == 3

    def test_every_effectual_pair_selected_at_most_once(self):
        rng = np.random.default_rng(7)
        for _ in range(50):
            w = rng.random((3, 16)) > 0.5
            schedule = self.scheduler.schedule_step(w)
            chosen = [s for s in schedule.selections if s is not None]
            assert len(chosen) == len(set(chosen))
            for step, lane in chosen:
                assert w[step, lane]

    def test_row_zero_always_fully_consumed(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            w = rng.random((3, 16)) > 0.3
            schedule = self.scheduler.schedule_step(w)
            row0 = set(np.flatnonzero(w[0]))
            consumed = {lane for s in schedule.selections if s is not None and s[0] == 0
                        for lane in [s[1]]}
            assert row0 == consumed

    def test_advance_is_at_least_one(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            w = rng.random((3, 16)) > 0.2
            assert self.scheduler.schedule_step(w).advance >= 1

    def test_select_signals_match_selected_positions(self):
        rng = np.random.default_rng(5)
        pattern = ConnectivityPattern()
        w = rng.random((3, 16)) > 0.5
        schedule = self.scheduler.schedule_step(w)
        for lane, (selection, signal) in enumerate(
            zip(schedule.selections, schedule.select_signals)
        ):
            if selection is None:
                assert signal is None
            else:
                assert pattern.options_for_lane(lane)[signal] == selection

    def test_rejects_wrong_window_shape(self):
        with pytest.raises(ValueError):
            self.scheduler.schedule_step(np.zeros((2, 16), dtype=bool))

    def test_utilization_reflects_busy_lanes(self):
        w = window()
        w[0, :8] = True
        schedule = self.scheduler.schedule_step(w)
        assert schedule.utilization == pytest.approx(8 / 16)


class TestFigure7Example:
    """The worked example of Fig. 7: 4 lanes, 4 time steps, 7 effectual pairs."""

    def test_example_completes_in_two_cycles_with_4_lane_pe(self):
        # Effectual pairs from Fig. 7a (time x lane), lanes 0..3, times 0..3.
        effectual = np.array(
            [
                [0, 1, 0, 0],   # t=0: a1/b1 only
                [1, 1, 1, 1],   # t=1: all four pairs effectual
                [0, 0, 0, 0],   # t=2: none (a or b zero everywhere)
                [1, 0, 0, 1],   # t=3: lanes 0 and 3
            ],
            dtype=bool,
        )
        pattern = ConnectivityPattern(lanes=4, staging_depth=3)
        scheduler = HardwareScheduler(pattern)
        cycles, _ = scheduler.process_stream(effectual)
        assert cycles == 2


class TestStreamProcessing:
    def setup_method(self):
        self.scheduler = HardwareScheduler()

    def test_dense_stream_takes_one_cycle_per_row(self):
        stream = np.ones((20, 16), dtype=bool)
        cycles, _ = self.scheduler.process_stream(stream)
        assert cycles == 20

    def test_empty_stream_takes_ceil_rows_over_depth_cycles(self):
        stream = np.zeros((20, 16), dtype=bool)
        cycles, _ = self.scheduler.process_stream(stream)
        assert cycles == -(-20 // 3)

    def test_speedup_never_exceeds_staging_depth(self):
        rng = np.random.default_rng(0)
        for sparsity in (0.3, 0.6, 0.9, 0.99):
            stream = rng.random((60, 16)) > sparsity
            cycles, _ = self.scheduler.process_stream(stream)
            assert cycles >= 60 / 3
            assert cycles <= 60

    def test_all_effectual_pairs_consumed_exactly_once(self):
        rng = np.random.default_rng(1)
        stream = rng.random((30, 16)) > 0.5
        cycles, schedules = self.scheduler.process_stream(stream)
        # Count of selections equals count of effectual pairs.
        selected = sum(s.busy_lanes for s in schedules)
        assert selected == int(stream.sum())

    def test_rejects_wrong_lane_count(self):
        with pytest.raises(ValueError):
            self.scheduler.process_stream(np.ones((10, 8), dtype=bool))


class TestBatchScheduler:
    def test_matches_hardware_scheduler_on_random_windows(self):
        rng = np.random.default_rng(42)
        hardware = HardwareScheduler()
        batch = BatchScheduler()
        windows = rng.random((64, 3, 16)) > 0.55
        claimed, advance, busy = batch.schedule(windows)
        for index in range(64):
            schedule = hardware.schedule_step(windows[index])
            expected = np.zeros((3, 16), dtype=bool)
            for selection in schedule.selections:
                if selection is not None:
                    expected[selection] = True
            assert np.array_equal(claimed[index], expected)
            assert advance[index] == schedule.advance
            assert busy[index] == schedule.busy_lanes

    def test_stream_cycles_matches_sequential_processing(self):
        rng = np.random.default_rng(9)
        hardware = HardwareScheduler()
        batch = BatchScheduler()
        for sparsity in (0.2, 0.5, 0.8):
            stream = rng.random((40, 16)) > sparsity
            sequential_cycles, _ = hardware.process_stream(stream)
            assert batch.stream_cycles(stream) == sequential_cycles

    def test_batch_streams_are_independent(self):
        rng = np.random.default_rng(10)
        batch = BatchScheduler()
        streams = rng.random((8, 25, 16)) > 0.6
        together = batch.stream_cycles_batch(streams)
        separate = np.array([batch.stream_cycles(s) for s in streams])
        assert np.array_equal(together, separate)

    def test_empty_batch_returns_zero_cycles(self):
        batch = BatchScheduler()
        assert batch.stream_cycles_batch(np.zeros((3, 0, 16), dtype=bool)).tolist() == [0, 0, 0]

    def test_rejects_wrong_window_shape(self):
        batch = BatchScheduler()
        with pytest.raises(ValueError):
            batch.schedule(np.zeros((4, 2, 16), dtype=bool))
