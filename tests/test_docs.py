"""Documentation tests: the README and ``docs/`` cannot silently rot.

Four enforcement layers:

* every relative markdown link in README.md and ``docs/*.md`` must point
  at a file that exists;
* every fenced ``python`` block in those files must *execute* (a block
  may opt out with an ``<!-- docs-test: skip -->`` comment on the line
  before the fence, e.g. deliberately long-running examples);
* every ``repro`` command line inside fenced ``bash`` blocks must parse
  against the real CLI — a renamed flag or removed subcommand fails here
  even though the commands are not executed;
* every module under ``src/repro`` must carry a module docstring.
"""

import ast
import io
import re
import shlex
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documentation set under test.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

SKIP_MARKER = "<!-- docs-test: skip -->"

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _fenced_blocks(path: Path):
    """Yield (language, first_line_number, code, skipped) per fence."""
    lines = path.read_text().splitlines()
    language = None
    start = 0
    code = []
    skipped = False
    previous = ""
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if language is None:
            if stripped.startswith("```") and len(stripped) > 3:
                language = stripped[3:].strip().lower()
                start = number + 1
                code = []
                skipped = SKIP_MARKER in previous
        elif stripped == "```":
            yield language, start, "\n".join(code), skipped
            language = None
        else:
            code.append(line)
        previous = stripped


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO_ROOT))


class TestInternalLinks:
    @pytest.mark.parametrize("path", DOC_FILES, ids=_doc_id)
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _LINK.findall(path.read_text()):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):   # http:, mailto:, ...
                continue
            target = target.split("#", 1)[0]
            if not target:                                  # pure #anchor
                continue
            if not (path.parent / target).exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken relative link(s): {broken}"


def _python_blocks():
    cases = []
    for path in DOC_FILES:
        for language, line, code, skipped in _fenced_blocks(path):
            if language == "python" and not skipped:
                cases.append(
                    pytest.param(code, id=f"{_doc_id(path)}:{line}")
                )
    return cases


class TestPythonSnippets:
    @pytest.mark.parametrize("code", _python_blocks())
    def test_snippet_executes(self, code):
        compiled = compile(code, "<docs snippet>", "exec")
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            exec(compiled, {"__name__": "__docs__"})   # noqa: S102


def _repro_commands():
    cases = []
    for path in DOC_FILES:
        for language, line, code, skipped in _fenced_blocks(path):
            if language != "bash" or skipped:
                continue
            # Join backslash continuations into one logical line each.
            joined = re.sub(r"\\\n\s*", " ", code)
            for offset, raw in enumerate(joined.splitlines()):
                command = raw.split("  #", 1)[0].strip()
                command = command.rstrip("&").strip()
                while re.match(r"^[A-Za-z_][A-Za-z0-9_]*=\S+\s", command):
                    command = command.split(None, 1)[1]
                if command.startswith("python -m repro"):
                    arguments = command[len("python -m repro"):].strip()
                elif command.startswith("repro "):
                    arguments = command[len("repro "):].strip()
                else:
                    continue
                cases.append(pytest.param(
                    arguments, id=f"{_doc_id(path)}:{line + offset}"
                ))
    return cases


class TestCliCommands:
    @pytest.mark.parametrize("arguments", _repro_commands())
    def test_documented_command_parses(self, arguments):
        from repro.cli import build_parser

        parser = build_parser()
        out, err = io.StringIO(), io.StringIO()
        try:
            with redirect_stdout(out), redirect_stderr(err):
                parser.parse_args(shlex.split(arguments))
        except SystemExit as exit_:
            # --version exits 0 after printing; anything non-zero is a
            # documented command the real CLI no longer accepts.
            assert exit_.code == 0, (
                f"documented command no longer parses: repro {arguments}\n"
                f"{err.getvalue()}"
            )


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in sorted((REPO_ROOT / "src" / "repro").rglob("*.py")):
            tree = ast.parse(path.read_text())
            if not ast.get_docstring(tree):
                missing.append(str(path.relative_to(REPO_ROOT)))
        assert not missing, f"modules without a docstring: {missing}"
