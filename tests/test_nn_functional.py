"""Tests for the low-level numpy tensor operations (im2col convolutions)."""

import numpy as np
import pytest

from repro.nn import functional as F


def reference_conv2d(x, weight, bias, stride, padding):
    """Naive direct convolution used as the ground truth."""
    n, c, h, w = x.shape
    f, _, kh, kw = weight.shape
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    x_padded = F.pad_input(x, padding)
    out = np.zeros((n, f, out_h, out_w), dtype=np.float64)
    for sample in range(n):
        for filt in range(f):
            for oy in range(out_h):
                for ox in range(out_w):
                    patch = x_padded[
                        sample, :, oy * stride : oy * stride + kh, ox * stride : ox * stride + kw
                    ]
                    out[sample, filt, oy, ox] = np.sum(patch * weight[filt])
            if bias is not None:
                out[sample, filt] += bias[filt]
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive_convolution(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        weight = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        bias = rng.normal(size=(4,)).astype(np.float32)
        out, _ = F.conv2d_forward(x, weight, bias, stride, padding)
        expected = reference_conv2d(x, weight, bias, stride, padding)
        assert np.allclose(out, expected, atol=1e-4)

    def test_output_shape(self):
        x = np.zeros((1, 3, 32, 32), dtype=np.float32)
        weight = np.zeros((8, 3, 3, 3), dtype=np.float32)
        out, _ = F.conv2d_forward(x, weight, None, stride=2, padding=1)
        assert out.shape == (1, 8, 16, 16)

    def test_conv_output_size(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(8, 3, 1, 0) == 6


class TestConvBackward:
    def _numerical_grad(self, fn, tensor, epsilon=1e-3):
        grad = np.zeros_like(tensor, dtype=np.float64)
        flat = tensor.reshape(-1)
        grad_flat = grad.reshape(-1)
        for index in range(flat.size):
            original = flat[index]
            flat[index] = original + epsilon
            plus = fn()
            flat[index] = original - epsilon
            minus = fn()
            flat[index] = original
            grad_flat[index] = (plus - minus) / (2 * epsilon)
        return grad

    def test_gradients_match_numerical(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float64)
        weight = rng.normal(size=(3, 2, 3, 3)).astype(np.float64)
        target = rng.normal(size=(1, 3, 5, 5)).astype(np.float64)

        def loss():
            out, _ = F.conv2d_forward(x, weight, None, stride=1, padding=1)
            return float(np.sum((out - target) ** 2))

        out, cols = F.conv2d_forward(x, weight, None, stride=1, padding=1)
        grad_out = 2.0 * (out - target)
        grad_input, grad_weight, _ = F.conv2d_backward(
            grad_out, x, weight, cols, stride=1, padding=1
        )
        numerical_x = self._numerical_grad(loss, x)
        numerical_w = self._numerical_grad(loss, weight)
        assert np.allclose(grad_input, numerical_x, atol=1e-3)
        assert np.allclose(grad_weight, numerical_w, atol=1e-3)

    def test_strided_gradients_match_numerical(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 6, 6)).astype(np.float64)
        weight = rng.normal(size=(2, 2, 3, 3)).astype(np.float64)

        def loss():
            out, _ = F.conv2d_forward(x, weight, None, stride=2, padding=1)
            return float(np.sum(out ** 2))

        out, cols = F.conv2d_forward(x, weight, None, stride=2, padding=1)
        grad_input, grad_weight, _ = F.conv2d_backward(
            2.0 * out, x, weight, cols, stride=2, padding=1
        )
        assert np.allclose(grad_input, self._numerical_grad(loss, x), atol=1e-3)
        assert np.allclose(grad_weight, self._numerical_grad(loss, weight), atol=1e-3)

    def test_bias_gradient_is_sum_over_positions(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 2, 4, 4))
        weight = rng.normal(size=(3, 2, 3, 3))
        out, cols = F.conv2d_forward(x, weight, np.zeros(3), stride=1, padding=1)
        grad_out = rng.normal(size=out.shape)
        _, _, grad_bias = F.conv2d_backward(grad_out, x, weight, cols, 1, 1)
        assert np.allclose(grad_bias, grad_out.sum(axis=(0, 2, 3)))


class TestIm2Col:
    def test_col2im_is_adjoint_of_im2col(self):
        """<im2col(x), y> == <x, col2im(y)> (adjoint / scatter-gather pair)."""
        rng = np.random.default_rng(4)
        x = rng.normal(size=(2, 3, 6, 6))
        cols = F.im2col(x, 3, 3, stride=1, padding=1)
        y = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * F.col2im(y, x.shape, 3, 3, stride=1, padding=1)))
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_im2col_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, stride=2, padding=1)
        assert cols.shape == (2, 4, 4, 27)


class TestLinear:
    def test_forward_matches_matmul(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 10))
        weight = rng.normal(size=(6, 10))
        bias = rng.normal(size=(6,))
        assert np.allclose(F.linear_forward(x, weight, bias), x @ weight.T + bias)

    def test_backward_shapes_and_values(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, 10))
        weight = rng.normal(size=(6, 10))
        grad_out = rng.normal(size=(4, 6))
        grad_input, grad_weight, grad_bias = F.linear_backward(grad_out, x, weight)
        assert np.allclose(grad_input, grad_out @ weight)
        assert np.allclose(grad_weight, grad_out.T @ x)
        assert np.allclose(grad_bias, grad_out.sum(axis=0))


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out, _ = F.max_pool2d_forward(x, kernel=2, stride=2)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out, argmax = F.max_pool2d_forward(x, kernel=2, stride=2)
        grad = F.max_pool2d_backward(np.ones_like(out), argmax, x.shape, 2, 2)
        assert grad.sum() == 4
        assert grad[0, 0, 1, 1] == 1 and grad[0, 0, 3, 3] == 1

    def test_avg_pool_forward_backward(self):
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        out = F.avg_pool2d_forward(x, kernel=2, stride=2)
        assert np.allclose(out, 1.0)
        grad = F.avg_pool2d_backward(np.ones_like(out), x.shape, 2, 2)
        assert np.allclose(grad, 0.25)

    def test_avg_pool_gradient_is_adjoint(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(1, 2, 6, 6))
        out = F.avg_pool2d_forward(x, 2, 2)
        y = rng.normal(size=out.shape)
        lhs = float(np.sum(out * y))
        rhs = float(np.sum(x * F.avg_pool2d_backward(y, x.shape, 2, 2)))
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestSigmoid:
    def test_range_and_symmetry(self):
        x = np.linspace(-20, 20, 101)
        s = F.sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert np.allclose(s + F.sigmoid(-x), 1.0)

    def test_extreme_values_do_not_overflow(self):
        s = F.sigmoid(np.array([-1e4, 1e4]))
        assert s[0] == pytest.approx(0.0)
        assert s[1] == pytest.approx(1.0)
