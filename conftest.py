"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. running ``pytest`` straight from a fresh checkout on a
machine without network access for ``pip install -e .``).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
