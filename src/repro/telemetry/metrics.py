"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named instruments, each optionally
labelled (``repro_cache_hits_total{tier="memo"}``), and renders them two
ways:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format (``text/plain; version=0.0.4``), what
  ``GET /v1/metrics`` serves to a scraper;
* :meth:`MetricsRegistry.as_dict` — a structured JSON document (the
  ``?format=json`` variant, also embedded in telemetry metrics-snapshot
  records).

All instruments are thread-safe (one lock per metric) and cheap enough
to feed from the engine's hot paths: the engine increments them at the
same batch granularity it maintains :class:`~repro.engine.EngineStats` —
per ``simulate_layers`` call, never per layer — so the registry is the
live view of the counters the stats records already carry, not a second
accounting implementation.

The standard catalogue (see ``docs/observability.md``) is created on the
default registry at import time, so a scrape always shows every series
name even before traffic arrives; grab instruments via the module-level
constants (``CACHE_HITS.inc(3, tier="memo")``).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-100ms health checks through
#: multi-minute explore studies.
LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

#: Fraction buckets for ratio-valued observations (stall fractions).
FRACTION_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Metric:
    """Base class: a named instrument with a fixed label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labels = tuple(labels)
        self._lock = threading.Lock()
        self._series: Dict[Tuple[str, ...], object] = {}

    # ------------------------------------------------------------------
    def _key(self, label_values: Dict[str, object]) -> Tuple[str, ...]:
        if set(label_values) != set(self.labels):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.labels)}, "
                f"got {sorted(label_values)}"
            )
        return tuple(str(label_values[label]) for label in self.labels)

    def _label_text(self, key: Tuple[str, ...]) -> str:
        if not self.labels:
            return ""
        pairs = ",".join(
            f'{label}="{_escape_label_value(value)}"'
            for label, value in zip(self.labels, key)
        )
        return "{" + pairs + "}"

    def _sorted_series(self):
        return sorted(self._series.items())

    # Rendering hooks subclasses implement -----------------------------
    def render(self) -> List[str]:
        raise NotImplementedError

    def snapshot(self) -> Dict:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing sum (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def render(self) -> List[str]:
        with self._lock:
            items = self._sorted_series()
        return [
            f"{self.name}{self._label_text(key)} {_format_value(value)}"
            for key, value in items
        ]

    def snapshot(self) -> Dict:
        with self._lock:
            items = self._sorted_series()
        return {
            "type": self.kind,
            "help": self.help,
            "values": [
                {"labels": dict(zip(self.labels, key)), "value": value}
                for key, value in items
            ],
        }


class Gauge(Metric):
    """A value that can go up and down (sizes, uptimes, temperatures)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    render = Counter.render
    snapshot = Counter.snapshot


class Histogram(Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    everything.  Per label set the histogram keeps cumulative bucket
    counts, the observation sum and the observation count.
    """

    kind = "histogram"

    def __init__(self, name, help, buckets: Sequence[float], labels=()):
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        value = float(value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series["counts"][index] += 1
                    break
            else:
                series["counts"][-1] += 1
            series["sum"] += value
            series["count"] += 1

    def value(self, **labels) -> int:
        """The observation count for one label set (0 when unseen)."""
        with self._lock:
            series = self._series.get(self._key(labels))
            return int(series["count"]) if series else 0

    def _cumulative(self, counts: List[int]) -> List[int]:
        total = 0
        output = []
        for count in counts:
            total += count
            output.append(total)
        return output

    def render(self) -> List[str]:
        with self._lock:
            items = [
                (key, list(series["counts"]), series["sum"], series["count"])
                for key, series in self._sorted_series()
            ]
        lines = []
        bounds = list(self.buckets) + [math.inf]
        for key, counts, total_sum, count in items:
            cumulative = self._cumulative(counts)
            for bound, running in zip(bounds, cumulative):
                labels = dict(zip(self.labels, key))
                labels["le"] = _format_value(bound)
                pairs = ",".join(
                    f'{name}="{_escape_label_value(value)}"'
                    for name, value in labels.items()
                )
                lines.append(f"{self.name}_bucket{{{pairs}}} {running}")
            suffix = self._label_text(key)
            lines.append(f"{self.name}_sum{suffix} {_format_value(total_sum)}")
            lines.append(f"{self.name}_count{suffix} {count}")
        return lines

    def snapshot(self) -> Dict:
        with self._lock:
            items = [
                (key, list(series["counts"]), series["sum"], series["count"])
                for key, series in self._sorted_series()
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": [
                {
                    "labels": dict(zip(self.labels, key)),
                    "counts": counts,
                    "sum": total_sum,
                    "count": count,
                }
                for key, counts, total_sum, count in items
            ],
        }


class MetricsRegistry:
    """A named collection of instruments with idempotent registration."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: "Dict[str, Metric]" = {}

    # ------------------------------------------------------------------
    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if (type(existing) is not type(metric)
                        or existing.labels != metric.labels):
                    raise ValueError(
                        f"metric {metric.name!r} already registered with a "
                        f"different type or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labels))

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labels))

    def histogram(
        self, name: str, help: str,
        buckets: Sequence[float] = LATENCY_BUCKETS, labels: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets, labels))

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict:
        """The structured JSON variant of the same data."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        return {metric.name: metric.snapshot() for metric in metrics}


# ----------------------------------------------------------------------
# the default registry and the standard catalogue

_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry ``GET /v1/metrics`` serves."""
    return _DEFAULT_REGISTRY


#: Session/API requests completed, by request kind.
REQUESTS_TOTAL = _DEFAULT_REGISTRY.counter(
    "repro_requests_total",
    "Session requests served, by request kind.",
    labels=("kind",),
)
#: End-to-end request latency, by request kind.
REQUEST_SECONDS = _DEFAULT_REGISTRY.histogram(
    "repro_request_seconds",
    "Session request latency in seconds, by request kind.",
    buckets=LATENCY_BUCKETS,
    labels=("kind",),
)
#: Layers actually simulated (cache misses that ran), by backend.
LAYERS_SIMULATED = _DEFAULT_REGISTRY.counter(
    "repro_layers_simulated_total",
    "Traced layers simulated by an execution backend (cache misses).",
    labels=("backend",),
)
#: Cache hits attributed to the tier that served them.
CACHE_HITS = _DEFAULT_REGISTRY.counter(
    "repro_cache_hits_total",
    "Layer-result cache hits, by serving tier (memo, shared, disk).",
    labels=("tier",),
)
#: Lookups that missed every configured tier.
CACHE_MISSES = _DEFAULT_REGISTRY.counter(
    "repro_cache_misses_total",
    "Layer-result cache lookups that missed every tier.",
)
#: Stall-cycle fraction observed per simulated design point / roofline run.
STALL_FRACTION = _DEFAULT_REGISTRY.histogram(
    "repro_stall_fraction",
    "Memory-stall cycle fraction of simulated runs (0 = compute bound).",
    buckets=FRACTION_BUCKETS,
)
#: Design points executed by study runs (sweep/explore).
STUDY_POINTS = _DEFAULT_REGISTRY.counter(
    "repro_study_points_total",
    "Design-space study points executed (resumed points excluded).",
)
#: Worker processes executing the current/most recent study (1 = serial).
STUDY_WORKERS = _DEFAULT_REGISTRY.gauge(
    "repro_study_workers",
    "Worker processes executing design-space study points (1 = serial).",
)
#: HTTP traffic served by ``repro serve``.
HTTP_REQUESTS = _DEFAULT_REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP responses sent by the batch service, by method and status.",
    labels=("method", "status"),
)
#: Training traces held warm by the session LRU.
CACHED_TRACES = _DEFAULT_REGISTRY.gauge(
    "repro_session_cached_traces",
    "Training traces currently cached by the session.",
)
#: Asynchronous job state transitions (a job increments every state it enters).
JOBS_TOTAL = _DEFAULT_REGISTRY.counter(
    "repro_jobs_total",
    "Asynchronous job state transitions, by state entered.",
    labels=("state",),
)
#: Jobs submitted but not yet claimed by a worker thread.
JOB_QUEUE_DEPTH = _DEFAULT_REGISTRY.gauge(
    "repro_job_queue_depth",
    "Asynchronous jobs waiting for a worker thread.",
)
#: Execution time of finished jobs (queue wait excluded).
JOB_SECONDS = _DEFAULT_REGISTRY.histogram(
    "repro_job_seconds",
    "Asynchronous job execution duration in seconds (queue wait excluded).",
    buckets=LATENCY_BUCKETS,
)

# Pre-create the per-tier series so a scrape shows the whole cache
# hierarchy from the first request, hits or not.
for _tier in ("memo", "shared", "disk"):
    CACHE_HITS.inc(0, tier=_tier)
CACHE_MISSES.inc(0)
# Likewise every job state, so dashboards see the full lifecycle from
# the first scrape (mirrors repro.api.schema.JOB_STATES; kept literal —
# this module sits below the API layer).
for _state in ("queued", "running", "succeeded", "failed", "cancelled"):
    JOBS_TOTAL.inc(0, state=_state)
