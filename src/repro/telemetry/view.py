"""Span-tree rendering for recorded telemetry logs (``repro trace``).

Rebuilds the parent/child structure of every trace in a JSONL event log
(one segment file, or a telemetry directory of rotated segments) and
renders it as an indented tree with **total** wall time (the span's own
duration) and **self** time (total minus the children's totals) — the
same self/total decomposition ``docs/performance.md`` used to get from a
one-off cProfile script, now available for any recorded run.

Spans whose parent is missing from the log (rotated away, or emitted by
another process) are promoted to roots, so partial logs still render.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.telemetry.schema import iter_records, validate_record

#: Attribute values longer than this are elided in tree lines.
_MAX_ATTR_CHARS = 40


@dataclass
class SpanNode:
    """One span plus its resolved children, ready to render."""

    record: Dict
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record["name"]

    @property
    def start_s(self) -> float:
        return float(self.record["start_s"])

    @property
    def total_s(self) -> float:
        return float(self.record["duration_s"])

    @property
    def self_s(self) -> float:
        return max(0.0, self.total_s - sum(c.total_s for c in self.children))

    def count(self) -> int:
        return 1 + sum(child.count() for child in self.children)


@dataclass
class TraceTree:
    """Every root span recorded under one ``trace_id``."""

    trace_id: str
    roots: List[SpanNode]

    @property
    def span_count(self) -> int:
        return sum(root.count() for root in self.roots)

    @property
    def total_s(self) -> float:
        return sum(root.total_s for root in self.roots)


def load_spans(path) -> List[Dict]:
    """Every valid span record under ``path`` (metrics records skipped)."""
    spans = []
    for _file, _number, record in iter_records(path):
        if validate_record(record) == "span":
            spans.append(record)
    return spans


def build_trees(spans: List[Dict]) -> List[TraceTree]:
    """Group spans by trace and resolve parents (orphans become roots)."""
    by_trace: "Dict[str, List[Dict]]" = {}
    for record in spans:
        by_trace.setdefault(record["trace_id"], []).append(record)
    trees = []
    for trace_id, records in by_trace.items():
        nodes = {record["span_id"]: SpanNode(record) for record in records}
        roots = []
        for node in nodes.values():
            parent = nodes.get(node.record.get("parent_id"))
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda child: child.start_s)
        roots.sort(key=lambda root: root.start_s)
        trees.append(TraceTree(trace_id=trace_id, roots=roots))
    trees.sort(key=lambda tree: tree.roots[0].start_s if tree.roots else 0.0)
    return trees


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1e3:8.3f}ms"


def _attribute_text(record: Dict) -> str:
    parts = []
    for key, value in sorted(record.get("attributes", {}).items()):
        text = str(value)
        if len(text) > _MAX_ATTR_CHARS:
            text = text[: _MAX_ATTR_CHARS - 1] + "…"
        parts.append(f"{key}={text}")
    return " ".join(parts)


def _render_node(
    node: SpanNode, prefix: str, is_last: bool, is_root: bool,
    min_s: float, lines: List[str], name_width: int,
) -> None:
    if node.total_s < min_s:
        return
    if is_root:
        connector, child_prefix = "", ""
    else:
        connector = prefix + ("└─ " if is_last else "├─ ")
        child_prefix = prefix + ("   " if is_last else "│  ")
    label = connector + node.name
    attributes = _attribute_text(node.record)
    if attributes:
        label += "  " + attributes
    if len(label) > name_width:
        label = label[: name_width - 1] + "…"
    lines.append(
        f"{label:<{name_width}}  total {_format_seconds(node.total_s)}"
        f"  self {_format_seconds(node.self_s)}"
    )
    visible = [c for c in node.children if c.total_s >= min_s]
    hidden = len(node.children) - len(visible)
    for index, child in enumerate(visible):
        _render_node(
            child, child_prefix, index == len(visible) - 1, False,
            min_s, lines, name_width,
        )
    if hidden:
        lines.append(
            f"{child_prefix}   … {hidden} span(s) below --min-ms hidden"
        )


def render_trace_trees(
    path,
    trace_id: Optional[str] = None,
    min_ms: float = 0.0,
    name_width: int = 72,
) -> str:
    """Render every trace under ``path`` as an indented span tree.

    ``trace_id`` keeps only traces whose id starts with the given prefix;
    ``min_ms`` hides spans shorter than the threshold (with a count of
    what was hidden, so the tree never silently truncates).
    """
    spans = load_spans(path)
    trees = build_trees(spans)
    if trace_id:
        trees = [tree for tree in trees if tree.trace_id.startswith(trace_id)]
    if not trees:
        matched = f" matching {trace_id!r}" if trace_id else ""
        raise ValueError(f"no span records{matched} found under {path}")
    blocks = []
    for tree in trees:
        lines = [
            f"Trace {tree.trace_id} — {tree.span_count} span(s), "
            f"{tree.total_s:.3f}s total"
        ]
        for index, root in enumerate(tree.roots):
            _render_node(
                root, "", index == len(tree.roots) - 1, True,
                min_ms / 1e3, lines, name_width,
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def summarize_by_name(path) -> List[Dict[str, Union[str, int, float]]]:
    """Aggregate self/total seconds per span name (flat profile view)."""
    spans = load_spans(path)
    trees = build_trees(spans)
    totals: Dict[str, Dict[str, float]] = {}

    def visit(node: SpanNode) -> None:
        entry = totals.setdefault(
            node.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += node.total_s
        entry["self_s"] += node.self_s
        for child in node.children:
            visit(child)

    for tree in trees:
        for root in tree.roots:
            visit(root)
    return [
        {"name": name, **values}
        for name, values in sorted(
            totals.items(), key=lambda item: -item[1]["self_s"]
        )
    ]
