"""``repro.telemetry``: structured tracing and metrics for every layer.

The instrumentation plane of the reproduction — zero new dependencies,
two halves:

* :mod:`repro.telemetry.tracing` — a :class:`Tracer` producing nested
  spans (trace/span/parent ids, wall time, attributes) exported to an
  append-only JSONL event log with size-based rotation.  Disabled by
  default; enabled via ``--telemetry-dir`` / ``REPRO_TELEMETRY_DIR``.
  When disabled every instrumentation site costs one no-op call, so all
  simulation outputs stay bit-identical (property-tested).
* :mod:`repro.telemetry.metrics` — a process-wide registry of counters,
  gauges and fixed-bucket histograms (request latency, layers simulated,
  cache hits per tier, stall fractions) fed by the same code paths that
  maintain :class:`~repro.engine.EngineStats`, rendered in Prometheus
  text format or structured JSON by ``GET /v1/metrics``.

:mod:`repro.telemetry.schema` validates emitted JSONL records (the CI
telemetry smoke step runs it over a real run's log) and
:mod:`repro.telemetry.view` renders a recorded log as a span tree with
self/total times — the ``repro trace`` subcommand.

See ``docs/observability.md`` for the span model and metrics catalogue.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.tracing import Span, Tracer, configure, get_tracer, traced
from repro.telemetry.schema import TelemetryRecordError, validate_record

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetryRecordError",
    "Tracer",
    "configure",
    "get_registry",
    "get_tracer",
    "traced",
    "validate_record",
]
