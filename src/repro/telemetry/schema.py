"""Schema validation for telemetry JSONL records.

The event log holds three record types, discriminated by ``type``:

``span``
    One finished :class:`~repro.telemetry.tracing.Span` — identifiers,
    name, wall-clock start, duration and an attributes object.

``metrics``
    A point-in-time snapshot of a
    :class:`~repro.telemetry.metrics.MetricsRegistry` (the structured
    JSON variant ``/v1/metrics?format=json`` serves).

``job``
    One asynchronous-job audit event from the :class:`~repro.jobs.JobStore`
    audit log (``repro serve --audit-log``): a submission (carrying the
    full request document) or a state transition.

:func:`validate_record` raises :class:`TelemetryRecordError` naming the
offending field; :func:`validate_file` walks a whole segment (or every
segment in a telemetry directory) and is what the CI telemetry smoke
step runs over a real run's log, so emitted records can never drift from
what ``repro trace`` and external consumers parse.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

#: Field name -> accepted types for ``span`` records.
_SPAN_FIELDS = {
    "trace_id": str,
    "span_id": str,
    "name": str,
    "start_s": (int, float),
    "duration_s": (int, float),
    "attributes": dict,
    "pid": int,
    "thread": str,
}

_METRICS_FIELDS = {
    "time_s": (int, float),
    "pid": int,
    "metrics": dict,
}

#: Required fields of ``job`` audit records (JobStore audit log).
_JOB_FIELDS = {
    "time_s": (int, float),
    "pid": int,
    "job_id": str,
    "event": str,
    "state": str,
    "kind": str,
}

#: Optional ``job`` fields -> accepted types (beyond the required set).
_JOB_OPTIONAL_FIELDS = {
    "from": str,
    "request": dict,
    "error": str,
}


class TelemetryRecordError(ValueError):
    """An invalid telemetry record; ``field`` names the offender."""

    def __init__(self, message: str, field: str):
        super().__init__(message)
        self.field = field


def _require(record: Dict, fields: Dict) -> None:
    for field, types in fields.items():
        if field not in record:
            raise TelemetryRecordError(f"missing field {field!r}", field)
        value = record[field]
        if isinstance(value, bool) or not isinstance(value, types):
            raise TelemetryRecordError(
                f"field {field!r} has type {type(value).__name__}, "
                f"expected {types}", field,
            )


def validate_record(record: Dict) -> str:
    """Validate one parsed record; returns its type (``span``/``metrics``)."""
    if not isinstance(record, dict):
        raise TelemetryRecordError(
            f"record must be a JSON object, got {type(record).__name__}", "record"
        )
    kind = record.get("type")
    if kind == "span":
        _require(record, _SPAN_FIELDS)
        parent = record.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            raise TelemetryRecordError(
                "field 'parent_id' must be a string or null", "parent_id"
            )
        if record["duration_s"] < 0:
            raise TelemetryRecordError(
                "field 'duration_s' must be non-negative", "duration_s"
            )
        if not record["trace_id"] or not record["span_id"]:
            raise TelemetryRecordError(
                "trace_id and span_id must be non-empty", "trace_id"
            )
    elif kind == "metrics":
        _require(record, _METRICS_FIELDS)
    elif kind == "job":
        _require(record, _JOB_FIELDS)
        for field, types in _JOB_OPTIONAL_FIELDS.items():
            value = record.get(field)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, types)
            ):
                raise TelemetryRecordError(
                    f"field {field!r} has type {type(value).__name__}, "
                    f"expected {types}", field,
                )
        if not record["job_id"] or not record["event"] or not record["state"]:
            raise TelemetryRecordError(
                "job_id, event and state must be non-empty", "job_id"
            )
    else:
        raise TelemetryRecordError(
            f"unknown record type {kind!r} (expected 'span', 'metrics' or 'job')",
            "type",
        )
    return kind


def iter_records(path: Union[str, Path]) -> Iterator[Tuple[Path, int, Dict]]:
    """Yield ``(file, line_number, parsed record)`` from a file or directory.

    A directory is read as every ``*.jsonl`` segment in name order —
    rotation order, since segments are numbered.
    """
    path = Path(path)
    files: List[Path]
    if path.is_dir():
        files = sorted(path.glob("*.jsonl"))
        if not files:
            raise FileNotFoundError(f"no .jsonl segments under {path}")
    else:
        files = [path]
    for file in files:
        with open(file, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise TelemetryRecordError(
                        f"{file}:{number}: invalid JSON: {exc}", "record"
                    ) from exc
                yield file, number, record


def validate_file(path: Union[str, Path]) -> Dict[str, int]:
    """Validate every record under ``path``; returns counts per type.

    Raises :class:`TelemetryRecordError` (with file:line context) on the
    first invalid record.
    """
    counts: Dict[str, int] = {}
    for file, number, record in iter_records(path):
        try:
            kind = validate_record(record)
        except TelemetryRecordError as exc:
            raise TelemetryRecordError(
                f"{file}:{number}: {exc}", exc.field
            ) from exc
        counts[kind] = counts.get(kind, 0) + 1
    return counts
