"""Structured tracing: nested spans exported to a rotating JSONL log.

A :class:`Tracer` produces :class:`Span` records — each with a
``trace_id`` shared by every span of one logical operation, its own
``span_id``, the ``parent_id`` of the enclosing span (``None`` for
roots), wall-clock start/duration and free-form attributes.  Nesting is
tracked per thread, so a multi-threaded server interleaving requests
never cross-links spans.

Two usage styles, both no-ops when tracing is disabled::

    from repro.telemetry import get_tracer, traced

    with get_tracer().span("engine.simulate_layers", backend="vectorized") as span:
        ...
        span.set(layers=12)

    @traced("study.point")
    def measure(point): ...

The process-wide tracer is disabled unless ``REPRO_TELEMETRY_DIR`` is
set (or :func:`configure` is called with a directory, which is what the
``--telemetry-dir`` CLI flag does).  The disabled fast path allocates
nothing and writes nothing — one shared no-op span object is returned —
so instrumented code paths stay bit-identical to uninstrumented ones.

Enabled tracers append one JSON object per finished span to
``<dir>/events-00001.jsonl``; when a segment exceeds ``max_bytes`` the
writer rolls to the next numbered segment and deletes the oldest beyond
``max_files``.  Records never rewrite — the log is append-only, safe to
tail — and :mod:`repro.telemetry.view` (the ``repro trace`` subcommand)
renders any segment back into a span tree.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Dict, Optional

#: Default rotation policy: roll segments at 32 MiB, keep the last 8.
DEFAULT_MAX_BYTES = 32 * 1024 * 1024
DEFAULT_MAX_FILES = 8

#: Environment variable enabling the process-wide tracer.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"


def _new_id(bits: int = 64) -> str:
    """A random lowercase-hex identifier (64-bit spans, 128-bit traces)."""
    return uuid.uuid4().hex[: bits // 4]


class JsonlWriter:
    """Append-only, size-rotated JSONL segment writer (thread-safe).

    Segments are named ``<prefix>-00001.jsonl`` and numbered forever
    upward; writing resumes into the highest existing segment, so
    restarted processes append rather than clobber.
    """

    def __init__(
        self,
        directory,
        prefix: str = "events",
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
    ):
        self.directory = Path(directory)
        self.prefix = prefix
        self.max_bytes = int(max_bytes)
        self.max_files = max(1, int(max_files))
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        existing = self._segments()
        self._index = self._segment_number(existing[-1]) if existing else 1
        self._handle = None
        self.records_written = 0

    # ------------------------------------------------------------------
    def _segments(self):
        return sorted(self.directory.glob(f"{self.prefix}-*.jsonl"))

    @staticmethod
    def _segment_number(path: Path) -> int:
        try:
            return int(path.stem.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return 1

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{self.prefix}-{index:05d}.jsonl"

    @property
    def current_path(self) -> Path:
        """The segment the next record will land in (for tailing)."""
        return self._segment_path(self._index)

    def write(self, record: Dict) -> None:
        """Append one record, rotating segments past ``max_bytes``.

        The current segment's handle is kept open between records (each
        record is flushed, so the log stays tailable); rotation closes
        it and opens the next numbered segment.
        """
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._handle is None:
                self._handle = open(self._segment_path(self._index), "ab")
            size = self._handle.tell()
            if size and size + len(data) > self.max_bytes:
                self._handle.close()
                self._index += 1
                self._prune()
                self._handle = open(self._segment_path(self._index), "ab")
            self._handle.write(data)
            self._handle.flush()
            self.records_written += 1

    def close(self) -> None:
        """Close the current segment handle (safe to call repeatedly)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def _prune(self) -> None:
        segments = self._segments()
        for stale in segments[: max(0, len(segments) - self.max_files + 1)]:
            try:
                stale.unlink()
            except OSError:
                pass


class _NoopSpan:
    """The shared span returned while tracing is disabled: does nothing."""

    __slots__ = ()

    def set(self, **attributes) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed operation; export happens on context-manager exit."""

    __slots__ = (
        "tracer", "name", "trace_id", "span_id", "parent_id",
        "start_s", "duration_s", "attributes", "_perf_start",
    )

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: str, parent_id: Optional[str], attributes: Dict):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id(64)
        self.parent_id = parent_id
        self.start_s = time.time()
        self.duration_s = 0.0
        self.attributes = attributes
        self._perf_start = time.perf_counter()

    def set(self, **attributes) -> "Span":
        """Merge attributes (``None`` values are dropped, not recorded)."""
        for key, value in attributes.items():
            if value is not None:
                self.attributes[key] = value
        return self

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._perf_start
        if exc is not None:
            self.attributes["error"] = f"{type(exc).__name__}: {exc}"
        self.tracer._pop(self)
        self.tracer._export(self)
        return False

    def to_record(self) -> Dict:
        """The JSONL document for this span (validated by the schema)."""
        return {
            "type": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 9),
            "attributes": self.attributes,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }


class Tracer:
    """Produces spans and exports them to a JSONL event log.

    ``directory=None`` builds a *disabled* tracer: :meth:`span` returns
    the shared no-op span and nothing is ever written — the fast path
    every instrumentation site takes by default.
    """

    def __init__(
        self,
        directory=None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
    ):
        self.directory = str(directory) if directory else None
        self.writer = (
            JsonlWriter(directory, max_bytes=max_bytes, max_files=max_files)
            if directory else None
        )
        self._local = threading.local()
        self.spans_emitted = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.writer is not None

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:   # exited out of order; drop it anyway
            stack.remove(span)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread (``None`` at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes):
        """Open a span as a context manager; no-op when disabled."""
        if self.writer is None:
            return NOOP_SPAN
        parent = self.current_span()
        return Span(
            self, name,
            trace_id=parent.trace_id if parent else _new_id(128),
            parent_id=parent.span_id if parent else None,
            attributes={k: v for k, v in attributes.items() if v is not None},
        )

    def _export(self, span: Span) -> None:
        if self.writer is not None:
            self.writer.write(span.to_record())
            self.spans_emitted += 1

    def emit_metrics(self, registry) -> None:
        """Append one metrics-snapshot record (no-op when disabled)."""
        if self.writer is None:
            return
        self.writer.write({
            "type": "metrics",
            "time_s": round(time.time(), 6),
            "pid": os.getpid(),
            "metrics": registry.as_dict(),
        })

    def close(self) -> None:
        """Release the writer's file handle (the tracer stays usable)."""
        if self.writer is not None:
            self.writer.close()

    def describe(self) -> Dict:
        """Status payload for ``/v1/health`` and session stats."""
        return {
            "enabled": self.enabled,
            "dir": self.directory,
            "spans_emitted": self.spans_emitted,
        }


# ----------------------------------------------------------------------
# the process-wide tracer

_GLOBAL_LOCK = threading.Lock()
_GLOBAL_TRACER: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-wide tracer (lazily built from ``REPRO_TELEMETRY_DIR``)."""
    global _GLOBAL_TRACER
    tracer = _GLOBAL_TRACER
    if tracer is None:
        with _GLOBAL_LOCK:
            if _GLOBAL_TRACER is None:
                _GLOBAL_TRACER = Tracer(os.environ.get(TELEMETRY_DIR_ENV) or None)
            tracer = _GLOBAL_TRACER
    return tracer


def configure(
    directory=None,
    max_bytes: int = DEFAULT_MAX_BYTES,
    max_files: int = DEFAULT_MAX_FILES,
) -> Tracer:
    """Replace the process-wide tracer (``directory=None`` disables it).

    Reconfiguring with the directory the current tracer already writes
    to keeps it — span counters and rotation state survive, and every
    :class:`repro.api.Session` built in one process shares one tracer.
    """
    global _GLOBAL_TRACER
    with _GLOBAL_LOCK:
        current = _GLOBAL_TRACER
        target = str(directory) if directory else None
        if current is not None and current.directory == target:
            return current
        if current is not None:
            current.close()
        _GLOBAL_TRACER = Tracer(
            directory, max_bytes=max_bytes, max_files=max_files
        )
        return _GLOBAL_TRACER


def traced(name: Optional[str] = None, **attributes):
    """Decorator form: run the wrapped callable inside a span.

    The span name defaults to the function's qualified name; the tracer
    is resolved at call time, so functions decorated before telemetry is
    configured still trace once it is enabled.
    """

    def decorate(function):
        span_name = name or function.__qualname__

        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            with get_tracer().span(span_name, **attributes):
                return function(*args, **kwargs)

        return wrapper

    return decorate
