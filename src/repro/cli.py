"""Command-line interface for the TensorDash reproduction.

Three subcommands cover the common workflows without writing any Python:

``list-models``
    Show the registered workloads (the paper's model list).

``simulate``
    Train one workload briefly, trace it and report TensorDash's
    per-operation speedups, potential speedups and energy efficiency.

``sweep``
    Re-simulate one traced workload across a configuration sweep
    (tile rows, staging depth or datatype).

Examples
--------
::

    python -m repro list-models
    python -m repro simulate alexnet --epochs 2
    python -m repro sweep squeezenet --knob rows --values 1,4,16
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.reporting import format_table
from repro.core.config import AcceleratorConfig
from repro.models.registry import (
    MODEL_REGISTRY,
    available_models,
    build_dataset,
    build_model,
    build_pruning_hook,
)
from repro.nn.optim import MomentumSGD
from repro.simulation.runner import ExperimentRunner
from repro.training.trainer import Trainer, TrainingConfig


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TensorDash (MICRO 2020) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-models", help="list the registered workloads")

    simulate = subparsers.add_parser(
        "simulate", help="train, trace and simulate one workload"
    )
    simulate.add_argument("model", choices=available_models())
    simulate.add_argument("--epochs", type=int, default=2)
    simulate.add_argument("--batch-size", type=int, default=8)
    simulate.add_argument("--batches-per-epoch", type=int, default=2)
    simulate.add_argument("--max-groups", type=int, default=64,
                          help="work groups sampled per layer per operation")
    simulate.add_argument("--datatype", choices=("fp32", "bfloat16"), default="fp32")

    sweep = subparsers.add_parser(
        "sweep", help="sweep one design knob over a traced workload"
    )
    sweep.add_argument("model", choices=available_models())
    sweep.add_argument("--knob", choices=("rows", "staging", "datatype"), default="rows")
    sweep.add_argument("--values", default="1,4,8,16",
                       help="comma-separated knob values")
    sweep.add_argument("--epochs", type=int, default=2)
    sweep.add_argument("--max-groups", type=int, default=48)
    return parser


def _train_and_trace(model_name: str, epochs: int, batch_size: int, batches: int):
    model = build_model(model_name)
    dataset = build_dataset(model_name)
    optimizer = MomentumSGD(model.parameters(), lr=0.01)
    pruning_hook = build_pruning_hook(model_name, optimizer)
    trainer = Trainer(
        model,
        optimizer,
        config=TrainingConfig(
            epochs=epochs, batches_per_epoch=batches, batch_size=batch_size
        ),
        pruning_hook=pruning_hook,
    )
    return trainer.train(dataset, model_name=model_name)


def _command_list_models() -> int:
    rows = [
        [name, spec.pruning or "-", spec.description]
        for name, spec in sorted(MODEL_REGISTRY.items())
    ]
    print(format_table("Registered workloads", ["model", "pruning", "description"], rows))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    config = AcceleratorConfig().with_pe(datatype=args.datatype)
    print(f"Accelerator: {config.describe()}")
    print(f"Training {args.model} for {args.epochs} epoch(s)...")
    trace = _train_and_trace(args.model, args.epochs, args.batch_size, args.batches_per_epoch)
    runner = ExperimentRunner(config, max_groups=args.max_groups)
    result = runner.run_final_epoch(trace)
    potentials = ExperimentRunner.potential_speedups_from_trace(trace.final_epoch())
    speedups = result.per_operation_speedups()
    rows = [
        [op, potentials.get(op, float("nan")), speedups[op]]
        for op in ("AxW", "AxG", "WxG", "Total")
    ]
    print(format_table(
        f"{args.model}: TensorDash vs baseline",
        ["operation", "potential", "speedup"],
        rows,
    ))
    report = runner.energy_report(result)
    print(f"Core energy efficiency:    {report.core_efficiency:.3f}x")
    print(f"Overall energy efficiency: {report.overall_efficiency:.3f}x")
    return 0


def _config_for_knob(knob: str, value: str) -> AcceleratorConfig:
    base = AcceleratorConfig()
    if knob == "rows":
        return base.with_tile(rows=int(value))
    if knob == "staging":
        return base.with_pe(staging_depth=int(value))
    if knob == "datatype":
        return base.with_pe(datatype=value)
    raise ValueError(f"unknown knob {knob!r}")


def _command_sweep(args: argparse.Namespace) -> int:
    values = [v.strip() for v in args.values.split(",") if v.strip()]
    print(f"Training {args.model} once; sweeping {args.knob} over {values}...")
    trace = _train_and_trace(args.model, args.epochs, batch_size=8, batches=2)
    rows = []
    for value in values:
        config = _config_for_knob(args.knob, value)
        runner = ExperimentRunner(config, max_groups=args.max_groups)
        result = runner.run_final_epoch(trace)
        report = runner.energy_report(result)
        rows.append([f"{args.knob}={value}", result.speedup(),
                     report.core_efficiency, report.overall_efficiency])
    print(format_table(
        f"{args.model}: {args.knob} sweep",
        ["configuration", "speedup", "core energy eff.", "overall energy eff."],
        rows,
    ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-models":
        return _command_list_models()
    if args.command == "simulate":
        return _command_simulate(args)
    if args.command == "sweep":
        return _command_sweep(args)
    parser.error(f"unknown command {args.command!r}")
    return 2
