"""Command-line interface for the TensorDash reproduction.

Every subcommand is a thin client of the unified programmatic API
(:mod:`repro.api`): it builds a typed request, submits it to a
:class:`~repro.api.Session` — which owns the one simulation engine, the
trace cache and the result memo — and formats the returned
:class:`~repro.api.schema.ApiResult`.  The same requests can be POSTed as
JSON to a running ``repro serve``.

``list-models``
    Show the registered workloads (the paper's model list).

``simulate``
    Train one workload briefly, trace it and report TensorDash's
    per-operation speedups, potential speedups and energy efficiency.
    ``--format json`` emits the full result envelope instead.

``roofline``
    Simulate one workload under a *finite* memory hierarchy (Table 2's
    4-channel LPDDR4-3200 by default, or ``--dram-bandwidth-gbps`` /
    ``--sram-kb`` overrides) and print the roofline: per-layer
    operational intensity, attainable vs achieved throughput, stall
    fractions and compute/memory-bound verdicts, plus the speedup with
    and without memory stalls.  ``--format json`` supported.

``scale``
    Partition one workload across N simulated accelerator devices —
    ``--partition data`` (batch sharding + weight-gradient ring
    all-reduce) or ``--partition pipeline`` (MAC-balanced layer stages
    exchanging boundary activations) — under a configurable
    device-to-device link (``--link-gbps`` / ``--hop-latency-cycles``),
    and report per-device cycles, communication stalls and the scaling
    efficiency against ideal linear.  ``--format json`` supported.

``sweep``
    Re-simulate one traced workload across a one-knob configuration
    sweep (a one-knob ``explore`` study under the hood).  Scaling knobs
    (``num_devices``, ``partition``, ``link_gbps``) sweep too — the
    quickest way to a scaling-efficiency curve.

``explore``
    Run a declarative design-space study from a JSON spec: accelerator
    knobs x workloads x sparsity scenarios, with Pareto-frontier
    analysis over (speedup, energy efficiency, area overhead) and a
    resumable on-disk manifest (``--study-dir`` + ``--resume``).

``diff``
    Compare two study manifests (or two sets of ``BENCH_*.json``
    trajectory files): per-point metric deltas with configurable
    tolerance, Pareto-frontier membership changes, "which knob moved
    this" attribution, and improved/held/regressed classification of
    watched benchmark gates.  ``--fail-on regressed`` exits nonzero on
    regressions — the CI ``regression-watch`` gate.  Sides are study
    directories, ``manifest.json`` / ``manifest.segment.jsonl`` files,
    ``repro explore --format json`` documents, BENCH files, or
    directories of BENCH files; the mode is auto-detected.

``serve``
    Start the batch simulation service: concurrent clients POST request
    documents to ``/v1/simulate`` etc. and share one warm session, so a
    workload any client already ran returns as pure cache hits.
    ``POST /v1/jobs`` runs any request asynchronously on a worker pool
    (``--job-workers``) with SSE progress streams, cooperative
    cancellation and TTL result retention (``--job-retention``);
    ``--audit-log`` records every job state transition.
    ``GET /v1/metrics`` serves the process metrics registry in
    Prometheus text format; ``--access-log`` appends one structured
    JSON line per response.  SIGTERM/SIGINT shut down gracefully,
    draining running jobs up to ``--drain-seconds``.

``jobs``
    Client for a running server's asynchronous job API: ``jobs list``
    tabulates the store, ``jobs show ID`` prints one record, ``jobs
    watch ID`` follows the job's Server-Sent-Events progress stream
    until it finishes, and ``jobs cancel ID`` requests cooperative
    cancellation.  ``--url`` points them at the server (default
    ``http://127.0.0.1:8000``).  See ``docs/jobs.md``.

``trace``
    Render the span tree of a recorded telemetry run: point it at a
    JSONL event log (or a whole ``--telemetry-dir`` directory) and it
    prints every trace's nested spans with total and self times — the
    profiler view from ``docs/performance.md``, for any run that was
    recorded, not just the benchmark harness.

Telemetry: every simulating subcommand accepts ``--telemetry-dir DIR``
(or ``REPRO_TELEMETRY_DIR``), which enables the structured tracer in
:mod:`repro.telemetry` — session submits, engine batches, cache lookups,
study points and per-device scale dispatches are recorded as nested
spans in an append-only JSONL log under DIR, ready for ``repro trace``.
Disabled (the default), telemetry costs nothing and outputs are
bit-identical.

Every simulating subcommand executes through the pluggable simulation
engine (:mod:`repro.engine`): ``--backend`` selects the execution strategy
(``reference`` oracle loop, numpy ``vectorized`` fast path, or a
``parallel`` multiprocessing pool sized by ``--jobs``), all of which are
bit-identical; ``--cache-dir`` enables the on-disk result cache so
repeated runs, sweeps and resumed studies skip already-simulated layers.
Unset flags fall back to the ``REPRO_BACKEND`` / ``REPRO_JOBS`` /
``REPRO_CACHE_DIR`` environment variables (one shared resolution helper,
:func:`repro.engine.resolve_engine_options`).  Cache entries are
content-addressed by (accelerator-config hash, layer-trace hash, backend
name): changing any configuration knob, the traced operands (e.g. via
``--seed`` or ``--epochs``) or the backend simply produces new keys, so
stale results are never returned — old entries are inert files and the
cache directory can be deleted at any time to reclaim space.

Examples
--------
::

    python -m repro --version
    python -m repro list-models
    python -m repro simulate alexnet --epochs 2
    python -m repro simulate vgg16 --backend parallel --jobs 8
    python -m repro simulate snli --format json
    python -m repro roofline snli --dram-bandwidth-gbps 4
    python -m repro scale resnet50 --devices 8 --partition data --trace-max-batch 8
    python -m repro sweep snli --knob num_devices --values 1,2,4,8
    python -m repro sweep snli --knob dram_bandwidth_gbps --values 4,12.8,51.2
    python -m repro sweep squeezenet --knob rows --values 1,4,16 \\
        --cache-dir ~/.cache/repro   # second run: zero re-simulations
    python -m repro explore examples/specs/dse_small.json \\
        --study-dir /tmp/study       # kill it, then add --resume
    python -m repro serve --port 8000
    curl -X POST http://127.0.0.1:8000/v1/simulate \\
        -d '{"model": "snli", "epochs": 1}'
    curl -X POST http://127.0.0.1:8000/v1/jobs \\
        -d '{"kind": "simulate", "model": "snli", "epochs": 1}'
    python -m repro jobs list
    python -m repro jobs watch a1b2c3d4e5f6
    python -m repro simulate snli --telemetry-dir /tmp/repro-tele
    python -m repro trace /tmp/repro-tele --min-ms 1
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional, Tuple

from repro._version import __version__
from repro.analysis.reporting import format_engine_stats, format_table
from repro.engine import available_backends
from repro.explore.spec import KNOBS, SCALE_KNOBS
from repro.models.registry import MODEL_REGISTRY, available_models


def _add_engine_arguments(
    command: argparse.ArgumentParser, seed_default: Optional[int] = 0
) -> None:
    """Engine flags shared by every simulating subcommand."""
    command.add_argument(
        "--backend", choices=available_backends(), default=None,
        help="execution strategy: 'reference' is the readable bit-exact "
             "oracle, 'vectorized' batches all work groups through numpy, "
             "'parallel' shards traced layers across worker processes; "
             "all three produce identical results "
             "(default: $REPRO_BACKEND, else vectorized)")
    command.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for --backend parallel "
             "(default: $REPRO_JOBS, else CPU count capped at 8)")
    command.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk result cache; layers already "
             "simulated under the same (config, trace, backend) key are "
             "loaded instead of re-simulated.  Keys are content hashes, so "
             "changing the config, seed/trace or backend invalidates "
             "entries automatically; delete the directory to reclaim space "
             "(default: $REPRO_CACHE_DIR, else disabled)")
    command.add_argument(
        "--shared-dir", default=None,
        help="directory for the cross-process shared memo tier; point "
             "several concurrent runs or serve workers (typically via "
             "tmpfs) at the same directory and each re-simulates only "
             "what no sibling finished first "
             "(default: $REPRO_SHARED_CACHE_DIR, else disabled)")
    command.add_argument(
        "--telemetry-dir", default=None,
        help="directory for the structured telemetry event log: nested "
             "spans (session submits, engine batches, cache lookups, "
             "study points, per-device dispatches) and metrics snapshots "
             "as rotating JSONL, rendered later by 'repro trace' "
             "(default: $REPRO_TELEMETRY_DIR, else disabled)")
    if seed_default is None:
        seed_help = ("model/dataset seed; overrides the spec's 'seed' field "
                     "when given (default: use the spec's seed)")
    else:
        seed_help = ("model/dataset seed; fixed by default so repeated runs "
                     "produce identical traces (and therefore cache hits)")
    command.add_argument("--seed", type=int, default=seed_default, help=seed_help)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TensorDash (MICRO 2020) reproduction command-line interface",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-models", help="list the registered workloads")

    simulate = subparsers.add_parser(
        "simulate", help="train, trace and simulate one workload"
    )
    simulate.add_argument("model", choices=available_models())
    simulate.add_argument("--epochs", type=int, default=2)
    simulate.add_argument("--batch-size", type=int, default=8)
    simulate.add_argument("--batches-per-epoch", type=int, default=2)
    simulate.add_argument("--max-groups", type=int, default=64,
                          help="work groups sampled per layer per operation")
    simulate.add_argument("--datatype", choices=("fp32", "bfloat16"), default="fp32")
    simulate.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format: human-readable tables, or the JSON result "
             "envelope the programmatic API returns (default: table)")
    _add_engine_arguments(simulate)

    roofline = subparsers.add_parser(
        "roofline",
        help="simulate one workload under a bandwidth-constrained memory "
             "hierarchy and print its roofline (intensity, ridge point, "
             "stalls, compute/memory-bound verdicts)",
    )
    roofline.add_argument("model", choices=available_models())
    roofline.add_argument("--epochs", type=int, default=2)
    roofline.add_argument("--batch-size", type=int, default=8)
    roofline.add_argument("--batches-per-epoch", type=int, default=2)
    roofline.add_argument("--max-groups", type=int, default=64,
                          help="work groups sampled per layer per operation")
    roofline.add_argument("--datatype", choices=("fp32", "bfloat16"), default="fp32")
    roofline.add_argument(
        "--dram-bandwidth-gbps", type=float, default=None,
        help="sustainable off-chip bandwidth in GB/s (default: the Table 2 "
             "machine's peak, 4-channel LPDDR4-3200 = 51.2 GB/s)")
    roofline.add_argument(
        "--sram-bandwidth-gbps", type=float, default=None,
        help="aggregate on-chip AM/BM/CM bandwidth in GB/s "
             "(default: unlimited)")
    roofline.add_argument(
        "--sram-kb", type=int, default=None,
        help="total on-chip capacity in KB; working sets that overflow it "
             "are re-fetched from DRAM (default: unlimited)")
    roofline.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format: human-readable tables, or the JSON result "
             "envelope the programmatic API returns (default: table)")
    _add_engine_arguments(roofline)

    scale = subparsers.add_parser(
        "scale",
        help="partition one workload across N simulated devices (data or "
             "pipeline parallel) and report per-device cycles, "
             "communication stalls and scaling efficiency",
    )
    scale.add_argument("model", choices=available_models())
    scale.add_argument("--devices", type=int, default=2,
                       help="number of simulated accelerator devices "
                            "(default: 2)")
    scale.add_argument("--partition", choices=("data", "pipeline"),
                       default="data",
                       help="partitioning strategy: 'data' shards the batch "
                            "and all-reduces weight gradients, 'pipeline' "
                            "cuts the layers into MAC-balanced stages "
                            "(default: data)")
    scale.add_argument(
        "--link-gbps", default="25",
        help="device-to-device link bandwidth in GB/s, or 'unbounded' for "
             "an infinite link (default: 25)")
    scale.add_argument(
        "--hop-latency-cycles", type=int, default=500,
        help="fixed per-hop transfer latency in accelerator cycles "
             "(default: 500, i.e. 1 us at 500 MHz)")
    scale.add_argument(
        "--trace-max-batch", type=int, default=None,
        help="traced samples kept per convolutional layer; raise to at "
             "least --devices so data-parallel shards stay balanced "
             "(default: the trainer's cap of 4, matching 'simulate')")
    scale.add_argument("--epochs", type=int, default=2)
    scale.add_argument("--batch-size", type=int, default=8)
    scale.add_argument("--batches-per-epoch", type=int, default=2)
    scale.add_argument("--max-groups", type=int, default=64,
                       help="work groups sampled per layer per operation")
    scale.add_argument("--datatype", choices=("fp32", "bfloat16"), default="fp32")
    scale.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format: human-readable tables, or the JSON result "
             "envelope the programmatic API returns (default: table)")
    _add_engine_arguments(scale)

    sweep = subparsers.add_parser(
        "sweep",
        help="sweep one design knob over a traced workload "
             "(a one-knob 'explore' study)",
    )
    sweep.add_argument("model", choices=available_models())
    sweep.add_argument("--knob", choices=sorted(KNOBS) + sorted(SCALE_KNOBS),
                       default="rows")
    sweep.add_argument("--values", default="1,4,8,16",
                       help="comma-separated knob values")
    sweep.add_argument("--epochs", type=int, default=2)
    sweep.add_argument("--max-groups", type=int, default=48)
    sweep.add_argument(
        "--trace-max-batch", type=int, default=None,
        help="traced samples kept per convolutional layer; raise to the "
             "largest value when sweeping num_devices (default: 4)")
    sweep.add_argument(
        "--study-jobs", type=int, default=None,
        help="worker processes executing sweep points in parallel, each "
             "with its own engine on the sweep's cache stack "
             "(default: $REPRO_STUDY_JOBS, else serial)")
    _add_engine_arguments(sweep)

    explore = subparsers.add_parser(
        "explore",
        help="run a declarative design-space study from a JSON spec, "
             "with Pareto-frontier analysis and resumable checkpoints",
    )
    explore.add_argument("spec", help="path to a StudySpec JSON file")
    explore.add_argument(
        "--study-dir", default=None,
        help="directory for the study manifest and (by default) the result "
             "cache; required for --resume")
    explore.add_argument(
        "--resume", action="store_true",
        help="skip points already completed in the --study-dir manifest; "
             "layers simulated before an interruption return as cache hits")
    explore.add_argument(
        "--sample", type=int, default=None,
        help="randomly sample N points from the space instead of running "
             "the full cartesian product (seeded by --seed)")
    explore.add_argument(
        "--objectives", default=None,
        help="comma-separated frontier objectives overriding the spec's, "
             "e.g. 'speedup,area_overhead' or 'speedup:max,area_overhead:min'")
    explore.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="report format (default: table)")
    explore.add_argument(
        "--output", default=None,
        help="write the report to this file instead of stdout")
    explore.add_argument(
        "--study-jobs", type=int, default=None,
        help="worker processes executing study points in parallel, each "
             "with its own engine on the study's cache stack; checkpoints "
             "and results are identical to a serial run "
             "(default: $REPRO_STUDY_JOBS, else serial)")
    _add_engine_arguments(explore, seed_default=None)

    diff = subparsers.add_parser(
        "diff",
        help="compare two study manifests or BENCH_*.json sets: metric "
             "deltas, frontier changes, knob attribution, regression watch",
    )
    diff.add_argument(
        "a", help="baseline: a study dir, manifest/study-document JSON, "
                  "manifest segment .jsonl, BENCH_*.json file, or a "
                  "directory of BENCH_*.json files")
    diff.add_argument("b", help="candidate, same accepted forms as A")
    diff.add_argument(
        "--mode", choices=("auto", "study", "bench"), default="auto",
        help="comparison mode; 'auto' detects BENCH files vs study "
             "artifacts from the paths' contents (default: auto)")
    diff.add_argument(
        "--tolerance", type=float, default=None,
        help="relative tolerance below which a metric counts as held "
             "(default: 0 for study mode — any change reports; 0.25 for "
             "bench mode's informational timing metrics)")
    diff.add_argument(
        "--ignore", default=None,
        help="comma-separated metric names treated as noise and dropped "
             "before diffing (study mode)")
    diff.add_argument(
        "--objectives", default=None,
        help="comma-separated frontier objectives overriding the specs', "
             "e.g. 'speedup,area_overhead:min' (study mode)")
    diff.add_argument(
        "--format", choices=("table", "json", "markdown"), default="table",
        help="report format (default: table)")
    diff.add_argument(
        "--fail-on", choices=("regressed", "changed"), default=None,
        help="exit 1 when the diff contains any entry of this class "
             "(the CI regression gate)")
    _add_engine_arguments(diff, seed_default=None)

    serve = subparsers.add_parser(
        "serve",
        help="start the batch simulation service: POST request JSON to "
             "/v1/simulate|roofline|sweep|explore; concurrent clients "
             "share one warm engine cache",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port to listen on; 0 picks a free port "
                            "(default: 8000)")
    serve.add_argument("--study-root", default=None,
                       help="directory under which POSTed explore requests "
                            "may place their study_dir; without it, "
                            "client-supplied study_dir paths are refused "
                            "(they create directories and write files)")
    serve.add_argument("--access-log", default=None,
                       help="append one structured JSON line per HTTP "
                            "response (method, path, status, duration, "
                            "sizes) to this file; off by default")
    serve.add_argument(
        "--study-jobs", type=int, default=None,
        help="default worker processes for POSTed sweep/explore studies; "
             "per-request study_jobs fields override it "
             "(default: $REPRO_STUDY_JOBS, else serial)")
    serve.add_argument(
        "--job-workers", type=int, default=2,
        help="worker threads executing asynchronous /v1/jobs submissions "
             "(default: 2)")
    serve.add_argument(
        "--job-retention", type=float, default=3600.0,
        help="seconds a finished job's record and result stay queryable "
             "before eviction; 0 keeps them forever (default: 3600)")
    serve.add_argument(
        "--audit-log", default=None,
        help="append one structured JSON line per job submission and "
             "state transition to this file (validated by "
             "repro.telemetry.schema); off by default")
    serve.add_argument(
        "--max-body-mb", type=float, default=8.0,
        help="largest accepted request body in MiB; bigger bodies are "
             "refused with HTTP 413 (default: 8)")
    serve.add_argument(
        "--drain-seconds", type=float, default=10.0,
        help="on SIGTERM/SIGINT, seconds to wait for running jobs to "
             "finish before exiting anyway (default: 10)")
    _add_engine_arguments(serve)

    jobs = subparsers.add_parser(
        "jobs",
        help="inspect and control a running server's asynchronous jobs "
             "(list, show, watch the SSE progress stream, cancel)",
    )
    jobs.add_argument(
        "--url", default="http://127.0.0.1:8000",
        help="base URL of the repro serve instance "
             "(default: http://127.0.0.1:8000)")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)
    jobs_list = jobs_sub.add_parser("list", help="list the server's jobs")
    jobs_list.add_argument(
        "--state", default=None,
        choices=("queued", "running", "succeeded", "failed", "cancelled"),
        help="only jobs currently in this state")
    jobs_list.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)")
    jobs_show = jobs_sub.add_parser("show", help="print one job record")
    jobs_show.add_argument("job_id")
    jobs_watch = jobs_sub.add_parser(
        "watch",
        help="stream a job's progress events (SSE) until it finishes")
    jobs_watch.add_argument("job_id")
    jobs_watch.add_argument(
        "--since", type=int, default=0,
        help="replay only events after this sequence number (default: all)")
    jobs_cancel = jobs_sub.add_parser(
        "cancel", help="request cooperative cancellation of a job")
    jobs_cancel.add_argument("job_id")

    trace = subparsers.add_parser(
        "trace",
        help="render the span tree of a recorded telemetry run "
             "(self/total times per span, like a profiler)",
    )
    trace.add_argument(
        "log",
        help="a telemetry JSONL event log, or a --telemetry-dir directory "
             "of rotated segments")
    trace.add_argument(
        "--trace-id", default=None,
        help="render only traces whose id starts with this prefix")
    trace.add_argument(
        "--min-ms", type=float, default=0.0,
        help="hide spans shorter than this many milliseconds "
             "(hidden spans are counted, never silently dropped)")
    trace.add_argument(
        "--summary", action="store_true",
        help="also print the flat per-span-name profile "
             "(count, total, self), heaviest self time first")
    return parser


class CliError(Exception):
    """A user-input problem reported as a usage error (no traceback)."""


def _session_for(args: argparse.Namespace):
    """The one :class:`Session` a CLI invocation drives (env fallbacks in)."""
    from repro.api.session import Session

    return Session(
        backend=args.backend,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        shared_dir=getattr(args, "shared_dir", None),
        telemetry_dir=getattr(args, "telemetry_dir", None),
        study_jobs=getattr(args, "study_jobs", None),
        seed=getattr(args, "seed", None) or 0,
    )


def _engine_line(result) -> str:
    """The ``engine: ...`` stats line for one result envelope."""
    from repro.engine.engine import EngineStats

    return format_engine_stats(EngineStats.from_dict(result.engine))


def _command_list_models() -> int:
    rows = [
        [name, spec.pruning or "-", spec.description]
        for name, spec in sorted(MODEL_REGISTRY.items())
    ]
    print(format_table("Registered workloads", ["model", "pruning", "description"], rows))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    from repro.api.schema import SimulateRequest

    request = SimulateRequest(
        model=args.model, epochs=args.epochs,
        batches_per_epoch=args.batches_per_epoch, batch_size=args.batch_size,
        max_groups=args.max_groups, datatype=args.datatype, seed=args.seed,
    )
    quiet = args.format == "json"
    result = _session_for(args).submit(request, progress=None if quiet else print)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    payload = result.result
    rows = [
        [op, payload.potentials.get(op, float("nan")), payload.speedups[op]]
        for op in ("AxW", "AxG", "WxG", "Total")
    ]
    print(format_table(
        f"{args.model}: TensorDash vs baseline",
        ["operation", "potential", "speedup"],
        rows,
    ))
    print(f"Core energy efficiency:    {payload.core_energy_efficiency:.3f}x")
    print(f"Overall energy efficiency: {payload.overall_energy_efficiency:.3f}x")
    print(_engine_line(result))
    return 0


def _command_roofline(args: argparse.Namespace) -> int:
    from repro.analysis.roofline import RooflineReport, format_roofline_report
    from repro.api.schema import RooflineRequest

    request = RooflineRequest(
        model=args.model, epochs=args.epochs,
        batches_per_epoch=args.batches_per_epoch, batch_size=args.batch_size,
        max_groups=args.max_groups, datatype=args.datatype, seed=args.seed,
        dram_bandwidth_gbps=args.dram_bandwidth_gbps,
        sram_bandwidth_gbps=args.sram_bandwidth_gbps,
        sram_kb=args.sram_kb,
    )
    quiet = args.format == "json"
    result = _session_for(args).submit(request, progress=None if quiet else print)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    payload = result.result
    print(format_roofline_report(RooflineReport.from_dict(payload.roofline)))
    print(f"Memory-bound operations:   {payload.memory_bound_operations} "
          f"of {payload.total_operations}")
    print(f"Stall fraction:            {payload.stall_fraction:.1%}")
    print(f"Speedup (with stalls):     {payload.speedup:.3f}x")
    print(f"Speedup (compute only):    {payload.compute_speedup:.3f}x")
    print(_engine_line(result))
    return 0


def _parse_link_gbps(value: str) -> Optional[float]:
    """``--link-gbps`` parsing: a positive float, or 'unbounded' -> None."""
    text = value.strip().lower()
    if text in ("unbounded", "inf", "infinite", "none"):
        return None
    try:
        return float(text)
    except ValueError:
        raise CliError(
            f"--link-gbps expects a bandwidth in GB/s or 'unbounded', "
            f"got {value!r}"
        ) from None


def _command_scale(args: argparse.Namespace) -> int:
    from repro.api.schema import ScaleRequest
    from repro.scale import ScalingReport, format_scaling_report

    request = ScaleRequest(
        model=args.model, epochs=args.epochs,
        batches_per_epoch=args.batches_per_epoch, batch_size=args.batch_size,
        max_groups=args.max_groups, datatype=args.datatype, seed=args.seed,
        num_devices=args.devices, partition=args.partition,
        link_gbps=_parse_link_gbps(args.link_gbps),
        hop_latency_cycles=args.hop_latency_cycles,
        trace_max_batch=args.trace_max_batch,
    )
    quiet = args.format == "json"
    result = _session_for(args).submit(request, progress=None if quiet else print)
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    payload = result.result
    print(format_scaling_report(ScalingReport.from_dict(payload.report)))
    print(_engine_line(result))
    return 0


def _coerce_knob_value(value: str):
    """Parse one ``--values`` item into the type its knob expects.

    Booleans and integers first, then floats (bandwidth knobs such as
    ``dram_bandwidth_gbps`` take fractional GB/s), then bare strings
    (datatypes).
    """
    text = value.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.api.schema import SweepRequest
    from repro.explore.report import format_points_table, study_result_from_dict

    values = [_coerce_knob_value(v) for v in args.values.split(",") if v.strip()]
    if not values:
        raise CliError(f"--values {args.values!r} contains no knob values")
    request = SweepRequest(
        model=args.model, knob=args.knob, values=values,
        epochs=args.epochs, max_groups=args.max_groups, seed=args.seed,
        trace_max_batch=args.trace_max_batch,
        study_jobs=args.study_jobs,
    )
    result = _session_for(args).submit(request, progress=print)
    study = study_result_from_dict(result.result.study)
    print(format_points_table(study, title=f"{args.model}: {args.knob} sweep"))
    print(format_engine_stats(study.stats))
    return 0


def _command_explore(args: argparse.Namespace) -> int:
    from repro.api.schema import ExploreRequest
    from repro.explore.report import (
        format_study_report,
        study_result_from_dict,
        study_to_csv,
        study_to_json,
    )
    from repro.explore.runner import StudyResumeError
    from repro.explore.spec import StudySpec, parse_objectives

    if args.resume and not args.study_dir:
        raise CliError("--resume requires --study-dir (that is where the "
                       "study manifest lives)")
    if args.output and not Path(args.output).parent.is_dir():
        # Checked before the study runs, not after hours of simulation.
        raise CliError(
            f"--output directory {Path(args.output).parent} does not exist"
        )
    # Spec problems (including a missing spec file) are usage errors;
    # anything raised later (training, simulation) is a real fault and
    # keeps its traceback.
    try:
        spec = StudySpec.from_json(args.spec)
        if args.sample is not None:
            spec.mode = "random"
            spec.sample = args.sample
        if args.seed is not None:
            spec.seed = args.seed
        spec.validate()
        objectives = None
        if args.objectives:
            objectives = [name.strip() for name in args.objectives.split(",")
                          if name.strip()]
            parse_objectives(objectives)   # fail before any training starts
    except (ValueError, OSError) as exc:
        # OSError covers a missing spec file, a directory passed as the
        # spec path, permission problems, etc.
        raise CliError(str(exc)) from exc

    # Progress lines would corrupt machine-readable stdout output.
    quiet = args.format in ("json", "csv") and not args.output
    if not quiet:
        count = spec.space_size
        if spec.mode == "random":
            count = min(spec.sample, count)
        print(f"Study '{spec.name}': {count} of {spec.space_size} "
              f"points ({spec.mode}), objectives "
              f"{', '.join(objectives or spec.objectives)}")
    request = ExploreRequest(
        spec=spec.to_dict(),
        study_dir=args.study_dir,
        resume=args.resume,
        objectives=objectives,
        study_jobs=args.study_jobs,
    )
    try:
        result = _session_for(args).submit(
            request, progress=None if quiet else print
        )
    except StudyResumeError as exc:
        raise CliError(str(exc)) from exc
    study = study_result_from_dict(result.result.study)

    if args.format == "json":
        text = study_to_json(study, objectives)
    elif args.format == "csv":
        text = study_to_csv(study, objectives)
    else:
        text = format_study_report(study, objectives)
    if args.output:
        Path(args.output).write_text(text if text.endswith("\n") else text + "\n")
        print(f"Wrote {args.output}")
    else:
        print(text)
    return 0


def _load_diff_side(path_text: str, mode: str):
    """Load one ``repro diff`` operand: ``(detected mode, payload, label)``.

    Detection order for ``mode="auto"``: a directory holding a study
    manifest is a study; a directory of ``BENCH_*.json`` is a bench set;
    a ``BENCH_*`` file or a JSON object with a ``benchmark`` key is a
    bench document; everything else is a study artifact (manifest,
    study document, or ``.jsonl`` segment).
    """
    import json as _json

    from repro.lineage.bench import load_bench_side
    from repro.lineage.snapshot import ManifestSnapshot, SnapshotError

    path = Path(path_text)
    if not path.exists():
        raise CliError(f"{path}: no such file or directory")
    detected = mode
    if mode == "auto":
        if path.is_dir():
            if (path / "manifest.json").exists() or (
                path / "manifest.segment.jsonl"
            ).exists():
                detected = "study"
            elif any(path.glob("BENCH_*.json")):
                detected = "bench"
            else:
                raise CliError(
                    f"{path}: directory holds neither a study manifest nor "
                    f"BENCH_*.json files; pass --mode explicitly"
                )
        elif path.name.startswith("BENCH_"):
            detected = "bench"
        elif path.suffix == ".jsonl":
            detected = "study"
        else:
            try:
                payload = _json.loads(path.read_text())
            except (OSError, ValueError) as exc:
                raise CliError(f"{path}: not valid JSON ({exc})") from exc
            detected = (
                "bench"
                if isinstance(payload, dict) and "benchmark" in payload
                else "study"
            )
    try:
        if detected == "bench":
            label, docs = load_bench_side(path)
            return "bench", docs, label
        snapshot = ManifestSnapshot.from_file(path)
        return "study", snapshot.to_payload(), snapshot.source
    except (SnapshotError, ValueError, OSError) as exc:
        raise CliError(f"{path}: {exc}") from exc


def _diff_rows(diff) -> Tuple[List[str], List[List[str]]]:
    """Column headers + formatted rows for a :class:`DiffResult`."""
    def num(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, bool):
            return str(value)
        return f"{value:.4g}"

    if diff.mode == "bench":
        columns = ["benchmark", "metric", "committed", "fresh", "bound",
                   "gate", "class"]
        rows = [
            [row["benchmark"], row["metric"], num(row["a"]), num(row["b"]),
             num(row["bound"]), "yes" if row["gate"] else "no",
             row["classification"]]
            for row in diff.deltas
        ]
        return columns, rows
    columns = ["point", "metric", "a", "b", "delta", "relative", "class"]
    rows = [
        [d["label"], d["metric"], num(d["a"]), num(d["b"]), num(d["delta"]),
         "-" if d["relative"] is None else f"{d['relative']:+.1%}",
         d["classification"]]
        for d in diff.deltas
    ]
    return columns, rows


def _format_diff_report(diff) -> str:
    """The human-readable ``repro diff`` report (``--format table``)."""
    summary = diff.summary
    lines = [f"Diff ({diff.mode}): {diff.a} -> {diff.b}"]
    if diff.mode == "bench":
        lines.append(
            f"Watched {summary['watched']} metric(s): "
            f"{summary['improved']} improved, {summary['held']} held, "
            f"{summary['regressed']} regressed "
            f"({summary['gated_regressions']} gated)"
        )
    else:
        lines.append(
            f"Points: {summary['matched_points']} matched, "
            f"{summary['added_points']} added, "
            f"{summary['removed_points']} removed"
        )
        lines.append(
            f"Metric deltas: {summary['improved']} improved, "
            f"{summary['regressed']} regressed, {summary['changed']} changed "
            f"(tolerance {diff.tolerance:g})"
        )
        if summary.get("fingerprints_match") is False:
            lines.append("WARNING: spec fingerprints differ between sides")
    if diff.identical:
        lines.append("No differences: the snapshots are identical.")
    columns, rows = _diff_rows(diff)
    if rows:
        title = "Watched metrics" if diff.mode == "bench" else "Changed metrics"
        lines.append("")
        lines.append(format_table(title, columns, rows))
    if diff.mode == "study" and diff.frontier.get("computed"):
        frontier = diff.frontier
        lines.append("")
        lines.append(
            f"Frontier ({', '.join(frontier['objectives'])}): "
            f"{len(frontier['held'])} held, "
            f"{len(frontier['entered'])} entered, "
            f"{len(frontier['left'])} left"
        )
        for point_id in frontier["entered"]:
            lines.append(f"  + {point_id} entered the frontier")
        for point_id in frontier["left"]:
            lines.append(f"  - {point_id} left the frontier")
    if diff.attribution:
        lines.append("")
        lines.append("Attribution (single axes explaining every change):")
        for entry in diff.attribution:
            lines.append(
                f"  {entry['axis']} = {', '.join(entry['values'])}"
            )
    for warning in diff.warnings:
        lines.append(f"warning: {warning}")
    return "\n".join(lines)


def _format_diff_markdown(diff) -> str:
    """The ``repro diff --format markdown`` report (PR-comment ready)."""
    summary = diff.summary
    lines = [f"### Diff ({diff.mode}): `{diff.a}` → `{diff.b}`", ""]
    if diff.identical:
        lines.append("No differences: the snapshots are identical.")
    else:
        lines.append(
            f"**{summary.get('regressed', 0)} regressed**, "
            f"{summary.get('improved', 0)} improved "
            f"(tolerance {diff.tolerance:g})"
        )
    columns, rows = _diff_rows(diff)
    if rows:
        lines.append("")
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "---|" * len(columns))
        for row in rows:
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    if diff.mode == "study" and diff.frontier.get("computed"):
        frontier = diff.frontier
        for point_id in frontier["entered"]:
            lines.append(f"- `{point_id}` entered the frontier")
        for point_id in frontier["left"]:
            lines.append(f"- `{point_id}` left the frontier")
    for warning in diff.warnings:
        lines.append(f"- warning: {warning}")
    return "\n".join(lines)


def _command_diff(args: argparse.Namespace) -> int:
    from repro.api.schema import DiffRequest

    mode_a, payload_a, label_a = _load_diff_side(args.a, args.mode)
    mode_b, payload_b, label_b = _load_diff_side(args.b, args.mode)
    if mode_a != mode_b:
        raise CliError(
            f"cannot diff a {mode_a} artifact ({args.a}) against a "
            f"{mode_b} artifact ({args.b}); pass --mode to force one"
        )
    split = lambda text: [part.strip() for part in text.split(",") if part.strip()]
    request = DiffRequest(
        a=payload_a,
        b=payload_b,
        mode=mode_a,
        tolerance=args.tolerance,
        ignore=split(args.ignore) if args.ignore else None,
        objectives=split(args.objectives) if args.objectives else None,
        a_label=label_a,
        b_label=label_b,
    )
    result = _session_for(args).submit(request)
    diff = result.result
    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2))
    elif args.format == "markdown":
        print(_format_diff_markdown(diff))
    else:
        print(_format_diff_report(diff))
    if args.fail_on:
        count = diff.regressions if args.fail_on == "regressed" else diff.changed
        if count:
            print(f"FAIL: {count} {args.fail_on} entr"
                  f"{'y' if count == 1 else 'ies'} (--fail-on {args.fail_on})")
            return 1
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.api.service import serve

    return serve(host=args.host, port=args.port, session=_session_for(args),
                 study_root=args.study_root, access_log=args.access_log,
                 job_workers=args.job_workers,
                 job_retention=args.job_retention,
                 audit_log=args.audit_log, max_body_mb=args.max_body_mb,
                 drain_seconds=args.drain_seconds)


def _jobs_request(url: str, method: str = "GET", payload=None):
    """One JSON round-trip to the server; HTTP errors become CliError."""
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read()).get("error", "")
        except ValueError:
            detail = ""
        raise CliError(
            f"{method} {url} failed with HTTP {exc.code}"
            + (f": {detail}" if detail else "")
        ) from None
    except urllib.error.URLError as exc:
        raise CliError(
            f"cannot reach {url} ({exc.reason}); is 'repro serve' running?"
        ) from None


def _format_job_row(job: dict) -> list:
    """One ``jobs list`` table row from a job-record document."""
    runtime = "-"
    if job.get("started_s") is not None:
        end = job.get("finished_s")
        if end is not None:
            runtime = f"{end - job['started_s']:.1f}s"
        else:
            runtime = "running"
    return [job["job_id"], job["request_kind"], job["state"],
            job.get("events", 0), runtime,
            "yes" if job.get("cancel_requested") else "-"]


def _command_jobs(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    if args.jobs_command == "list":
        payload = _jobs_request(
            base + "/v1/jobs"
            + (f"?state={args.state}" if args.state else "")
        )
        if args.format == "json":
            print(json.dumps(payload, indent=2))
            return 0
        rows = [_format_job_row(job) for job in payload["jobs"]]
        print(format_table(
            f"Jobs on {base} (queue depth {payload['queue_depth']}, "
            f"{payload['workers']} workers)",
            ["job id", "kind", "state", "events", "runtime", "cancel?"],
            rows,
        ))
        return 0
    if args.jobs_command == "show":
        print(json.dumps(
            _jobs_request(f"{base}/v1/jobs/{args.job_id}"), indent=2
        ))
        return 0
    if args.jobs_command == "cancel":
        record = _jobs_request(
            f"{base}/v1/jobs/{args.job_id}/cancel", method="POST"
        )
        print(f"job {record['job_id']}: {record['state']}"
              + (" (cancellation requested)"
                 if record.get("cancel_requested")
                 and record["state"] == "running" else ""))
        return 0
    return _command_jobs_watch(base, args.job_id, args.since)


def _command_jobs_watch(base: str, job_id: str, since: int) -> int:
    """Follow one job's SSE stream, printing each event as it arrives.

    The server ends the stream when the job reaches a terminal state;
    reconnecting with ``--since`` resumes after the last printed
    sequence number.  Exit code 0 for ``succeeded``, 1 otherwise.
    """
    import urllib.error
    import urllib.request

    url = f"{base}/v1/jobs/{job_id}/events"
    if since:
        url += f"?since={since}"
    final_state = None
    try:
        with urllib.request.urlopen(
            urllib.request.Request(url), timeout=3600
        ) as response:
            event_type, data = None, None
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith(":"):
                    continue   # keep-alive comment
                if line.startswith("event: "):
                    event_type = line[len("event: "):]
                elif line.startswith("data: "):
                    data = line[len("data: "):]
                elif not line and event_type is not None:
                    event = json.loads(data) if data else {}
                    if event_type == "state":
                        state = event.get("state")
                        print(f"[{event.get('seq', '?')}] state: {state}")
                        if state in ("succeeded", "failed", "cancelled"):
                            final_state = state
                    elif event_type == "progress":
                        print(f"[{event.get('seq', '?')}] "
                              f"{event.get('message', '')}")
                    else:
                        detail = {k: v for k, v in event.items()
                                  if k not in ("seq", "time_s", "type")}
                        print(f"[{event.get('seq', '?')}] {event_type}: "
                              + json.dumps(detail, sort_keys=True))
                    event_type, data = None, None
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read()).get("error", "")
        except ValueError:
            detail = ""
        raise CliError(
            f"GET {url} failed with HTTP {exc.code}"
            + (f": {detail}" if detail else "")
        ) from None
    except urllib.error.URLError as exc:
        raise CliError(
            f"cannot reach {url} ({exc.reason}); is 'repro serve' running?"
        ) from None
    if final_state is None:
        # Stream ended without a terminal state event (e.g. resumed with
        # --since past it); ask the record directly.
        final_state = _jobs_request(f"{base}/v1/jobs/{job_id}")["state"]
        print(f"state: {final_state}")
    return 0 if final_state == "succeeded" else 1


def _command_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.schema import TelemetryRecordError
    from repro.telemetry.view import render_trace_trees, summarize_by_name

    if not Path(args.log).exists():
        raise CliError(f"telemetry log {args.log!r} does not exist")
    try:
        print(render_trace_trees(
            args.log, trace_id=args.trace_id, min_ms=args.min_ms,
        ))
        if args.summary:
            rows = [
                [entry["name"], entry["count"],
                 f"{entry['total_s']:.4f}", f"{entry['self_s']:.4f}"]
                for entry in summarize_by_name(args.log)
            ]
            print(format_table(
                "Per-span-name profile (heaviest self time first)",
                ["span", "count", "total s", "self s"],
                rows,
            ))
    except (TelemetryRecordError, ValueError, OSError) as exc:
        # A malformed log, an empty directory or an unmatched --trace-id
        # is a usage problem, not an internal fault.
        raise CliError(str(exc)) from exc
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    from repro.api.schema import SchemaError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-models":
            return _command_list_models()
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "roofline":
            return _command_roofline(args)
        if args.command == "scale":
            return _command_scale(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "explore":
            return _command_explore(args)
        if args.command == "diff":
            return _command_diff(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "jobs":
            return _command_jobs(args)
        if args.command == "trace":
            return _command_trace(args)
    except NotADirectoryError as exc:
        # e.g. --cache-dir pointing at an existing file.
        parser.error(str(exc))
    except SchemaError as exc:
        # An invalid request document (bad model, knob value, hierarchy
        # parameter, spec field) — a usage error naming the bad field.
        parser.error(str(exc))
    except CliError as exc:
        # invalid spec, knob value, objective or stale study manifest;
        # internal errors keep their traceback instead of landing here.
        parser.error(str(exc))
    parser.error(f"unknown command {args.command!r}")
    return 2
