"""Command-line interface for the TensorDash reproduction.

Three subcommands cover the common workflows without writing any Python:

``list-models``
    Show the registered workloads (the paper's model list).

``simulate``
    Train one workload briefly, trace it and report TensorDash's
    per-operation speedups, potential speedups and energy efficiency.

``sweep``
    Re-simulate one traced workload across a configuration sweep
    (tile rows, staging depth or datatype).

Both ``simulate`` and ``sweep`` execute through the pluggable simulation
engine (:mod:`repro.engine`): ``--backend`` selects the execution strategy
(``reference`` oracle loop, numpy ``vectorized`` fast path, or a
``parallel`` multiprocessing pool sized by ``--jobs``), all of which are
bit-identical; ``--cache-dir`` enables the on-disk result cache so
repeated runs and sweeps skip already-simulated layers.  Cache entries
are content-addressed by (accelerator-config hash, layer-trace hash,
backend name): changing any configuration knob, the traced operands (e.g.
via ``--seed`` or ``--epochs``) or the backend simply produces new keys,
so stale results are never returned — old entries are inert files and the
cache directory can be deleted at any time to reclaim space.

Examples
--------
::

    python -m repro list-models
    python -m repro simulate alexnet --epochs 2
    python -m repro simulate vgg16 --backend parallel --jobs 8
    python -m repro sweep squeezenet --knob rows --values 1,4,16 \\
        --cache-dir ~/.cache/repro   # second run: zero re-simulations
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import List, Optional

from repro.analysis.reporting import format_engine_stats, format_table
from repro.core.config import AcceleratorConfig
from repro.engine import available_backends
from repro.models.registry import (
    MODEL_REGISTRY,
    available_models,
    build_dataset,
    build_model,
    build_pruning_hook,
)
from repro.nn.optim import MomentumSGD
from repro.simulation.runner import ExperimentRunner
from repro.training.trainer import Trainer, TrainingConfig


def _add_engine_arguments(command: argparse.ArgumentParser) -> None:
    """Engine flags shared by ``simulate`` and ``sweep``."""
    command.add_argument(
        "--backend", choices=available_backends(), default="vectorized",
        help="execution strategy: 'reference' is the readable bit-exact "
             "oracle, 'vectorized' batches all work groups through numpy, "
             "'parallel' shards traced layers across worker processes; "
             "all three produce identical results (default: vectorized)")
    command.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for --backend parallel "
             "(default: CPU count, capped at 8)")
    command.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk result cache; layers already "
             "simulated under the same (config, trace, backend) key are "
             "loaded instead of re-simulated.  Keys are content hashes, so "
             "changing the config, seed/trace or backend invalidates "
             "entries automatically; delete the directory to reclaim space")
    command.add_argument(
        "--seed", type=int, default=0,
        help="model/dataset seed; fixed by default so repeated runs "
             "produce identical traces (and therefore cache hits)")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TensorDash (MICRO 2020) reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-models", help="list the registered workloads")

    simulate = subparsers.add_parser(
        "simulate", help="train, trace and simulate one workload"
    )
    simulate.add_argument("model", choices=available_models())
    simulate.add_argument("--epochs", type=int, default=2)
    simulate.add_argument("--batch-size", type=int, default=8)
    simulate.add_argument("--batches-per-epoch", type=int, default=2)
    simulate.add_argument("--max-groups", type=int, default=64,
                          help="work groups sampled per layer per operation")
    simulate.add_argument("--datatype", choices=("fp32", "bfloat16"), default="fp32")
    _add_engine_arguments(simulate)

    sweep = subparsers.add_parser(
        "sweep", help="sweep one design knob over a traced workload"
    )
    sweep.add_argument("model", choices=available_models())
    sweep.add_argument("--knob", choices=("rows", "staging", "datatype"), default="rows")
    sweep.add_argument("--values", default="1,4,8,16",
                       help="comma-separated knob values")
    sweep.add_argument("--epochs", type=int, default=2)
    sweep.add_argument("--max-groups", type=int, default=48)
    _add_engine_arguments(sweep)
    return parser


def _train_and_trace(model_name: str, epochs: int, batch_size: int, batches: int,
                     seed: int = 0):
    model = build_model(model_name, seed=seed)
    dataset = build_dataset(model_name, seed=seed)
    optimizer = MomentumSGD(model.parameters(), lr=0.01)
    pruning_hook = build_pruning_hook(model_name, optimizer)
    trainer = Trainer(
        model,
        optimizer,
        config=TrainingConfig(
            epochs=epochs, batches_per_epoch=batches, batch_size=batch_size
        ),
        pruning_hook=pruning_hook,
    )
    return trainer.train(dataset, model_name=model_name)


def _command_list_models() -> int:
    rows = [
        [name, spec.pruning or "-", spec.description]
        for name, spec in sorted(MODEL_REGISTRY.items())
    ]
    print(format_table("Registered workloads", ["model", "pruning", "description"], rows))
    return 0


def _command_simulate(args: argparse.Namespace) -> int:
    config = AcceleratorConfig().with_pe(datatype=args.datatype)
    print(f"Accelerator: {config.describe()}")
    print(f"Training {args.model} for {args.epochs} epoch(s)...")
    trace = _train_and_trace(args.model, args.epochs, args.batch_size,
                             args.batches_per_epoch, seed=args.seed)
    runner = ExperimentRunner(
        config, max_groups=args.max_groups,
        backend=args.backend, jobs=args.jobs, cache_dir=args.cache_dir,
    )
    result = runner.run_final_epoch(trace)
    potentials = ExperimentRunner.potential_speedups_from_trace(trace.final_epoch())
    speedups = result.per_operation_speedups()
    rows = [
        [op, potentials.get(op, float("nan")), speedups[op]]
        for op in ("AxW", "AxG", "WxG", "Total")
    ]
    print(format_table(
        f"{args.model}: TensorDash vs baseline",
        ["operation", "potential", "speedup"],
        rows,
    ))
    report = runner.energy_report(result)
    print(f"Core energy efficiency:    {report.core_efficiency:.3f}x")
    print(f"Overall energy efficiency: {report.overall_efficiency:.3f}x")
    print(format_engine_stats(runner.engine_stats))
    return 0


def _config_for_knob(knob: str, value: str) -> AcceleratorConfig:
    base = AcceleratorConfig()
    if knob == "rows":
        return base.with_tile(rows=int(value))
    if knob == "staging":
        return base.with_pe(staging_depth=int(value))
    if knob == "datatype":
        return base.with_pe(datatype=value)
    raise ValueError(f"unknown knob {knob!r}")


def _command_sweep(args: argparse.Namespace) -> int:
    values = [v.strip() for v in args.values.split(",") if v.strip()]
    print(f"Training {args.model} once; sweeping {args.knob} over {values}...")
    trace = _train_and_trace(args.model, args.epochs, batch_size=8, batches=2,
                             seed=args.seed)
    rows = []
    totals = None
    for value in values:
        config = _config_for_knob(args.knob, value)
        runner = ExperimentRunner(
            config, max_groups=args.max_groups,
            backend=args.backend, jobs=args.jobs, cache_dir=args.cache_dir,
        )
        result = runner.run_final_epoch(trace)
        report = runner.energy_report(result)
        rows.append([f"{args.knob}={value}", result.speedup(),
                     report.core_efficiency, report.overall_efficiency])
        stats = runner.engine_stats
        if totals is None:
            totals = dataclasses.replace(stats)
        else:
            totals.layers_simulated += stats.layers_simulated
            totals.cache_hits += stats.cache_hits
            totals.cache_misses += stats.cache_misses
    print(format_table(
        f"{args.model}: {args.knob} sweep",
        ["configuration", "speedup", "core energy eff.", "overall energy eff."],
        rows,
    ))
    if totals is not None:
        print(format_engine_stats(totals))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-models":
            return _command_list_models()
        if args.command == "simulate":
            return _command_simulate(args)
        if args.command == "sweep":
            return _command_sweep(args)
    except NotADirectoryError as exc:
        # e.g. --cache-dir pointing at an existing file.
        parser.error(str(exc))
    parser.error(f"unknown command {args.command!r}")
    return 2
