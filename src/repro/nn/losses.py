"""Loss functions producing the gradients that seed the backward pass."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels."""

    def __init__(self):
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        probs = softmax(logits)
        labels = np.asarray(labels, dtype=np.int64)
        n = logits.shape[0]
        eps = 1e-12
        loss = -np.log(probs[np.arange(n), labels] + eps).mean()
        self._cache = (probs, labels)
        return float(loss)

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        probs, labels = self._cache
        n = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return (grad / n).astype(np.float32)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error against dense targets."""

    def __init__(self):
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        self._cache = (predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        predictions, targets = self._cache
        return (2.0 * (predictions - targets) / predictions.size).astype(np.float32)

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
