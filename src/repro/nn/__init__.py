"""A small, from-scratch numpy neural-network training framework.

The framework exists to generate realistic operand sparsity traces
(activations, weights and gradients) for the TensorDash hardware model.  It
implements forward and backward passes for the layer types used by the
paper's model zoo: 2D convolutions, fully-connected layers, ReLU, batch
normalisation, pooling, dropout, embeddings and simple recurrent cells.

Every layer caches the operands that participate in the three training
convolutions described in the paper:

* ``O = W * A``   (forward pass),
* ``GA = GO * W`` (input-gradient computation), and
* ``GW = GO * A`` (weight-gradient computation),

so that :mod:`repro.training.tracing` can snapshot them without re-running
the math.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.activation import ReLU, Sigmoid, Tanh, LeakyReLU
from repro.nn.layers.normalization import BatchNorm2D, BatchNorm1D, LayerNorm
from repro.nn.layers.pooling import MaxPool2D, AvgPool2D, GlobalAvgPool2D
from repro.nn.layers.shape import Flatten, Concat, Add
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.recurrent import LSTMCell, GRUCell, RNNCell
from repro.nn.model import Sequential, Graph
from repro.nn.losses import CrossEntropyLoss, MSELoss, softmax
from repro.nn.optim import SGD, MomentumSGD, Adam

__all__ = [
    "Module",
    "Parameter",
    "Conv2D",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "BatchNorm2D",
    "BatchNorm1D",
    "LayerNorm",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "Concat",
    "Add",
    "Dropout",
    "Embedding",
    "LSTMCell",
    "GRUCell",
    "RNNCell",
    "Sequential",
    "Graph",
    "CrossEntropyLoss",
    "MSELoss",
    "softmax",
    "SGD",
    "MomentumSGD",
    "Adam",
]
