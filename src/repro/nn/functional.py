"""Low-level numpy implementations of the tensor operations used by layers.

All convolution arithmetic is implemented via ``im2col``/``col2im`` so the
forward pass, the input-gradient pass and the weight-gradient pass each map
onto a single matrix multiplication.  This mirrors how the paper describes
the three training convolutions (Table 1, Eqs. 4-9) and keeps the substrate
fast enough to trace scaled-down models on a CPU.

Tensors follow the ``(N, C, H, W)`` layout used throughout the paper.
"""

from __future__ import annotations

import numpy as np


def pad_input(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two spatial dimensions of an ``(N, C, H, W)`` tensor."""
    if padding == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel_h: int, kernel_w: int, stride: int, padding: int
) -> np.ndarray:
    """Unfold an ``(N, C, H, W)`` tensor into convolution columns.

    Returns an array of shape ``(N, out_h, out_w, C * kernel_h * kernel_w)``
    where each trailing row is the receptive field of one output position.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    x_padded = pad_input(x, padding)

    # Strided view: (N, C, out_h, out_w, kernel_h, kernel_w)
    s = x_padded.strides
    view = np.lib.stride_tricks.as_strided(
        x_padded,
        shape=(n, c, out_h, out_w, kernel_h, kernel_w),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(
        n, out_h, out_w, c * kernel_h * kernel_w
    )
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold convolution columns back onto an input-shaped tensor (scatter-add).

    ``cols`` has shape ``(N, out_h, out_w, C * kernel_h * kernel_w)`` and the
    result has shape ``x_shape`` = ``(N, C, H, W)``.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel_h, stride, padding)
    out_w = conv_output_size(w, kernel_w, stride, padding)
    h_padded, w_padded = h + 2 * padding, w + 2 * padding
    x_padded = np.zeros((n, c, h_padded, w_padded), dtype=cols.dtype)

    cols_reshaped = cols.reshape(n, out_h, out_w, c, kernel_h, kernel_w)
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            x_padded[:, :, ky:y_max:stride, kx:x_max:stride] += (
                cols_reshaped[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
            )
    if padding == 0:
        return x_padded
    return x_padded[:, :, padding:-padding, padding:-padding]


def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Forward convolution ``O = W * A`` (paper Eq. 4).

    ``x`` is ``(N, C, H, W)`` and ``weight`` is ``(F, C, Kh, Kw)``.  Returns
    the output activations ``(N, F, out_h, out_w)`` along with the im2col
    columns, which the backward pass reuses.
    """
    f, c, kh, kw = weight.shape
    cols = im2col(x, kh, kw, stride, padding)
    n, out_h, out_w, _ = cols.shape
    w_mat = weight.reshape(f, -1)
    out = cols.reshape(-1, c * kh * kw) @ w_mat.T
    if bias is not None:
        out = out + bias
    out = out.reshape(n, out_h, out_w, f).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(out), cols


def conv2d_backward(
    grad_out: np.ndarray,
    x: np.ndarray,
    weight: np.ndarray,
    cols: np.ndarray,
    stride: int,
    padding: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward convolution producing ``GA``, ``GW`` and the bias gradient.

    Implements the paper's Eqs. 6 and 8: the input gradients convolve the
    output gradients with the (reconstructed, rotated) filters, and the
    weight gradients convolve the output gradients with the activations.
    """
    f, c, kh, kw = weight.shape
    n, _, out_h, out_w = grad_out.shape

    grad_out_mat = grad_out.transpose(0, 2, 3, 1).reshape(-1, f)
    w_mat = weight.reshape(f, -1)

    # GW = GO * A (Eq. 8), expressed over the im2col columns.
    grad_weight = (grad_out_mat.T @ cols.reshape(-1, c * kh * kw)).reshape(
        weight.shape
    )
    grad_bias = grad_out_mat.sum(axis=0)

    # GA = GO * W_rotated (Eq. 6), expressed as a matmul followed by col2im.
    grad_cols = (grad_out_mat @ w_mat).reshape(n, out_h, out_w, c * kh * kw)
    grad_input = col2im(grad_cols, x.shape, kh, kw, stride, padding)
    return grad_input, grad_weight, grad_bias


def linear_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None
) -> np.ndarray:
    """Fully-connected forward pass ``O = W * A`` (paper Eq. 5)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def linear_backward(
    grad_out: np.ndarray, x: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fully-connected backward pass (paper Eqs. 7 and 9)."""
    grad_input = grad_out @ weight
    grad_weight = grad_out.T @ x
    grad_bias = grad_out.sum(axis=0)
    return grad_input, grad_weight, grad_bias


def max_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, np.ndarray]:
    """Max pooling forward; returns outputs and the argmax mask for backward."""
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    patches = view.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = patches.argmax(axis=-1)
    out = patches.max(axis=-1)
    return out, argmax


def max_pool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: tuple,
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Scatter pooled gradients back to the argmax positions."""
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    grad_input = np.zeros(x_shape, dtype=grad_out.dtype)
    ky = argmax // kernel
    kx = argmax % kernel
    oy = np.arange(out_h)[None, None, :, None]
    ox = np.arange(out_w)[None, None, None, :]
    rows = oy * stride + ky
    cols = ox * stride + kx
    nn_idx = np.arange(n)[:, None, None, None]
    cc_idx = np.arange(c)[None, :, None, None]
    np.add.at(grad_input, (nn_idx, cc_idx, rows, cols), grad_out)
    return grad_input


def avg_pool2d_forward(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Average pooling forward pass."""
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    return view.mean(axis=(-2, -1))


def avg_pool2d_backward(
    grad_out: np.ndarray, x_shape: tuple, kernel: int, stride: int
) -> np.ndarray:
    """Distribute pooled gradients uniformly over each pooling window."""
    n, c, h, w = x_shape
    out_h, out_w = grad_out.shape[2], grad_out.shape[3]
    grad_input = np.zeros(x_shape, dtype=grad_out.dtype)
    share = grad_out / (kernel * kernel)
    for ky in range(kernel):
        for kx in range(kernel):
            grad_input[
                :, :, ky : ky + out_h * stride : stride, kx : kx + out_w * stride : stride
            ] += share
    return grad_input


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out.astype(x.dtype, copy=False)
