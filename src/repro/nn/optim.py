"""Optimisers.

The paper trains with standard stochastic gradient descent (Eq. 10: per
mini-batch accumulation of weight gradients, scaled by the learning rate);
momentum SGD and Adam are included because the pruning-during-training
methods (sparse momentum in particular) depend on them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser over a list of :class:`Parameter` objects."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Clear gradients on every managed parameter."""
        for parameter in self.parameters:
            parameter.zero_grad()


class SGD(Optimizer):
    """Plain stochastic gradient descent (paper Eq. 10)."""

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            parameter.data -= self.lr * parameter.grad


class MomentumSGD(Optimizer):
    """SGD with classical momentum and optional weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.velocities: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            velocity = self.velocities.get(id(parameter))
            if velocity is None:
                velocity = np.zeros_like(parameter.data)
            velocity = self.momentum * velocity + grad
            self.velocities[id(parameter)] = velocity
            parameter.data -= self.lr * velocity

    def velocity_of(self, parameter: Parameter) -> np.ndarray:
        """Momentum buffer of a parameter (used by sparse-momentum pruning)."""
        velocity = self.velocities.get(id(parameter))
        if velocity is None:
            return np.zeros_like(parameter.data)
        return velocity


class Adam(Optimizer):
    """Adam optimiser (used by the sequence-model workloads)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.step_count = 0
        self.m: Dict[int, np.ndarray] = {}
        self.v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m = self.m.get(id(parameter), np.zeros_like(parameter.data))
            v = self.v.get(id(parameter), np.zeros_like(parameter.data))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self.m[id(parameter)] = m
            self.v[id(parameter)] = v
            m_hat = m / (1 - self.beta1 ** self.step_count)
            v_hat = v / (1 - self.beta2 ** self.step_count)
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
