"""Model containers: :class:`Sequential` chains and a small DAG :class:`Graph`.

``Sequential`` covers chain-structured networks (AlexNet, VGG, SqueezeNet's
trunk).  ``Graph`` covers networks with skip connections and concatenations
(ResNet, DenseNet) by executing nodes in a declared topological order and
accumulating gradients along the reverse edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """A chain of layers executed in order."""

    def __init__(self, layers: Sequence[Module], name: Optional[str] = None):
        super().__init__(name=name)
        self.layers: List[Module] = list(layers)
        for index, layer in enumerate(self.layers):
            self.register_module(f"layer{index}", layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def append(self, layer: Module) -> None:
        """Add a layer at the end of the chain."""
        self.register_module(f"layer{len(self.layers)}", layer)
        self.layers.append(layer)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class GraphNode:
    """One node of a :class:`Graph`: a module plus the names of its inputs."""

    def __init__(self, name: str, module: Module, inputs: Sequence[str]):
        self.name = name
        self.module = module
        self.inputs = list(inputs)


class Graph(Module):
    """A DAG of modules with named tensors.

    Nodes must be added in topological order.  The reserved tensor name
    ``"input"`` refers to the graph input; the output tensor is whichever
    node name is passed as ``output``.
    """

    INPUT = "input"

    def __init__(self, output: str, name: Optional[str] = None):
        super().__init__(name=name)
        self.output = output
        self.nodes: List[GraphNode] = []
        self._values: Dict[str, np.ndarray] = {}

    def add_node(self, name: str, module: Module, inputs: Sequence[str]) -> Module:
        """Register ``module`` as node ``name`` reading the named ``inputs``."""
        if name == self.INPUT:
            raise ValueError('"input" is reserved for the graph input tensor')
        if any(node.name == name for node in self.nodes):
            raise ValueError(f"duplicate node name {name!r}")
        known = {self.INPUT} | {node.name for node in self.nodes}
        for inp in inputs:
            if inp not in known:
                raise ValueError(
                    f"node {name!r} reads {inp!r} before it is defined "
                    "(nodes must be added in topological order)"
                )
        self.nodes.append(GraphNode(name, module, inputs))
        self.register_module(name, module)
        return module

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._values = {self.INPUT: x}
        for node in self.nodes:
            inputs = [self._values[name] for name in node.inputs]
            self._values[node.name] = node.module(*inputs)
        return self._values[self.output]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if not self._values:
            raise RuntimeError("backward() called before forward()")
        grads: Dict[str, np.ndarray] = {self.output: grad_out}
        for node in reversed(self.nodes):
            grad = grads.pop(node.name, None)
            if grad is None:
                # The node's output was never used downstream of the loss.
                continue
            input_grads = node.module.backward(grad)
            if not isinstance(input_grads, (list, tuple)):
                input_grads = [input_grads]
            if len(input_grads) != len(node.inputs):
                raise RuntimeError(
                    f"node {node.name!r} returned {len(input_grads)} gradients "
                    f"for {len(node.inputs)} inputs"
                )
            for input_name, input_grad in zip(node.inputs, input_grads):
                if input_name in grads:
                    grads[input_name] = grads[input_name] + input_grad
                else:
                    grads[input_name] = input_grad
        return grads.get(self.INPUT, np.zeros_like(self._values[self.INPUT]))

    def node_names(self) -> List[str]:
        """Names of all nodes in execution order."""
        return [node.name for node in self.nodes]
