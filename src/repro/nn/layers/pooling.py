"""Pooling layers (max, average, global average)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class MaxPool2D(Module):
    """Max pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, name=None):
        super().__init__(name=name)
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.max_pool2d_forward(x, self.kernel_size, self.stride)
        self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        argmax, x_shape = self._cache
        return F.max_pool2d_backward(
            grad_out, argmax, x_shape, self.kernel_size, self.stride
        )


class AvgPool2D(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, name=None):
        super().__init__(name=name)
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return F.avg_pool2d_forward(x, self.kernel_size, self.stride)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward() called before forward()")
        return F.avg_pool2d_backward(
            grad_out, self._x_shape, self.kernel_size, self.stride
        )


class GlobalAvgPool2D(Module):
    """Average over the entire spatial extent, producing ``(N, C)``."""

    def __init__(self, name=None):
        super().__init__(name=name)
        self._x_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward() called before forward()")
        n, c, h, w = self._x_shape
        grad = grad_out.reshape(n, c, 1, 1) / (h * w)
        return np.broadcast_to(grad, self._x_shape).astype(grad_out.dtype, copy=True)
