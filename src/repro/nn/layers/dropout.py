"""Inverted dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class Dropout(Module):
    """Randomly zero a fraction of the input during training.

    Dropout is itself a source of activation/gradient sparsity, which is why
    AlexNet and VGG (both of which use it in their classifier heads) show
    extra sparsity in the paper's Fig. 1.
    """

    def __init__(
        self,
        p: float = 0.5,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
