"""Shape-manipulation and merge layers (flatten, concat, residual add)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward() called before forward()")
        return grad_out.reshape(self._input_shape)


class Concat(Module):
    """Concatenate multiple inputs along the channel dimension.

    DenseNet blocks use this to stack each layer's output onto the running
    feature map.
    """

    def __init__(self, axis: int = 1, name: Optional[str] = None):
        super().__init__(name=name)
        self.axis = axis
        self._split_sizes: Optional[List[int]] = None

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        self._split_sizes = [inp.shape[self.axis] for inp in inputs]
        return np.concatenate(inputs, axis=self.axis)

    def backward(self, grad_out: np.ndarray) -> List[np.ndarray]:
        if self._split_sizes is None:
            raise RuntimeError("backward() called before forward()")
        boundaries = np.cumsum(self._split_sizes)[:-1]
        return list(np.split(grad_out, boundaries, axis=self.axis))


class Add(Module):
    """Element-wise sum of multiple inputs (residual connections)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._num_inputs: int = 0

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        self._num_inputs = len(inputs)
        out = inputs[0].copy()
        for inp in inputs[1:]:
            out = out + inp
        return out

    def backward(self, grad_out: np.ndarray) -> List[np.ndarray]:
        if self._num_inputs == 0:
            raise RuntimeError("backward() called before forward()")
        return [grad_out for _ in range(self._num_inputs)]
