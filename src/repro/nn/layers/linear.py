"""Fully-connected layer with operand tracing."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """A fully-connected layer ``O = A W^T + b`` (paper Eq. 5)."""

    traceable = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or init.default_rng(0)

        weight = init.kaiming_normal((out_features, in_features), in_features, rng)
        self.weight = self.register_parameter(
            "weight", Parameter(weight, name=f"{self.name}.weight")
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Parameter(init.zeros((out_features,)), name=f"{self.name}.bias")
            )

        self._input: Optional[np.ndarray] = None
        self._grad_out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        bias = self.bias.data if self.bias is not None else None
        return F.linear_forward(x, self.weight.data, bias)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward() called before forward()")
        self._grad_out = grad_out
        grad_input, grad_weight, grad_bias = F.linear_backward(
            grad_out, self._input, self.weight.data
        )
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_bias)
        return grad_input

    def trace_operands(self) -> Dict[str, np.ndarray]:
        operands: Dict[str, np.ndarray] = {"weights": self.weight.data}
        if self._input is not None:
            operands["activations"] = self._input
        if self._grad_out is not None:
            operands["output_gradients"] = self._grad_out
        return operands

    def macs_per_sample(self) -> int:
        """Number of MAC operations in the forward pass of one sample."""
        return self.in_features * self.out_features

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Linear({self.in_features}, {self.out_features})"
