"""Recurrent cells (LSTM, GRU, vanilla RNN).

The img2txt and SNLI workloads in the paper are recurrent/sequence models;
these cells give the trace collector realistic fully-connected operand
streams for those applications.  Each cell's matmuls are built from
:class:`repro.nn.layers.linear.Linear`, so they are automatically traceable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers.linear import Linear
from repro.nn.module import Module


class RNNCell(Module):
    """A vanilla tanh RNN cell: ``h' = tanh(W_x x + W_h h)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.input_proj = self.register_module(
            "input_proj", Linear(input_size, hidden_size, rng=rng, name=f"{self.name}.ih")
        )
        self.hidden_proj = self.register_module(
            "hidden_proj",
            Linear(hidden_size, hidden_size, bias=False, rng=rng, name=f"{self.name}.hh"),
        )
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        pre = self.input_proj(x) + self.hidden_proj(h)
        h_new = np.tanh(pre)
        self._cache = (h_new,)
        return h_new

    def backward(self, grad_h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        (h_new,) = self._cache
        grad_pre = grad_h * (1.0 - h_new * h_new)
        grad_x = self.input_proj.backward(grad_pre)
        grad_h_prev = self.hidden_proj.backward(grad_pre)
        return grad_x, grad_h_prev


class LSTMCell(Module):
    """A standard LSTM cell with combined gate projections."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.input_proj = self.register_module(
            "input_proj",
            Linear(input_size, 4 * hidden_size, rng=rng, name=f"{self.name}.ih"),
        )
        self.hidden_proj = self.register_module(
            "hidden_proj",
            Linear(hidden_size, 4 * hidden_size, bias=False, rng=rng, name=f"{self.name}.hh"),
        )
        self._cache: Optional[tuple] = None

    def forward(
        self, x: np.ndarray, state: Tuple[np.ndarray, np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray]:
        h_prev, c_prev = state
        gates = self.input_proj(x) + self.hidden_proj(h_prev)
        hs = self.hidden_size
        i = F.sigmoid(gates[:, 0 * hs : 1 * hs])
        f = F.sigmoid(gates[:, 1 * hs : 2 * hs])
        g = np.tanh(gates[:, 2 * hs : 3 * hs])
        o = F.sigmoid(gates[:, 3 * hs : 4 * hs])
        c_new = f * c_prev + i * g
        h_new = o * np.tanh(c_new)
        self._cache = (i, f, g, o, c_prev, c_new)
        return h_new, c_new

    def backward(
        self, grad_h: np.ndarray, grad_c: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Back-propagate through one step; returns (grad_x, grad_h_prev, grad_c_prev)."""
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        i, f, g, o, c_prev, c_new = self._cache
        if grad_c is None:
            grad_c = np.zeros_like(grad_h)

        tanh_c = np.tanh(c_new)
        grad_o = grad_h * tanh_c
        grad_c_total = grad_c + grad_h * o * (1.0 - tanh_c * tanh_c)
        grad_i = grad_c_total * g
        grad_f = grad_c_total * c_prev
        grad_g = grad_c_total * i
        grad_c_prev = grad_c_total * f

        grad_gates = np.concatenate(
            [
                grad_i * i * (1.0 - i),
                grad_f * f * (1.0 - f),
                grad_g * (1.0 - g * g),
                grad_o * o * (1.0 - o),
            ],
            axis=1,
        )
        grad_x = self.input_proj.backward(grad_gates)
        grad_h_prev = self.hidden_proj.backward(grad_gates)
        return grad_x, grad_h_prev, grad_c_prev

    def initial_state(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero hidden and cell state for a new sequence."""
        shape = (batch_size, self.hidden_size)
        return np.zeros(shape, dtype=np.float32), np.zeros(shape, dtype=np.float32)


class GRUCell(Module):
    """A gated recurrent unit cell."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.input_proj = self.register_module(
            "input_proj",
            Linear(input_size, 3 * hidden_size, rng=rng, name=f"{self.name}.ih"),
        )
        self.hidden_proj = self.register_module(
            "hidden_proj",
            Linear(hidden_size, 3 * hidden_size, bias=False, rng=rng, name=f"{self.name}.hh"),
        )
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, h_prev: np.ndarray) -> np.ndarray:
        hs = self.hidden_size
        gates_x = self.input_proj(x)
        gates_h = self.hidden_proj(h_prev)
        r = F.sigmoid(gates_x[:, :hs] + gates_h[:, :hs])
        z = F.sigmoid(gates_x[:, hs : 2 * hs] + gates_h[:, hs : 2 * hs])
        n = np.tanh(gates_x[:, 2 * hs :] + r * gates_h[:, 2 * hs :])
        h_new = (1.0 - z) * n + z * h_prev
        self._cache = (r, z, n, h_prev, gates_h[:, 2 * hs :])
        return h_new

    def backward(self, grad_h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        r, z, n, h_prev, gates_h_n = self._cache
        hs = self.hidden_size

        grad_n = grad_h * (1.0 - z)
        grad_z = grad_h * (h_prev - n)
        grad_h_prev_direct = grad_h * z

        grad_n_pre = grad_n * (1.0 - n * n)
        grad_r = grad_n_pre * gates_h_n

        grad_gates_x = np.concatenate(
            [
                grad_r * r * (1.0 - r),
                grad_z * z * (1.0 - z),
                grad_n_pre,
            ],
            axis=1,
        )
        grad_gates_h = np.concatenate(
            [
                grad_r * r * (1.0 - r),
                grad_z * z * (1.0 - z),
                grad_n_pre * r,
            ],
            axis=1,
        )
        grad_x = self.input_proj.backward(grad_gates_x)
        grad_h_prev = self.hidden_proj.backward(grad_gates_h) + grad_h_prev_direct
        return grad_x, grad_h_prev

    def initial_state(self, batch_size: int) -> np.ndarray:
        """Zero hidden state for a new sequence."""
        return np.zeros((batch_size, self.hidden_size), dtype=np.float32)
