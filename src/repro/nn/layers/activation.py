"""Activation layers.

ReLU is the single most important layer for this paper: it is what creates
sparsity in the activations during the forward pass and, because its
backward pass masks gradients at the same positions, in the output
gradients during back-propagation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(x.dtype, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return np.where(self._mask, grad_out, 0.0).astype(grad_out.dtype, copy=False)


class LeakyReLU(Module):
    """Leaky ReLU with a small negative slope."""

    def __init__(self, negative_slope: float = 0.01, name: Optional[str] = None):
        super().__init__(name=name)
        self.negative_slope = negative_slope
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x).astype(
            x.dtype, copy=False
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return np.where(
            self._mask, grad_out, self.negative_slope * grad_out
        ).astype(grad_out.dtype, copy=False)


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = F.sigmoid(x)
        return self._output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward() called before forward()")
        return grad_out * self._output * (1.0 - self._output)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward() called before forward()")
        return grad_out * (1.0 - self._output * self._output)
