"""2D convolution layer with full forward/backward and operand tracing."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter


class Conv2D(Module):
    """A standard 2D convolution, the workhorse of the paper's workloads.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts ``C`` and ``F`` in the paper's notation.
    kernel_size:
        Square kernel side ``Kx = Ky``.
    stride, padding:
        Spatial stride and zero padding.
    bias:
        Whether to add a per-filter bias.
    """

    traceable = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng or init.default_rng(0)

        fan_in = in_channels * kernel_size * kernel_size
        weight = init.kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng
        )
        self.weight = self.register_parameter(
            "weight", Parameter(weight, name=f"{self.name}.weight")
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Parameter(init.zeros((out_channels,)), name=f"{self.name}.bias")
            )

        # Operand caches for tracing / backward.
        self._input: Optional[np.ndarray] = None
        self._cols: Optional[np.ndarray] = None
        self._grad_out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        bias = self.bias.data if self.bias is not None else None
        out, cols = F.conv2d_forward(
            x, self.weight.data, bias, self.stride, self.padding
        )
        self._cols = cols
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None or self._cols is None:
            raise RuntimeError("backward() called before forward()")
        self._grad_out = grad_out
        grad_input, grad_weight, grad_bias = F.conv2d_backward(
            grad_out, self._input, self.weight.data, self._cols, self.stride, self.padding
        )
        self.weight.accumulate_grad(grad_weight)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_bias)
        return grad_input

    def trace_operands(self) -> Dict[str, np.ndarray]:
        operands: Dict[str, np.ndarray] = {"weights": self.weight.data}
        if self._input is not None:
            operands["activations"] = self._input
        if self._grad_out is not None:
            operands["output_gradients"] = self._grad_out
        return operands

    def macs_per_sample(self, input_hw: tuple) -> int:
        """Number of MAC operations in the forward convolution of one sample."""
        h, w = input_hw
        out_h = F.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (
            out_h
            * out_w
            * self.out_channels
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )
