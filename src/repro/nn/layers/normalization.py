"""Normalisation layers.

The paper notes (Section 4.1) that DenseNet-121's batch-normalisation layers
between a convolution and the following ReLU "absorb" all sparsity in the
gradients flowing into the W*G convolution; modelling BN faithfully is what
reproduces that effect.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter


class BatchNorm2D(Module):
    """Batch normalisation over ``(N, C, H, W)`` tensors, per channel."""

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = self.register_parameter(
            "gamma", Parameter(init.ones((num_features,)), name=f"{self.name}.gamma")
        )
        self.beta = self.register_parameter(
            "beta", Parameter(init.zeros((num_features,)), name=f"{self.name}.beta")
        )
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var

        mean_b = mean.reshape(1, -1, 1, 1)
        std_b = np.sqrt(var + self.eps).reshape(1, -1, 1, 1)
        x_hat = (x - mean_b) / std_b
        out = self.gamma.data.reshape(1, -1, 1, 1) * x_hat + self.beta.data.reshape(
            1, -1, 1, 1
        )
        self._cache = (x_hat, std_b)
        return out.astype(np.float32, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_hat, std_b = self._cache
        n, c, h, w = grad_out.shape
        m = n * h * w

        grad_gamma = (grad_out * x_hat).sum(axis=(0, 2, 3))
        grad_beta = grad_out.sum(axis=(0, 2, 3))
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)

        gamma_b = self.gamma.data.reshape(1, -1, 1, 1)
        grad_xhat = grad_out * gamma_b
        grad_input = (
            grad_xhat
            - grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
            - x_hat * (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        ) / std_b
        # mean over (0,2,3) uses m elements per channel; formula already scaled
        return grad_input.astype(np.float32, copy=False)


class BatchNorm1D(Module):
    """Batch normalisation over ``(N, F)`` tensors, per feature."""

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = self.register_parameter(
            "gamma", Parameter(init.ones((num_features,)), name=f"{self.name}.gamma")
        )
        self.beta = self.register_parameter(
            "beta", Parameter(init.zeros((num_features,)), name=f"{self.name}.beta")
        )
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            ).astype(np.float32)
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            ).astype(np.float32)
        else:
            mean = self.running_mean
            var = self.running_var

        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std)
        return (self.gamma.data * x_hat + self.beta.data).astype(np.float32, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_hat, std = self._cache

        grad_gamma = (grad_out * x_hat).sum(axis=0)
        grad_beta = grad_out.sum(axis=0)
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)

        grad_xhat = grad_out * self.gamma.data
        grad_input = (
            grad_xhat
            - grad_xhat.mean(axis=0, keepdims=True)
            - x_hat * (grad_xhat * x_hat).mean(axis=0, keepdims=True)
        ) / std
        return grad_input.astype(np.float32, copy=False)


class LayerNorm(Module):
    """Layer normalisation over the last dimension of ``(N, F)`` tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, name: Optional[str] = None):
        super().__init__(name=name)
        self.num_features = num_features
        self.eps = eps
        self.gamma = self.register_parameter(
            "gamma", Parameter(init.ones((num_features,)), name=f"{self.name}.gamma")
        )
        self.beta = self.register_parameter(
            "beta", Parameter(init.zeros((num_features,)), name=f"{self.name}.beta")
        )
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean) / std
        self._cache = (x_hat, std)
        return (self.gamma.data * x_hat + self.beta.data).astype(np.float32, copy=False)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        x_hat, std = self._cache

        grad_gamma = (grad_out * x_hat).sum(axis=tuple(range(grad_out.ndim - 1)))
        grad_beta = grad_out.sum(axis=tuple(range(grad_out.ndim - 1)))
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)

        grad_xhat = grad_out * self.gamma.data
        grad_input = (
            grad_xhat
            - grad_xhat.mean(axis=-1, keepdims=True)
            - x_hat * (grad_xhat * x_hat).mean(axis=-1, keepdims=True)
        ) / std
        return grad_input.astype(np.float32, copy=False)
