"""Token embedding layer used by the language/captioning workloads."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer token ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        rng = rng or init.default_rng(0)
        weight = rng.normal(0.0, 0.1, size=(num_embeddings, embedding_dim)).astype(
            np.float32
        )
        self.weight = self.register_parameter(
            "weight", Parameter(weight, name=f"{self.name}.weight")
        )
        self._indices: Optional[np.ndarray] = None

    def forward(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        self._indices = indices
        return self.weight.data[indices]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._indices is None:
            raise RuntimeError("backward() called before forward()")
        grad_weight = np.zeros_like(self.weight.data)
        np.add.at(grad_weight, self._indices.reshape(-1), grad_out.reshape(-1, self.embedding_dim))
        self.weight.accumulate_grad(grad_weight)
        # Token ids have no gradient; return zeros of the index shape for API symmetry.
        return np.zeros(self._indices.shape, dtype=np.float32)

    def trace_operands(self) -> Dict[str, np.ndarray]:
        return {"weights": self.weight.data}
