"""Layer implementations for the numpy training substrate."""

from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.layers.activation import ReLU, Sigmoid, Tanh, LeakyReLU
from repro.nn.layers.normalization import BatchNorm2D, BatchNorm1D, LayerNorm
from repro.nn.layers.pooling import MaxPool2D, AvgPool2D, GlobalAvgPool2D
from repro.nn.layers.shape import Flatten, Concat, Add
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.embedding import Embedding
from repro.nn.layers.recurrent import LSTMCell, GRUCell, RNNCell

__all__ = [
    "Conv2D",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "LeakyReLU",
    "BatchNorm2D",
    "BatchNorm1D",
    "LayerNorm",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "Flatten",
    "Concat",
    "Add",
    "Dropout",
    "Embedding",
    "LSTMCell",
    "GRUCell",
    "RNNCell",
]
