"""Base classes for layers: :class:`Parameter` and :class:`Module`.

A :class:`Module` is a layer with a ``forward``/``backward`` pair.  Layers
whose math is one of the paper's three training convolutions additionally
expose a ``trace_operands()`` method that returns the raw operand tensors
(W, A, GO) so the tracing machinery can measure their sparsity without
knowing layer internals.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes
    ----------
    data:
        The parameter value.
    grad:
        The accumulated gradient, or ``None`` before the first backward pass.
    name:
        A human-readable identifier used in traces and pruning masks.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: Optional[np.ndarray] = None
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulated gradient buffer."""
        grad = np.asarray(grad, dtype=np.float32)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def sparsity(self) -> float:
        """Fraction of zero elements in the parameter value."""
        if self.data.size == 0:
            return 0.0
        return float(np.count_nonzero(self.data == 0.0)) / self.data.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`.  The base
    class provides parameter registration, train/eval mode and the generic
    trace interface.
    """

    #: set by layers that perform a convolution / matmul the accelerator runs
    traceable: bool = False

    def __init__(self, name: Optional[str] = None):
        self.name = name or self.__class__.__name__
        self.training = True
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}

    # -- registration -----------------------------------------------------
    def register_parameter(self, key: str, parameter: Parameter) -> Parameter:
        self._parameters[key] = parameter
        return parameter

    def register_module(self, key: str, module: "Module") -> "Module":
        self._modules[key] = module
        return module

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for parameter in self._parameters.values():
            yield parameter
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs."""
        for key, parameter in self._parameters.items():
            yield (f"{prefix}{key}" if not prefix else f"{prefix}.{key}", parameter)
        for key, module in self._modules.items():
            child_prefix = key if not prefix else f"{prefix}.{key}"
            yield from module.named_parameters(child_prefix)

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants depth-first."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def traceable_modules(self) -> List["Module"]:
        """All descendant layers whose operands should be traced."""
        return [m for m in self.modules() if m.traceable]

    # -- mode --------------------------------------------------------------
    def train(self) -> "Module":
        """Put the module (and children) in training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Put the module (and children) in evaluation mode."""
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    # -- computation -------------------------------------------------------
    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, *inputs: np.ndarray) -> np.ndarray:
        return self.forward(*inputs)

    # -- tracing -----------------------------------------------------------
    def trace_operands(self) -> Dict[str, np.ndarray]:
        """Return the operands of the last forward/backward pass.

        For traceable layers the dictionary contains ``"weights"``,
        ``"activations"`` and, after a backward pass, ``"output_gradients"``.
        Non-traceable layers return an empty dictionary.
        """
        return {}

    def parameter_count(self) -> int:
        """Total number of trainable scalars in this module tree."""
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.__class__.__name__}(name={self.name!r})"
