"""Parameter initialisation helpers (Kaiming / Xavier / uniform)."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation suited to ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple, fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot-uniform initialisation suited to tanh/sigmoid networks."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple) -> np.ndarray:
    """All-zero initialisation (biases, BN shift)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple) -> np.ndarray:
    """All-one initialisation (BN scale)."""
    return np.ones(shape, dtype=np.float32)


def default_rng(seed: int | None = None) -> np.random.Generator:
    """A seeded generator; the zoo uses per-model seeds for reproducibility."""
    return np.random.default_rng(seed)
