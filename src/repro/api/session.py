"""The :class:`Session` facade: one engine, warm caches, typed requests.

Before this layer existed every entry point hand-assembled its own
``AcceleratorConfig`` + ``ExperimentRunner``/``StudyRunner`` +
``SimulationEngine`` stack.  A session resolves the engine knobs exactly
once (explicit argument > ``REPRO_*`` env var > default, via
:func:`repro.engine.resolve_engine_options`), builds exactly one
:class:`~repro.engine.SimulationEngine` with the in-process result memo
enabled, and serves every workflow through it:

* ``simulate()`` / ``roofline()`` / ``scale()`` / ``sweep()`` /
  ``explore()`` — typed convenience wrappers that build the matching
  request;
* ``submit(request)`` — the single dispatch point the CLI, the
  ``repro serve`` batch service and programmatic callers all use.

Everything expensive is cached across calls: training traces (keyed by
workload + trace parameters), per-configuration runners, and — through
the engine memo — every simulated layer result.  Two identical requests
therefore train once and simulate once; the second is pure cache hits,
which the per-request :class:`~repro.engine.EngineStats` delta in the
:class:`~repro.api.schema.ApiResult` envelope makes visible.

Sessions are thread-safe: ``submit`` serialises execution under a lock,
so a multi-threaded server shares one warm cache safely.

Quickstart::

    from repro.api import Session

    session = Session(cache_dir="/tmp/repro-cache")   # knobs optional
    first = session.simulate("snli", epochs=1)
    again = session.simulate("snli", epochs=1)        # no retrain, no resim
    print(first.result.speedups["Total"], again.engine["cache_hits"])
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro._version import __version__
from repro.api.schema import (
    SCHEMA_VERSION,
    ApiResult,
    DiffRequest,
    DiffResult,
    ExploreRequest,
    ExploreResult,
    SchemaError,
    RooflineRequest,
    RooflineResult,
    ScaleRequest,
    ScaleResult,
    SimulateRequest,
    SimulateResult,
    SweepRequest,
    SweepResult,
    _ApiModel,
)
from repro.core.config import AcceleratorConfig
from repro.engine.engine import SimulationEngine
from repro.engine.options import EngineOptions, resolve_engine_options
from repro.models.registry import trace_workload
from repro.simulation.runner import ExperimentRunner
from repro.telemetry import metrics as _metrics
from repro.telemetry.tracing import configure as configure_telemetry
from repro.telemetry.tracing import get_tracer

Progress = Optional[Callable[[str], None]]

#: Structured per-unit-of-work hook: receives one dict per completed
#: study point (or scale reference/device pass).  Unlike ``progress``
#: (human-readable lines), events are machine-shaped — the job layer
#: forwards them verbatim onto each job's SSE stream.
EventHook = Optional[Callable[[Dict], None]]


class Session:
    """A long-lived facade over one simulation engine.

    Parameters
    ----------
    backend / jobs / cache_dir / shared_dir / telemetry_dir:
        Engine knobs; ``None`` falls back to the ``REPRO_BACKEND`` /
        ``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` / ``REPRO_SHARED_CACHE_DIR``
        / ``REPRO_TELEMETRY_DIR`` environment variables, then the
        defaults.  ``shared_dir`` points a fleet of serve workers at one
        cross-process memo tier so they stop re-simulating what a
        sibling already finished; ``telemetry_dir`` enables the
        process-wide span tracer (:mod:`repro.telemetry`) and every
        ``submit`` then records a ``session.submit`` span tree plus a
        metrics snapshot to the JSONL event log there.
    study_jobs:
        Default worker-process count for study execution (``repro
        explore`` / ``repro sweep``); ``None`` falls back to
        ``REPRO_STUDY_JOBS``, then serial.  Per-request ``study_jobs``
        fields override it.
    seed:
        Default model/dataset seed for requests that leave ``seed``
        unset (the CLI default is 0, so identical invocations produce
        identical traces and therefore cache hits).
    environ:
        Environment mapping for option resolution (tests pass a dict).
    max_cached_traces:
        Training traces kept warm, least-recently-used first out.
        Traces hold full operand masks — by far the largest cached
        object — so a long-lived server facing many distinct
        (model, trace-parameter) combinations stays bounded.  The layer
        result memo keeps only small per-layer cycle/traffic records and
        is left unbounded.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        shared_dir: Optional[str] = None,
        telemetry_dir: Optional[str] = None,
        study_jobs: Optional[int] = None,
        seed: int = 0,
        environ: Optional[Dict[str, str]] = None,
        max_cached_traces: int = 16,
    ):
        self.options: EngineOptions = resolve_engine_options(
            backend=backend, jobs=jobs, cache_dir=cache_dir,
            shared_dir=shared_dir, telemetry_dir=telemetry_dir,
            study_jobs=study_jobs, environ=environ,
        )
        if self.options.telemetry_dir:
            # Enable (or reuse) the process-wide tracer; sessions built
            # without a telemetry_dir leave the global state alone.
            configure_telemetry(self.options.telemetry_dir)
        self.seed = 0 if seed is None else int(seed)
        self.engine = SimulationEngine(
            backend=self.options.backend,
            jobs=self.options.jobs,
            cache_dir=self.options.cache_dir,
            shared_dir=self.options.shared_dir,
            memory_cache=True,
        )
        self._traces: "OrderedDict[Tuple, object]" = OrderedDict()
        self._max_cached_traces = max(1, int(max_cached_traces))
        self._runners: Dict[Tuple[str, int], ExperimentRunner] = {}
        self._lock = threading.RLock()
        #: Cache label for the in-flight request's engine-stats delta
        #: (handlers attaching a request-scoped disk cache update it).
        self._request_cache_dir: Optional[str] = self.options.cache_dir
        self._started = time.time()
        self.requests_served = 0
        self._handlers = {
            SimulateRequest.kind: self._run_simulate,
            RooflineRequest.kind: self._run_roofline,
            ScaleRequest.kind: self._run_scale,
            SweepRequest.kind: self._run_sweep,
            ExploreRequest.kind: self._run_explore,
            DiffRequest.kind: self._run_diff,
        }

    # ------------------------------------------------------------------
    # caches

    def _trace(
        self, model: str, epochs: int, batches_per_epoch: int,
        batch_size: int, seed: int, trace_max_batch: Optional[int] = None,
    ):
        """Train-and-trace one workload, memoised with LRU eviction."""
        key = (model, epochs, batches_per_epoch, batch_size, seed,
               trace_max_batch)
        if key in self._traces:
            self._traces.move_to_end(key)
        else:
            with get_tracer().span(
                "session.trace", model=model, epochs=epochs,
                batches_per_epoch=batches_per_epoch, batch_size=batch_size,
            ):
                self._traces[key] = trace_workload(
                    model, epochs=epochs, batches_per_epoch=batches_per_epoch,
                    batch_size=batch_size, seed=seed,
                    trace_max_batch=trace_max_batch,
                )
            while len(self._traces) > self._max_cached_traces:
                self._traces.popitem(last=False)
        _metrics.CACHED_TRACES.set(len(self._traces))
        return self._traces[key]

    def _runner(self, config: AcceleratorConfig, max_groups: int) -> ExperimentRunner:
        """A per-configuration runner sharing the session engine."""
        key = (repr(config), max_groups)
        if key not in self._runners:
            self._runners[key] = ExperimentRunner(
                config, max_groups=max_groups, engine=self.engine
            )
        return self._runners[key]

    def _seed_for(self, request) -> int:
        return self.seed if request.seed is None else request.seed

    # ------------------------------------------------------------------
    # public API

    def submit(
        self, request: _ApiModel, progress: Progress = None,
        on_event: EventHook = None,
    ) -> ApiResult:
        """Execute any request and return its :class:`ApiResult` envelope.

        ``progress`` receives human-readable status lines (training
        banners, per-point study progress); pass ``print`` for CLI-style
        output, ``None`` for silence.  ``on_event`` receives one
        structured dict per completed study point or scale device pass —
        the hook the job layer (:mod:`repro.jobs`) turns into SSE
        events; either callback may raise to abort the request at that
        boundary (how cooperative job cancellation works).  The
        envelope's ``engine`` field is the stats *delta* for this
        request alone, so cache effectiveness stays observable on a
        shared warm engine.
        """
        handler = self._handlers.get(getattr(request, "kind", None))
        if handler is None:
            raise TypeError(
                f"unsupported request type {type(request).__name__!r}; "
                f"expected one of {sorted(self._handlers)}"
            )
        tracer = get_tracer()
        with self._lock:
            request.validate()
            before = self.engine.stats.snapshot()
            self._request_cache_dir = before.cache_dir
            start = time.perf_counter()
            with tracer.span(
                "session.submit", kind=request.kind,
                model=getattr(request, "model", None),
            ) as span:
                result = handler(request, progress, on_event)
                elapsed = time.perf_counter() - start
                delta = self.engine.stats.since(before)
                span.set(
                    elapsed_seconds=round(elapsed, 6),
                    layers_simulated=delta.layers_simulated,
                    cache_hits=delta.cache_hits,
                )
            _metrics.REQUESTS_TOTAL.inc(kind=request.kind)
            _metrics.REQUEST_SECONDS.observe(elapsed, kind=request.kind)
            if tracer.enabled:
                tracer.emit_metrics(_metrics.get_registry())
            # A handler may have attached a request-scoped disk cache
            # (explore's <study_dir>/cache); the delta's metadata must
            # name the cache the work actually ran against, not the
            # already-detached state.
            delta.cache_dir = self._request_cache_dir
            # Study documents embed engine stats; make them the
            # per-request delta so a warm session reports this call's
            # work, not the engine's lifetime totals.
            if isinstance(result, (SweepResult, ExploreResult)):
                result.study["engine"] = delta.as_dict()
            self.requests_served += 1
            return ApiResult(
                kind=request.kind,
                result=result,
                engine=delta.as_dict(),
                elapsed_seconds=elapsed,
            )

    def simulate(self, model: str, progress: Progress = None, **params) -> ApiResult:
        """Build and submit a :class:`SimulateRequest` for ``model``."""
        return self.submit(SimulateRequest(model=model, **params), progress=progress)

    def roofline(self, model: str, progress: Progress = None, **params) -> ApiResult:
        """Build and submit a :class:`RooflineRequest` for ``model``."""
        return self.submit(RooflineRequest(model=model, **params), progress=progress)

    def scale(self, model: str, progress: Progress = None, **params) -> ApiResult:
        """Build and submit a :class:`ScaleRequest` for ``model``."""
        return self.submit(ScaleRequest(model=model, **params), progress=progress)

    def sweep(
        self, model: str, knob: str = "rows", values: Optional[List] = None,
        progress: Progress = None, **params,
    ) -> ApiResult:
        """Build and submit a :class:`SweepRequest` for ``model``."""
        request = SweepRequest(
            model=model, knob=knob,
            **({"values": list(values)} if values is not None else {}),
            **params,
        )
        return self.submit(request, progress=progress)

    def explore(self, spec, progress: Progress = None, **params) -> ApiResult:
        """Build and submit an :class:`ExploreRequest` for a spec/dict."""
        payload = spec.to_dict() if hasattr(spec, "to_dict") else dict(spec)
        return self.submit(ExploreRequest(spec=payload, **params), progress=progress)

    def diff(self, a: Dict, b: Dict, progress: Progress = None, **params) -> ApiResult:
        """Build and submit a :class:`DiffRequest` for two documents."""
        return self.submit(DiffRequest(a=dict(a), b=dict(b), **params), progress=progress)

    def stats(self) -> Dict[str, object]:
        """Session-lifetime counters (the ``/v1/stats`` payload).

        Deliberately lock-free: it reads a handful of counters, and the
        stats endpoint must answer while a long ``submit`` holds the
        session lock — that is exactly when an operator wants to look.
        """
        return {
            "version": __version__,
            "schema_version": SCHEMA_VERSION,
            "uptime_seconds": time.time() - self._started,
            "requests_served": self.requests_served,
            "options": self.options.as_dict(),
            "default_seed": self.seed,
            "cached_traces": len(self._traces),
            "cached_runners": len(self._runners),
            "engine": self.engine.stats.as_dict(),
            "telemetry": get_tracer().describe(),
        }

    @property
    def started_at(self) -> float:
        """Unix time this session was built (for uptime reporting)."""
        return self._started

    # ------------------------------------------------------------------
    # request handlers

    def _run_simulate(
        self, request: SimulateRequest, progress: Progress,
        on_event: EventHook = None,
    ) -> SimulateResult:
        emit = progress or (lambda message: None)
        config = AcceleratorConfig().with_pe(datatype=request.datatype)
        emit(f"Accelerator: {config.describe()}")
        emit(f"Training {request.model} for {request.epochs} epoch(s)...")
        trace = self._trace(
            request.model, request.epochs, request.batches_per_epoch,
            request.batch_size, self._seed_for(request),
        )
        runner = self._runner(config, request.max_groups)
        model_result = runner.run_final_epoch(trace)
        potentials = ExperimentRunner.potential_speedups_from_trace(trace.final_epoch())
        report = runner.energy_report(model_result)
        return SimulateResult(
            model=request.model,
            config=config.describe(),
            potentials=potentials,
            speedups=model_result.per_operation_speedups(),
            core_energy_efficiency=report.core_efficiency,
            overall_energy_efficiency=report.overall_efficiency,
        )

    def _run_roofline(
        self, request: RooflineRequest, progress: Progress,
        on_event: EventHook = None,
    ) -> RooflineResult:
        from repro.analysis.roofline import roofline_report

        emit = progress or (lambda message: None)
        config = AcceleratorConfig().with_pe(datatype=request.datatype)
        dram_bandwidth = request.dram_bandwidth_gbps
        if dram_bandwidth is None:
            dram_bandwidth = config.memory.peak_dram_bandwidth_gbps
        config = config.with_hierarchy(
            dram_bandwidth_gbps=dram_bandwidth,
            sram_bandwidth_gbps=request.sram_bandwidth_gbps,
            sram_kb=request.sram_kb,
        )
        emit(f"Accelerator: {config.describe()}")
        emit(f"Training {request.model} for {request.epochs} epoch(s)...")
        trace = self._trace(
            request.model, request.epochs, request.batches_per_epoch,
            request.batch_size, self._seed_for(request),
        )
        runner = self._runner(config, request.max_groups)
        model_result = runner.run_final_epoch(trace)
        report = roofline_report(model_result, config)
        bound_counts = model_result.bound_counts()
        stalls = model_result.stall_cycles()
        cycles = model_result.cycles()
        compute_speedup = 1.0
        compute_tensordash = cycles["tensordash"] - stalls["tensordash"]
        if compute_tensordash:
            compute_speedup = (
                cycles["baseline"] - stalls["baseline"]
            ) / compute_tensordash
        return RooflineResult(
            model=request.model,
            config=config.describe(),
            roofline=report.as_dict(),
            memory_bound_operations=sum(
                n for bound, n in bound_counts.items() if bound != "compute"
            ),
            total_operations=sum(bound_counts.values()),
            stall_fraction=model_result.stall_fraction(),
            speedup=model_result.speedup(),
            compute_speedup=compute_speedup,
        )

    def _run_scale(
        self, request: ScaleRequest, progress: Progress,
        on_event: EventHook = None,
    ) -> ScaleResult:
        from repro.scale import Interconnect, ScaleRunner

        emit = progress or (lambda message: None)
        config = AcceleratorConfig().with_pe(datatype=request.datatype)
        interconnect = Interconnect(
            link_gbps=request.link_gbps,
            hop_latency_cycles=request.hop_latency_cycles,
        )
        emit(f"Accelerator: {config.describe()}")
        emit(f"Scaling: {request.num_devices} device(s), "
             f"{request.partition} partition, {interconnect.describe()}")
        emit(f"Training {request.model} for {request.epochs} epoch(s)...")
        trace = self._trace(
            request.model, request.epochs, request.batches_per_epoch,
            request.batch_size, self._seed_for(request),
            trace_max_batch=request.trace_max_batch,
        )
        # The simulator's own batch clip must not undo a raised trace
        # cap, or data-parallel shards collapse back onto the default.
        from repro.training.trainer import DEFAULT_TRACE_MAX_BATCH

        max_batch = (
            DEFAULT_TRACE_MAX_BATCH
            if request.trace_max_batch is None
            else max(DEFAULT_TRACE_MAX_BATCH, request.trace_max_batch)
        )
        runner = ScaleRunner(
            config=config,
            engine=self.engine,
            max_groups=request.max_groups,
            max_batch=max_batch,
        )
        report = runner.run(
            trace.final_epoch(),
            workload=request.model,
            num_devices=request.num_devices,
            partition=request.partition,
            interconnect=interconnect,
            on_event=on_event,
        )
        return ScaleResult(
            model=request.model,
            config=config.describe(),
            partition=request.partition,
            num_devices=request.num_devices,
            link=interconnect.describe(),
            speedup=report.speedup,
            efficiency=report.efficiency,
            comm_fraction=report.comm_fraction,
            single_device_cycles=report.single_device_cycles,
            scaled_cycles=report.scaled_cycles,
            report=report.as_dict(),
        )

    def _study_runner(self, spec, study_dir=None, emit_trace=True,
                      study_jobs=None):
        """A study runner wired onto the session engine and trace cache.

        ``study_jobs`` (a per-request override, else the session's
        resolved option) fans point groups across worker processes;
        workers inherit the session's shared-tier directory so they
        collapse duplicate work with the warm parent engine.
        """
        from repro.explore.runner import StudyRunner

        def trace_fn(workload: str):
            return self._trace(
                workload, spec.epochs, spec.batches_per_epoch,
                spec.batch_size, spec.seed,
                trace_max_batch=spec.trace_max_batch,
            )

        if study_jobs is None:
            study_jobs = self.options.study_jobs
        return StudyRunner(
            spec,
            study_dir=study_dir,
            backend=self.options.backend,
            jobs=self.options.jobs,
            cache_dir=self.options.cache_dir,
            engine=self.engine,
            study_jobs=study_jobs,
            shared_dir=self.options.shared_dir,
            trace_fn=trace_fn,
        )

    def _run_sweep(
        self, request: SweepRequest, progress: Progress,
        on_event: EventHook = None,
    ) -> SweepResult:
        from repro.explore.report import study_to_dict
        from repro.explore.spec import SCALE_KNOBS, StudySpec

        emit = progress or (lambda message: None)
        values = list(request.values)
        objectives = ["speedup", "core_energy_efficiency", "energy_efficiency"]
        if request.knob in SCALE_KNOBS:
            # Scaling sweeps table the scaling curve, not the energy one.
            objectives = ["scaled_speedup", "scaling_efficiency", "comm_fraction"]
        spec = StudySpec(
            name=f"{request.model}-{request.knob}-sweep",
            workloads=[request.model],
            knobs={request.knob: values},
            epochs=request.epochs,
            batches_per_epoch=request.batches_per_epoch,
            batch_size=request.batch_size,
            max_groups=request.max_groups,
            trace_max_batch=request.trace_max_batch,
            seed=self._seed_for(request),
            objectives=objectives,
        )
        emit(f"Training {request.model} once; sweeping {request.knob} over {values}...")
        runner = self._study_runner(spec, study_jobs=request.study_jobs)
        study = runner.run(on_event=on_event)
        # Points executed in study worker processes never touched this
        # engine's counters; fold the exact per-worker deltas in so the
        # request envelope and /v1/stats stay truthful under --study-jobs.
        for delta in runner.worker_stats:
            self.engine.stats.absorb(delta)
        return SweepResult(
            model=request.model,
            knob=request.knob,
            values=values,
            study=study_to_dict(study),
        )

    def _run_explore(
        self, request: ExploreRequest, progress: Progress,
        on_event: EventHook = None,
    ) -> ExploreResult:
        from repro.explore.report import study_to_dict

        spec = request.resolved_spec()
        runner = self._study_runner(
            spec, study_dir=request.study_dir, study_jobs=request.study_jobs
        )
        # Studies with a study_dir persist layer results on disk (the
        # PR 2 contract: a killed study resumes in a *new process* with
        # layer-level cache hits).  The shared engine normally has no
        # disk cache, so attach the study's for the duration of the run;
        # an engine-level cache_dir, when configured, wins inside.
        study_cache = Path(request.study_dir) / "cache" if request.study_dir else None
        with self.engine.disk_cache(study_cache) as engine:
            self._request_cache_dir = engine.stats.cache_dir
            study = runner.run(
                resume=request.resume, progress=progress, on_event=on_event
            )
        # As in _run_sweep: worker-process simulation is invisible to the
        # session engine until its exact deltas are absorbed.
        for delta in runner.worker_stats:
            self.engine.stats.absorb(delta)
        return ExploreResult(study=study_to_dict(study, request.objectives))

    def _run_diff(
        self, request: DiffRequest, progress: Progress,
        on_event: EventHook = None,
    ) -> DiffResult:
        """Lineage diff of two embedded documents; pure computation.

        No training or simulation happens here — the handler exists so
        diffs flow through the same session/service plumbing (telemetry,
        metrics, ``/v1/diff``) as every other request kind.
        """
        from repro.lineage.bench import (
            DEFAULT_BENCH_TOLERANCE,
            diff_bench,
            load_bench_side,
        )
        from repro.lineage.diff import HELD, REGRESSED, diff_snapshots
        from repro.lineage.snapshot import ManifestSnapshot, SnapshotError

        emit = progress or (lambda message: None)
        if request.mode == "bench":
            tolerance = (
                request.tolerance
                if request.tolerance is not None
                else DEFAULT_BENCH_TOLERANCE
            )
            try:
                a_label, a_docs = load_bench_side(request.a, request.a_label or "a")
                b_label, b_docs = load_bench_side(request.b, request.b_label or "b")
            except ValueError as exc:
                raise SchemaError("DiffRequest", str(exc)) from exc
            diff = diff_bench(
                a_docs, b_docs, tolerance=tolerance,
                a_source=a_label, b_source=b_label,
            )
            summary = diff.summary()
            emit(
                f"Watched {summary['watched']} BENCH metric(s): "
                f"{summary['regressed']} regressed, "
                f"{summary['improved']} improved"
            )
            return DiffResult(
                mode="bench",
                a=diff.a_source,
                b=diff.b_source,
                tolerance=tolerance,
                identical=diff.identical,
                regressions=diff.regressions,
                changed=sum(
                    1 for row in diff.rows if row["classification"] != HELD
                ),
                summary=summary,
                deltas=[dict(row) for row in diff.rows],
                warnings=list(diff.warnings),
            )
        tolerance = request.tolerance if request.tolerance is not None else 0.0
        ignore = tuple(request.ignore or ())
        snapshots = []
        for side in ("a", "b"):
            label = getattr(request, f"{side}_label") or side
            try:
                snapshots.append(
                    ManifestSnapshot.from_payload(
                        getattr(request, side), source=label, ignore=ignore
                    )
                )
            except SnapshotError as exc:
                raise SchemaError(f"DiffRequest.{side}", str(exc)) from exc
        diff = diff_snapshots(
            snapshots[0], snapshots[1],
            tolerance=tolerance, objectives=request.objectives,
        )
        emit(
            f"Matched {diff.matched} point(s): "
            f"{diff.count(REGRESSED)} regressed, {len(diff.deltas)} delta(s)"
        )
        return DiffResult(
            mode="study",
            a=diff.a_source,
            b=diff.b_source,
            tolerance=tolerance,
            identical=diff.identical,
            regressions=(
                diff.count(REGRESSED)
                + len(diff.removed)
                + len(diff.frontier.get("left", []))
            ),
            changed=len(diff.deltas) + len(diff.added) + len(diff.removed),
            summary=diff.summary(),
            deltas=[delta.to_dict() for delta in diff.deltas],
            added=list(diff.added),
            removed=list(diff.removed),
            frontier=dict(diff.frontier),
            attribution=[dict(entry) for entry in diff.attribution],
            warnings=list(diff.warnings),
        )
