"""``repro serve``: a batch simulation service over one shared session.

A deliberately small HTTP layer — stdlib :mod:`http.server` only, no new
dependencies — that exposes the :class:`~repro.api.Session` facade to
concurrent clients:

* ``POST /v1/simulate`` / ``/v1/roofline`` / ``/v1/scale`` /
  ``/v1/sweep`` / ``/v1/explore`` — body is the matching request document from
  :mod:`repro.api.schema` (the ``kind`` tag may be omitted; the path
  implies it).  Responds with the :class:`~repro.api.schema.ApiResult`
  envelope as JSON — *blocking*: the connection is held for the
  request's full wall-clock.
* ``POST /v1/jobs`` — the asynchronous alternative: the body is any
  request document (``kind`` required — the path implies nothing) and
  the response is an immediate ``202`` with a
  :class:`~repro.api.schema.JobRecord`.  The job executes on the
  server's :class:`~repro.jobs.JobStore` worker pool; observe it via
  ``GET /v1/jobs`` (list), ``GET /v1/jobs/<id>`` (one record),
  ``GET /v1/jobs/<id>/events`` (a Server-Sent-Events stream of per-point
  progress; ``?since=SEQ`` resumes after a dropped connection),
  ``GET /v1/jobs/<id>/result`` (the finished job's envelope) and
  ``POST /v1/jobs/<id>/cancel`` (cooperative, stops at the next study
  point).  See ``docs/jobs.md``.
* ``GET /v1/health`` — liveness: package version, schema version,
  uptime, telemetry status, endpoints, job-store summary and registered
  workloads — enough for a load balancer or job supervisor to
  introspect a worker.
* ``GET /v1/stats`` — session counters: requests served, cached
  traces/runners, engine backend and cache hit/miss totals.
* ``GET /v1/metrics`` — the process-wide metrics registry
  (:mod:`repro.telemetry.metrics`) in Prometheus text exposition format:
  request-latency histograms, per-tier cache hit counters, layers
  simulated, HTTP traffic, job states and queue depth.
  ``?format=json`` returns the structured JSON variant instead.

Access logging is structured: pass ``access_log`` (the ``--access-log``
flag) and every response appends one JSON line — method, path, status,
duration and request/response sizes — to that file; the default is off
(tests and quiet deployments log nothing).  ``audit_log`` additionally
records every job submission and state transition as ``type: "job"``
records (:mod:`repro.telemetry.schema` validates them).

Requests are served by a :class:`~http.server.ThreadingHTTPServer`; the
session serialises simulation under its lock, so many clients safely
share one engine — the second client POSTing a workload the first already
ran gets pure cache hits, visible both in its own envelope's ``engine``
delta and in ``/v1/stats``.

Study requests (``/v1/sweep`` / ``/v1/explore``) may carry a
``study_jobs`` field to fan their points across worker processes; it
passes straight through to the session (``--study-jobs`` /
``REPRO_STUDY_JOBS`` set the server-wide default), and each worker's
engine joins the server's shared cache tier when one is configured —
see ``docs/performance.md``.

HTTP semantics are strict: invalid documents return ``400`` with
``{"error": ..., "field": ...}`` naming the offending field; unknown
paths return ``404`` listing the routes; a known path hit with the
wrong method returns ``405`` with an ``Allow`` header; bodies over the
``--max-body-mb`` limit return ``413``; submissions during shutdown
return ``503``.  Unexpected faults return ``500`` with the exception
text.

Shutdown is graceful: SIGTERM or SIGINT (Ctrl-C) stops accepting
connections, cancels queued jobs, drains running ones up to the
``--drain-seconds`` deadline, and flushes/closes the access and audit
logs before the process exits.
"""

from __future__ import annotations

import json
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.api.schema import (
    SCHEMA_VERSION,
    JOB_STATES,
    JOB_TERMINAL_STATES,
    REQUEST_TYPES,
    ExploreRequest,
    SchemaError,
    request_from_dict,
)
from repro.api.session import Session
from repro.jobs import JobStore, JobStoreClosed, UnknownJob
from repro.telemetry import metrics as _metrics
from repro.telemetry.tracing import get_tracer

#: Blocking POST routes: URL path -> request kind.
POST_ROUTES: Dict[str, str] = {
    f"/v1/{kind}": kind for kind in sorted(REQUEST_TYPES)
}

#: Every fixed route the service answers, for health payloads and 404 bodies.
ENDPOINTS = tuple(sorted(POST_ROUTES)) + (
    "/v1/health", "/v1/jobs", "/v1/metrics", "/v1/stats",
)

#: Per-job sub-routes: ``/v1/jobs/<id>`` plus an optional action suffix.
JOB_ROUTE = re.compile(r"^/v1/jobs/([A-Za-z0-9_.-]+)(?:/(events|result|cancel))?$")

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default request-body cap (``--max-body-mb``); a spec document is KBs.
DEFAULT_MAX_BODY_MB = 8.0

#: Seconds between SSE keep-alive comments on an idle event stream.
SSE_KEEPALIVE_SECONDS = 15.0


class _ShutdownRequest(Exception):
    """Raised out of ``serve_forever`` by the SIGTERM/SIGINT handlers."""


class ApiRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` traffic into the server's shared session."""

    server_version = f"repro/{__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client declaring a Content-Length it never sends
    #: parks this thread for at most this long, not forever.
    timeout = 120

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:   # noqa: A002
        # The stdlib's Apache-style stderr line is replaced by the
        # structured JSONL access log (``--access-log``); without one,
        # per-request logging is off — health-check spam stays out of
        # operator terminals and test output alike.
        pass

    def _log_access(self, status: int, response_bytes: int) -> None:
        """One structured access record per response (plus HTTP metrics)."""
        _metrics.HTTP_REQUESTS.inc(method=self.command or "?", status=str(status))
        started = getattr(self, "_began", None)
        duration_ms = (
            round((time.perf_counter() - started) * 1e3, 3)
            if started is not None else None
        )
        try:
            request_bytes = int(self.headers.get("Content-Length") or 0)
        except (ValueError, AttributeError):
            request_bytes = 0
        self.server.write_access_record({
            "time_s": round(time.time(), 6),
            "method": self.command,
            "path": self.path,
            "status": status,
            "duration_ms": duration_ms,
            "request_bytes": request_bytes,
            "response_bytes": response_bytes,
            "client": self.client_address[0] if self.client_address else None,
        })

    def _send_body(
        self, status: int, body: bytes, content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # Count and log before the body hits the socket: a client that
        # pipelines its next request the instant this response lands must
        # already see this one reflected in ``/v1/metrics``.
        self._log_access(status, len(body))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self, status: int, payload: Dict,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload, indent=2).encode() + b"\n"
        self._send_body(status, body, "application/json", headers=headers)

    def _read_body(self) -> Tuple[Optional[Dict], Optional[str], int]:
        """``(parsed body, None, 0)``, or ``(None, problem, status)``."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, "invalid Content-Length header", 400
        if length <= 0:
            return None, "request body required (a JSON request document)", 400
        limit = self.server.max_body_bytes
        if length > limit:
            return None, (
                f"request body of {length} bytes exceeds this server's limit "
                f"of {limit} bytes (raise --max-body-mb)"
            ), 413
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return None, f"invalid JSON body: {exc}", 400
        if not isinstance(payload, dict):
            return None, (
                f"request body must be a JSON object, got {type(payload).__name__}"
            ), 400
        return payload, None, 0

    def _check_study_dir(self, request) -> Optional[str]:
        """Why a client-supplied ``study_dir`` is unacceptable, or ``None``.

        ``study_dir`` makes the server create directories and write
        manifest/cache files wherever the path points, so over HTTP it is
        only honoured inside the operator-chosen ``--study-root``; with
        no root configured, requests carrying a ``study_dir`` are
        refused outright.
        """
        if not isinstance(request, ExploreRequest) or not request.study_dir:
            return None
        root = getattr(self.server, "study_root", None)
        if root is None:
            return ("study_dir is disabled on this server; start it with "
                    "--study-root DIR to allow study directories under DIR")
        requested = Path(request.study_dir)
        if not requested.is_absolute():
            requested = root / requested
        resolved = requested.resolve()
        if resolved != root and root not in resolved.parents:
            return f"study_dir must resolve under the server's study root {root}"
        request.study_dir = str(resolved)
        return None

    def _parse_request_body(self, implied_kind: Optional[str] = None):
        """The validated request object from the body, or ``None`` (sent).

        Shared by the blocking routes (``implied_kind`` from the path)
        and the job submission route (``kind`` must be explicit).  Sends
        the error response itself when the body is unusable.
        """
        payload, problem, status = self._read_body()
        if problem is not None:
            # The body may be partly or wholly unread; on a keep-alive
            # connection its bytes would be parsed as the next request
            # line, so drop the connection after answering.
            self.close_connection = True
            self._send_json(status, {"error": problem})
            return None
        if implied_kind is not None:
            payload.setdefault("kind", implied_kind)
            if payload["kind"] != implied_kind:
                self._send_json(400, {
                    "error": f"request kind {payload['kind']!r} does not match "
                             f"endpoint {urlsplit(self.path).path!r}",
                    "field": "kind",
                })
                return None
        try:
            request = request_from_dict(payload)
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc), "field": exc.field})
            return None
        problem = self._check_study_dir(request)
        if problem is not None:
            self._send_json(403, {"error": problem, "field": "study_dir"})
            return None
        return request

    # ------------------------------------------------------------------
    # routing

    def do_GET(self) -> None:   # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:   # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self._began = time.perf_counter()
        parts = urlsplit(self.path)
        path = parts.path
        query = parse_qs(parts.query)
        handlers = self._route(path, query)
        if handlers is None:
            self._send_json(404, {
                "error": f"unknown path {path!r}",
                "endpoints": list(ENDPOINTS),
            })
            return
        handler = handlers.get(method)
        if handler is None:
            allowed = ", ".join(sorted(handlers))
            self._send_json(405, {
                "error": f"method {method} is not allowed for {path!r}",
                "allow": sorted(handlers),
            }, headers={"Allow": allowed})
            return
        handler()

    def _route(self, path: str, query: Dict) -> Optional[Dict[str, Callable]]:
        """The ``{method: handler}`` table for ``path`` (``None`` = 404)."""
        kind = POST_ROUTES.get(path)
        if kind is not None:
            return {"POST": lambda: self._handle_blocking(kind)}
        if path == "/v1/health":
            return {"GET": self._handle_health}
        if path == "/v1/stats":
            return {"GET": lambda: self._send_json(200, self.server.session.stats())}
        if path == "/v1/metrics":
            return {"GET": lambda: self._handle_metrics(query)}
        if path == "/v1/jobs":
            return {
                "GET": lambda: self._handle_jobs_list(query),
                "POST": self._handle_jobs_submit,
            }
        match = JOB_ROUTE.match(path)
        if match:
            job_id, action = match.group(1), match.group(2)
            if action is None:
                return {"GET": lambda: self._handle_job_show(job_id)}
            if action == "events":
                return {"GET": lambda: self._handle_job_events(job_id, query)}
            if action == "result":
                return {"GET": lambda: self._handle_job_result(job_id)}
            return {"POST": lambda: self._handle_job_cancel(job_id)}
        return None

    # ------------------------------------------------------------------
    # fixed GET routes

    def _handle_health(self) -> None:
        from repro.models.registry import available_models

        self._send_json(200, {
            "status": "ok",
            "version": __version__,
            "schema_version": SCHEMA_VERSION,
            "uptime_seconds": round(
                time.time() - self.server.session.started_at, 3
            ),
            "telemetry": get_tracer().describe(),
            "endpoints": list(ENDPOINTS),
            "models": available_models(),
            "jobs": self.server.jobs.describe(),
        })

    def _handle_metrics(self, query: Dict) -> None:
        registry = _metrics.get_registry()
        if "json" in query.get("format", []):
            self._send_json(200, registry.as_dict())
        else:
            self._send_body(
                200, registry.render_prometheus().encode("utf-8"),
                PROMETHEUS_CONTENT_TYPE,
            )

    # ------------------------------------------------------------------
    # blocking request routes

    def _handle_blocking(self, kind: str) -> None:
        request = self._parse_request_body(implied_kind=kind)
        if request is None:
            return
        try:
            result = self.server.session.submit(request)
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc), "field": exc.field})
            return
        except Exception as exc:   # noqa: BLE001 - keep the server alive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send_json(200, result.to_dict())

    # ------------------------------------------------------------------
    # job routes

    def _handle_jobs_submit(self) -> None:
        request = self._parse_request_body()
        if request is None:
            return
        try:
            job_id = self.server.jobs.submit(request)
        except JobStoreClosed as exc:
            self._send_json(503, {"error": str(exc)})
            return
        self._send_json(202, self.server.jobs.get(job_id).to_dict())

    def _handle_jobs_list(self, query: Dict) -> None:
        state = (query.get("state") or [None])[0]
        if state is not None and state not in JOB_STATES:
            self._send_json(400, {
                "error": f"unknown state {state!r}; known: {list(JOB_STATES)}",
                "field": "state",
            })
            return
        records = self.server.jobs.list(state=state)
        summary = self.server.jobs.describe()
        self._send_json(200, {
            "jobs": [record.to_dict() for record in records],
            "queue_depth": summary["queue_depth"],
            "workers": summary["workers"],
            "accepting": summary["accepting"],
        })

    def _handle_job_show(self, job_id: str) -> None:
        try:
            record = self.server.jobs.get(job_id)
        except UnknownJob as exc:
            self._send_json(404, {"error": str(exc)})
            return
        self._send_json(200, record.to_dict())

    def _handle_job_result(self, job_id: str) -> None:
        try:
            record = self.server.jobs.get(job_id)
        except UnknownJob as exc:
            self._send_json(404, {"error": str(exc)})
            return
        if record.state not in JOB_TERMINAL_STATES:
            self._send_json(409, {
                "error": f"job {job_id!r} is {record.state}; its result is "
                         f"available once it finishes",
                "state": record.state,
            })
            return
        self._send_json(200, self.server.jobs.result(job_id).to_dict())

    def _handle_job_cancel(self, job_id: str) -> None:
        try:
            record = self.server.jobs.cancel(job_id)
        except UnknownJob as exc:
            self._send_json(404, {"error": str(exc)})
            return
        self._send_json(200, record.to_dict())

    def _handle_job_events(self, job_id: str, query: Dict) -> None:
        """Stream a job's events as Server-Sent Events until it finishes.

        Each event is ``id: <seq>`` / ``event: <type>`` / ``data:
        <json>``; idle periods emit comment keep-alives.  ``?since=SEQ``
        replays only events after SEQ (reconnect support).  The stream
        has no Content-Length, so the connection closes when it ends.
        """
        store = self.server.jobs
        try:
            store.get(job_id)
        except UnknownJob as exc:
            self._send_json(404, {"error": str(exc)})
            return
        try:
            last = int((query.get("since") or ["0"])[0])
        except ValueError:
            self._send_json(400, {
                "error": "since must be an integer event sequence number",
                "field": "since",
            })
            return
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        try:
            while True:
                try:
                    events, state = store.wait_events(
                        job_id, last, timeout=SSE_KEEPALIVE_SECONDS
                    )
                except UnknownJob:
                    break   # evicted mid-stream; nothing more will come
                for event in events:
                    data = json.dumps(event, sort_keys=True)
                    chunk = (f"id: {event['seq']}\n"
                             f"event: {event['type']}\n"
                             f"data: {data}\n\n").encode("utf-8")
                    self.wfile.write(chunk)
                    sent += len(chunk)
                    last = event["seq"]
                if events:
                    self.wfile.flush()
                    if state in JOB_TERMINAL_STATES:
                        break
                elif state in JOB_TERMINAL_STATES:
                    break
                else:
                    keepalive = b": keep-alive\n\n"
                    self.wfile.write(keepalive)
                    self.wfile.flush()
                    sent += len(keepalive)
        except (BrokenPipeError, ConnectionResetError):
            pass   # client went away; the job keeps running
        finally:
            self._log_access(200, sent)


class ApiServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one shared :class:`Session`."""

    daemon_threads = True

    def __init__(
        self,
        address,
        session: Session,
        quiet: bool = False,
        study_root: Optional[Union[str, Path]] = None,
        access_log: Optional[Union[str, Path]] = None,
        job_workers: int = 2,
        job_retention: float = 3600.0,
        audit_log: Optional[Union[str, Path]] = None,
        max_body_mb: float = DEFAULT_MAX_BODY_MB,
    ):
        super().__init__(address, ApiRequestHandler)
        self.session = session
        self.quiet = quiet
        #: Directory client-supplied explore ``study_dir`` paths must
        #: resolve under; ``None`` refuses them entirely.
        self.study_root = Path(study_root).resolve() if study_root else None
        #: Request bodies above this many bytes are refused with 413.
        self.max_body_bytes = int(float(max_body_mb) * 1024 * 1024)
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_mb must be positive, got {max_body_mb}")
        #: The asynchronous job layer every ``/v1/jobs*`` route drives.
        self.jobs = JobStore(
            session,
            workers=job_workers,
            retention_seconds=job_retention,
            audit_log=audit_log,
        )
        #: Structured JSONL access log; ``None`` (the default) logs nothing.
        self.access_log = str(access_log) if access_log else None
        self._access_lock = threading.Lock()
        self._access_handle = None
        self._serving = False
        if self.access_log:
            Path(self.access_log).parent.mkdir(parents=True, exist_ok=True)
            self._access_handle = open(self.access_log, "a", encoding="utf-8")

    def write_access_record(self, record: Dict) -> None:
        """Append one access-log line (no-op without ``access_log``)."""
        if self._access_handle is None:
            return
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._access_lock:
            if self._access_handle is None:
                return
            self._access_handle.write(line)
            self._access_handle.flush()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        # Track whether the accept loop is live so shutdown_gracefully
        # can skip socketserver.shutdown() when it never started (that
        # call would otherwise block forever waiting for the loop).
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def shutdown_gracefully(self, drain_seconds: float = 10.0) -> None:
        """Stop accepting, drain jobs up to the deadline, close the logs.

        Safe to call from the thread that ran ``serve_forever`` (after
        it returned) or from another thread while it is still running.
        Idempotent — a second call finds everything already closed.
        """
        if self._serving:
            self.shutdown()
        self.jobs.shutdown(drain_seconds=drain_seconds)
        self.server_close()

    def server_close(self) -> None:
        super().server_close()
        # Servers torn down without the graceful path (tests, context
        # managers) still must not leak the store's audit handle or its
        # worker threads' queue sentinels.  socketserver.__init__ calls
        # server_close on bind failure, before these attributes exist —
        # let the original OSError surface instead of an AttributeError.
        jobs = getattr(self, "jobs", None)
        if jobs is not None:
            jobs.shutdown(drain_seconds=0.0)
        if getattr(self, "_access_handle", None) is not None:
            with self._access_lock:
                self._access_handle.close()
                self._access_handle = None


def create_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    session: Optional[Session] = None,
    quiet: bool = False,
    study_root: Optional[Union[str, Path]] = None,
    access_log: Optional[Union[str, Path]] = None,
    job_workers: int = 2,
    job_retention: float = 3600.0,
    audit_log: Optional[Union[str, Path]] = None,
    max_body_mb: float = DEFAULT_MAX_BODY_MB,
) -> ApiServer:
    """Build (but do not start) the batch service.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``; tests use this to avoid collisions.
    """
    return ApiServer(
        (host, port), session or Session(), quiet=quiet,
        study_root=study_root, access_log=access_log,
        job_workers=job_workers, job_retention=job_retention,
        audit_log=audit_log, max_body_mb=max_body_mb,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    session: Optional[Session] = None,
    quiet: bool = False,
    study_root: Optional[Union[str, Path]] = None,
    access_log: Optional[Union[str, Path]] = None,
    job_workers: int = 2,
    job_retention: float = 3600.0,
    audit_log: Optional[Union[str, Path]] = None,
    max_body_mb: float = DEFAULT_MAX_BODY_MB,
    drain_seconds: float = 10.0,
) -> int:
    """Run the service until interrupted (the ``repro serve`` entry point).

    SIGTERM and SIGINT both trigger the graceful path: stop accepting,
    cancel queued jobs, drain running ones up to ``drain_seconds``, and
    flush the access/audit logs before returning.
    """
    server = create_server(
        host=host, port=port, session=session, quiet=quiet,
        study_root=study_root, access_log=access_log,
        job_workers=job_workers, job_retention=job_retention,
        audit_log=audit_log, max_body_mb=max_body_mb,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro {__version__} serving on http://{bound_host}:{bound_port}  "
          f"(POST {', '.join(sorted(POST_ROUTES))}, /v1/jobs; "
          f"GET /v1/health, /v1/jobs, /v1/metrics, /v1/stats)")

    def _raise_shutdown(signum, frame):
        raise _ShutdownRequest(signal.Signals(signum).name)

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(signum, _raise_shutdown)
        except ValueError:
            # Not the main thread (embedded/test use); Ctrl-C still
            # lands as KeyboardInterrupt below.
            pass
    try:
        server.serve_forever()
    except _ShutdownRequest as exc:
        print(f"\n{exc.args[0]}: draining jobs (up to {drain_seconds:g}s) "
              f"and shutting down")
    except KeyboardInterrupt:
        print(f"\nSIGINT: draining jobs (up to {drain_seconds:g}s) "
              f"and shutting down")
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:
                pass
        server.shutdown_gracefully(drain_seconds=drain_seconds)
    return 0
