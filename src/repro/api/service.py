"""``repro serve``: a batch simulation service over one shared session.

A deliberately small HTTP layer — stdlib :mod:`http.server` only, no new
dependencies — that exposes the :class:`~repro.api.Session` facade to
concurrent clients:

* ``POST /v1/simulate`` / ``/v1/roofline`` / ``/v1/scale`` /
  ``/v1/sweep`` / ``/v1/explore`` — body is the matching request document from
  :mod:`repro.api.schema` (the ``kind`` tag may be omitted; the path
  implies it).  Responds with the :class:`~repro.api.schema.ApiResult`
  envelope as JSON.
* ``GET /v1/health`` — liveness: package version, schema version,
  uptime, telemetry status, endpoints and registered workloads — enough
  for a load balancer or job supervisor to introspect a worker.
* ``GET /v1/stats`` — session counters: requests served, cached
  traces/runners, engine backend and cache hit/miss totals.
* ``GET /v1/metrics`` — the process-wide metrics registry
  (:mod:`repro.telemetry.metrics`) in Prometheus text exposition format:
  request-latency histograms, per-tier cache hit counters, layers
  simulated, HTTP traffic.  ``?format=json`` returns the structured
  JSON variant instead.

Access logging is structured: pass ``access_log`` (the ``--access-log``
flag) and every response appends one JSON line — method, path, status,
duration and request/response sizes — to that file; the default is off
(tests and quiet deployments log nothing).  The old Apache-style
``log_message`` stderr noise is gone either way.

Requests are served by a :class:`~http.server.ThreadingHTTPServer`; the
session serialises simulation under its lock, so many clients safely
share one engine — the second client POSTing a workload the first already
ran gets pure cache hits, visible both in its own envelope's ``engine``
delta and in ``/v1/stats``.

Study requests (``/v1/sweep`` / ``/v1/explore``) may carry a
``study_jobs`` field to fan their points across worker processes; it
passes straight through to the session (``--study-jobs`` /
``REPRO_STUDY_JOBS`` set the server-wide default), and each worker's
engine joins the server's shared cache tier when one is configured —
see ``docs/performance.md``.

Invalid documents return ``400`` with ``{"error": ..., "field": ...}``
naming the offending field; unknown paths return ``404`` listing the
routes.  Unexpected faults return ``500`` with the exception text.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro._version import __version__
from repro.api.schema import (
    SCHEMA_VERSION,
    REQUEST_TYPES,
    ExploreRequest,
    SchemaError,
    request_from_dict,
)
from repro.api.session import Session
from repro.telemetry import metrics as _metrics
from repro.telemetry.tracing import get_tracer

#: POST routes: URL path -> request kind.
POST_ROUTES: Dict[str, str] = {
    f"/v1/{kind}": kind for kind in sorted(REQUEST_TYPES)
}

#: Every route the service answers, for health payloads and 404 bodies.
ENDPOINTS = tuple(sorted(POST_ROUTES)) + ("/v1/health", "/v1/metrics", "/v1/stats")

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request bodies above this size are rejected (a spec document is KBs).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ApiRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/*`` traffic into the server's shared session."""

    server_version = f"repro/{__version__}"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a client declaring a Content-Length it never sends
    #: parks this thread for at most this long, not forever.
    timeout = 120

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:   # noqa: A002
        # The stdlib's Apache-style stderr line is replaced by the
        # structured JSONL access log (``--access-log``); without one,
        # per-request logging is off — health-check spam stays out of
        # operator terminals and test output alike.
        pass

    def _log_access(self, status: int, response_bytes: int) -> None:
        """One structured access record per response (plus HTTP metrics)."""
        _metrics.HTTP_REQUESTS.inc(method=self.command or "?", status=str(status))
        started = getattr(self, "_began", None)
        duration_ms = (
            round((time.perf_counter() - started) * 1e3, 3)
            if started is not None else None
        )
        try:
            request_bytes = int(self.headers.get("Content-Length") or 0)
        except (ValueError, AttributeError):
            request_bytes = 0
        self.server.write_access_record({
            "time_s": round(time.time(), 6),
            "method": self.command,
            "path": self.path,
            "status": status,
            "duration_ms": duration_ms,
            "request_bytes": request_bytes,
            "response_bytes": response_bytes,
            "client": self.client_address[0] if self.client_address else None,
        })

    def _send_body(self, status: int, body: bytes, content_type: str) -> None:
        # Count and log before the body hits the socket: a client that
        # pipelines its next request the instant this response lands must
        # already see this one reflected in ``/v1/metrics``.
        self._log_access(status, len(body))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict) -> None:
        body = json.dumps(payload, indent=2).encode() + b"\n"
        self._send_body(status, body, "application/json")

    def _read_body(self) -> Tuple[Optional[Dict], Optional[str]]:
        """The parsed JSON body, or ``(None, error message)``."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None, "invalid Content-Length header"
        if length <= 0:
            return None, "request body required (a JSON request document)"
        if length > MAX_BODY_BYTES:
            return None, f"request body exceeds {MAX_BODY_BYTES} bytes"
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return None, f"invalid JSON body: {exc}"
        if not isinstance(payload, dict):
            return None, f"request body must be a JSON object, got {type(payload).__name__}"
        return payload, None

    def _check_study_dir(self, request) -> Optional[str]:
        """Why a client-supplied ``study_dir`` is unacceptable, or ``None``.

        ``study_dir`` makes the server create directories and write
        manifest/cache files wherever the path points, so over HTTP it is
        only honoured inside the operator-chosen ``--study-root``; with
        no root configured, requests carrying a ``study_dir`` are
        refused outright.
        """
        if not isinstance(request, ExploreRequest) or not request.study_dir:
            return None
        root = getattr(self.server, "study_root", None)
        if root is None:
            return ("study_dir is disabled on this server; start it with "
                    "--study-root DIR to allow study directories under DIR")
        requested = Path(request.study_dir)
        if not requested.is_absolute():
            requested = root / requested
        resolved = requested.resolve()
        if resolved != root and root not in resolved.parents:
            return f"study_dir must resolve under the server's study root {root}"
        request.study_dir = str(resolved)
        return None

    # ------------------------------------------------------------------
    def do_GET(self) -> None:   # noqa: N802 - http.server API
        self._began = time.perf_counter()
        parts = urlsplit(self.path)
        path = parts.path
        if path == "/v1/health":
            from repro.models.registry import available_models

            self._send_json(200, {
                "status": "ok",
                "version": __version__,
                "schema_version": SCHEMA_VERSION,
                "uptime_seconds": round(
                    time.time() - self.server.session.started_at, 3
                ),
                "telemetry": get_tracer().describe(),
                "endpoints": list(ENDPOINTS),
                "models": available_models(),
            })
        elif path == "/v1/stats":
            self._send_json(200, self.server.session.stats())
        elif path == "/v1/metrics":
            registry = _metrics.get_registry()
            wants_json = "json" in parse_qs(parts.query).get("format", [])
            if wants_json:
                self._send_json(200, registry.as_dict())
            else:
                self._send_body(
                    200, registry.render_prometheus().encode("utf-8"),
                    PROMETHEUS_CONTENT_TYPE,
                )
        else:
            self._send_json(404, {
                "error": f"unknown path {path!r}",
                "endpoints": list(ENDPOINTS),
            })

    def do_POST(self) -> None:   # noqa: N802 - http.server API
        self._began = time.perf_counter()
        path = urlsplit(self.path).path
        kind = POST_ROUTES.get(path)
        if kind is None:
            self._send_json(404, {
                "error": f"unknown path {path!r}",
                "endpoints": list(ENDPOINTS),
            })
            return
        payload, problem = self._read_body()
        if problem is not None:
            # The body may be partly or wholly unread; on a keep-alive
            # connection its bytes would be parsed as the next request
            # line, so drop the connection after answering.
            self.close_connection = True
            self._send_json(400, {"error": problem})
            return
        payload.setdefault("kind", kind)
        if payload["kind"] != kind:
            self._send_json(400, {
                "error": f"request kind {payload['kind']!r} does not match "
                         f"endpoint {path!r}",
                "field": "kind",
            })
            return
        try:
            request = request_from_dict(payload)
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc), "field": exc.field})
            return
        problem = self._check_study_dir(request)
        if problem is not None:
            self._send_json(403, {"error": problem, "field": "study_dir"})
            return
        try:
            result = self.server.session.submit(request)
        except SchemaError as exc:
            self._send_json(400, {"error": str(exc), "field": exc.field})
            return
        except Exception as exc:   # noqa: BLE001 - keep the server alive
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._send_json(200, result.to_dict())


class ApiServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one shared :class:`Session`."""

    daemon_threads = True

    def __init__(
        self,
        address,
        session: Session,
        quiet: bool = False,
        study_root: Optional[Union[str, Path]] = None,
        access_log: Optional[Union[str, Path]] = None,
    ):
        super().__init__(address, ApiRequestHandler)
        self.session = session
        self.quiet = quiet
        #: Directory client-supplied explore ``study_dir`` paths must
        #: resolve under; ``None`` refuses them entirely.
        self.study_root = Path(study_root).resolve() if study_root else None
        #: Structured JSONL access log; ``None`` (the default) logs nothing.
        self.access_log = str(access_log) if access_log else None
        self._access_lock = threading.Lock()
        self._access_handle = None
        if self.access_log:
            Path(self.access_log).parent.mkdir(parents=True, exist_ok=True)
            self._access_handle = open(self.access_log, "a", encoding="utf-8")

    def write_access_record(self, record: Dict) -> None:
        """Append one access-log line (no-op without ``access_log``)."""
        if self._access_handle is None:
            return
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._access_lock:
            self._access_handle.write(line)
            self._access_handle.flush()

    def server_close(self) -> None:
        super().server_close()
        if self._access_handle is not None:
            with self._access_lock:
                self._access_handle.close()
                self._access_handle = None


def create_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    session: Optional[Session] = None,
    quiet: bool = False,
    study_root: Optional[Union[str, Path]] = None,
    access_log: Optional[Union[str, Path]] = None,
) -> ApiServer:
    """Build (but do not start) the batch service.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``; tests use this to avoid collisions.
    """
    return ApiServer(
        (host, port), session or Session(), quiet=quiet,
        study_root=study_root, access_log=access_log,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    session: Optional[Session] = None,
    quiet: bool = False,
    study_root: Optional[Union[str, Path]] = None,
    access_log: Optional[Union[str, Path]] = None,
) -> int:
    """Run the service until interrupted (the ``repro serve`` entry point)."""
    server = create_server(
        host=host, port=port, session=session, quiet=quiet,
        study_root=study_root, access_log=access_log,
    )
    bound_host, bound_port = server.server_address[:2]
    print(f"repro {__version__} serving on http://{bound_host}:{bound_port}  "
          f"(POST {', '.join(sorted(POST_ROUTES))}; "
          f"GET /v1/health, /v1/metrics, /v1/stats)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
    return 0
