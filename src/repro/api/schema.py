"""Versioned, JSON-serialisable request/result schema for ``repro.api``.

Every workflow the repository supports — simulate, roofline, sweep,
explore, scale, diff — is described by one request dataclass and answered with
one result dataclass wrapped in an :class:`ApiResult` envelope.  All
types share the same contract:

* ``to_dict()`` produces a plain-JSON document (lists, dicts, scalars)
  tagged with ``kind`` and ``schema_version`` where the type is
  polymorphic;
* ``from_dict()`` validates eagerly and raises :class:`SchemaError`
  naming the offending field (``"SimulateRequest.epochs: ..."``) — never
  a bare ``KeyError`` or ``TypeError``;
* ``from_dict(to_dict(x)) == x`` round-trips exactly, including through
  ``json.dumps``/``json.loads``.

The schema is the wire format of the ``repro serve`` batch service and
the argument format of :meth:`repro.api.Session.submit`; the CLI builds
these requests from its flags, so every entry point speaks one language.
``SCHEMA_VERSION`` is bumped on breaking changes; documents from newer
majors are rejected with a clear error instead of being misread.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional

#: Version of the request/result wire format.  Incremented on breaking
#: changes; ``from_dict`` rejects documents from newer versions.
SCHEMA_VERSION = 1

#: Datatypes the PE model supports (mirrors the CLI choices).
DATATYPES = ("fp32", "bfloat16")


class SchemaError(ValueError):
    """An invalid request/result document.  Always names the bad field."""

    def __init__(self, field_name: str, message: str):
        self.field = field_name
        super().__init__(f"{field_name}: {message}")


# ----------------------------------------------------------------------
# validation helpers

def _plain(value: Any) -> Any:
    """Copy ``value`` into plain-JSON shape (tuples -> lists, dict copies)."""
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


def _check_int(owner: str, name: str, value: Any, minimum: int = 1) -> None:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SchemaError(f"{owner}.{name}", f"expected an integer, got {value!r}")
    if value < minimum:
        raise SchemaError(f"{owner}.{name}", f"must be >= {minimum}, got {value}")


def _check_optional_number(
    owner: str, name: str, value: Any, minimum: float = 0.0
) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{owner}.{name}", f"expected a number, got {value!r}")
    if not math.isfinite(value):
        # NaN slips past ordering comparisons (NaN <= x is False), and
        # neither NaN nor inf is representable in strict JSON.
        raise SchemaError(f"{owner}.{name}", f"expected a finite number, got {value!r}")
    if value <= minimum:
        raise SchemaError(f"{owner}.{name}", f"must be > {minimum:g}, got {value}")


def _check_str(owner: str, name: str, value: Any) -> None:
    if not isinstance(value, str) or not value:
        raise SchemaError(f"{owner}.{name}", f"expected a non-empty string, got {value!r}")


def _check_model(owner: str, value: Any) -> None:
    _check_str(owner, "model", value)
    from repro.models.registry import available_models

    if value not in available_models():
        raise SchemaError(
            f"{owner}.model",
            f"unknown workload {value!r}; known: {available_models()}",
        )


def _check_number_map(owner: str, name: str, value: Any) -> None:
    if not isinstance(value, dict):
        raise SchemaError(f"{owner}.{name}", f"expected an object, got {value!r}")
    for key, item in value.items():
        if not isinstance(key, str):
            raise SchemaError(f"{owner}.{name}", f"non-string key {key!r}")
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise SchemaError(
                f"{owner}.{name}", f"value for {key!r} is not a number: {item!r}"
            )


# ----------------------------------------------------------------------
# shared (de)serialisation machinery

@dataclass
class _ApiModel:
    """Base for every schema type: dict round-trip + eager validation."""

    #: Wire tag for polymorphic dispatch; ``None`` for context-typed models.
    kind: ClassVar[Optional[str]] = None

    def validate(self) -> None:   # pragma: no cover - overridden
        """Raise :class:`SchemaError` on the first invalid field."""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON document; ``from_dict`` round-trips it exactly."""
        payload: Dict[str, Any] = {}
        if self.kind is not None:
            payload["kind"] = self.kind
            payload["schema_version"] = SCHEMA_VERSION
        for spec in dataclasses.fields(self):
            payload[spec.name] = _plain(getattr(self, spec.name))
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "_ApiModel":
        """Build and validate an instance from a plain dict."""
        name = cls.__name__
        if not isinstance(payload, dict):
            raise SchemaError(name, f"expected a JSON object, got {type(payload).__name__}")
        payload = dict(payload)
        kind = payload.pop("kind", None)
        if kind is not None and cls.kind is not None and kind != cls.kind:
            raise SchemaError(f"{name}.kind", f"expected {cls.kind!r}, got {kind!r}")
        version = payload.pop("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int) or isinstance(version, bool) or version < 1:
            raise SchemaError(f"{name}.schema_version", f"invalid version {version!r}")
        if version > SCHEMA_VERSION:
            raise SchemaError(
                f"{name}.schema_version",
                f"document version {version} is newer than this library "
                f"supports (schema {SCHEMA_VERSION}); upgrade repro",
            )
        specs = {spec.name: spec for spec in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - set(specs))
        if unknown:
            raise SchemaError(
                f"{name}.{unknown[0]}",
                f"unknown field (known fields: {sorted(specs)})",
            )
        for field_name, spec in specs.items():
            required = (
                spec.default is dataclasses.MISSING
                and spec.default_factory is dataclasses.MISSING
            )
            if required and field_name not in payload:
                raise SchemaError(f"{name}.{field_name}", "required field is missing")
        # Construction validates via __post_init__; no second pass needed.
        return cls(**payload)

    def __post_init__(self) -> None:
        self.validate()


# ----------------------------------------------------------------------
# requests

@dataclass
class SimulateRequest(_ApiModel):
    """Train one workload briefly, trace it, simulate baseline vs TensorDash."""

    kind: ClassVar[str] = "simulate"

    model: str
    epochs: int = 2
    batches_per_epoch: int = 2
    batch_size: int = 8
    max_groups: int = 64
    datatype: str = "fp32"
    #: ``None`` means "use the session's default seed".
    seed: Optional[int] = None

    def validate(self) -> None:
        owner = type(self).__name__
        _check_model(owner, self.model)
        for name in ("epochs", "batches_per_epoch", "batch_size", "max_groups"):
            _check_int(owner, name, getattr(self, name))
        if self.datatype not in DATATYPES:
            raise SchemaError(
                f"{owner}.datatype",
                f"expected one of {list(DATATYPES)}, got {self.datatype!r}",
            )
        if self.seed is not None:
            _check_int(owner, "seed", self.seed, minimum=-(2 ** 31))


@dataclass
class RooflineRequest(SimulateRequest):
    """Simulate under a finite memory hierarchy and report the roofline.

    ``dram_bandwidth_gbps`` defaults (at execution time) to the Table 2
    machine's peak; ``sram_bandwidth_gbps`` and ``sram_kb`` default to
    unlimited, matching the CLI flags.
    """

    kind: ClassVar[str] = "roofline"

    dram_bandwidth_gbps: Optional[float] = None
    sram_bandwidth_gbps: Optional[float] = None
    sram_kb: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        owner = type(self).__name__
        _check_optional_number(owner, "dram_bandwidth_gbps", self.dram_bandwidth_gbps)
        _check_optional_number(owner, "sram_bandwidth_gbps", self.sram_bandwidth_gbps)
        if self.sram_kb is not None:
            _check_int(owner, "sram_kb", self.sram_kb)


@dataclass
class ScaleRequest(SimulateRequest):
    """Partition one workload across N simulated devices and report scaling.

    ``link_gbps`` / ``hop_latency_cycles`` parameterise the
    :class:`repro.scale.Interconnect`; ``link_gbps: null`` means an
    infinite link (with ``hop_latency_cycles: 0`` that is the ideal
    interconnect, under which ``num_devices: 1`` reproduces plain
    simulation bit-exactly).  ``trace_max_batch`` raises the traced
    samples kept per convolutional layer — set it to at least
    ``num_devices`` for balanced data-parallel shards (``null`` keeps
    the trainer's default of 4, matching ``simulate``).
    """

    kind: ClassVar[str] = "scale"

    num_devices: int = 2
    partition: str = "data"
    link_gbps: Optional[float] = 25.0
    hop_latency_cycles: int = 500
    trace_max_batch: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        owner = type(self).__name__
        from repro.scale.partition import PARTITIONS

        _check_int(owner, "num_devices", self.num_devices)
        if self.partition not in PARTITIONS:
            raise SchemaError(
                f"{owner}.partition",
                f"expected one of {list(PARTITIONS)}, got {self.partition!r}",
            )
        _check_optional_number(owner, "link_gbps", self.link_gbps)
        _check_int(owner, "hop_latency_cycles", self.hop_latency_cycles, minimum=0)
        if self.trace_max_batch is not None:
            _check_int(owner, "trace_max_batch", self.trace_max_batch)


@dataclass
class SweepRequest(_ApiModel):
    """Re-simulate one workload across a one-knob configuration sweep."""

    kind: ClassVar[str] = "sweep"

    model: str
    knob: str = "rows"
    values: List[Any] = field(default_factory=lambda: [1, 4, 8, 16])
    epochs: int = 2
    batches_per_epoch: int = 2
    batch_size: int = 8
    max_groups: int = 48
    seed: Optional[int] = None
    #: See :class:`ScaleRequest`; raise it when sweeping ``num_devices``.
    trace_max_batch: Optional[int] = None
    #: Worker processes for the sweep's study execution; ``None`` defers
    #: to the session's resolved ``study_jobs`` (1 = serial).
    study_jobs: Optional[int] = None

    def validate(self) -> None:
        owner = type(self).__name__
        _check_model(owner, self.model)
        from repro.core.config import AcceleratorConfig
        from repro.explore.spec import KNOBS, SCALE_KNOBS

        if self.knob not in KNOBS and self.knob not in SCALE_KNOBS:
            raise SchemaError(
                f"{owner}.knob",
                f"unknown knob {self.knob!r}; known: "
                f"{sorted(KNOBS) + sorted(SCALE_KNOBS)}",
            )
        if not isinstance(self.values, (list, tuple)) or not self.values:
            raise SchemaError(
                f"{owner}.values",
                f"expected a non-empty list of knob values, got {self.values!r}",
            )
        self.values = list(self.values)
        for value in self.values:
            try:
                if self.knob in KNOBS:
                    KNOBS[self.knob](AcceleratorConfig(), value)
                else:
                    SCALE_KNOBS[self.knob](value)
            except (ValueError, TypeError, KeyError) as exc:
                raise SchemaError(
                    f"{owner}.values", f"invalid value {value!r} for knob "
                    f"{self.knob!r}: {exc}"
                ) from exc
        for name in ("epochs", "batches_per_epoch", "batch_size", "max_groups"):
            _check_int(owner, name, getattr(self, name))
        if self.seed is not None:
            _check_int(owner, "seed", self.seed, minimum=-(2 ** 31))
        if self.trace_max_batch is not None:
            _check_int(owner, "trace_max_batch", self.trace_max_batch)
        if self.study_jobs is not None:
            _check_int(owner, "study_jobs", self.study_jobs)


@dataclass
class ExploreRequest(_ApiModel):
    """Run a declarative design-space study from an embedded spec."""

    kind: ClassVar[str] = "explore"

    #: A :class:`repro.explore.StudySpec` document (``StudySpec.to_dict``).
    spec: Dict[str, Any]
    study_dir: Optional[str] = None
    resume: bool = False
    #: Random-sample N points instead of the full cartesian product.
    sample: Optional[int] = None
    #: Overrides the spec's seed when given.
    seed: Optional[int] = None
    #: Frontier objectives overriding the spec's, e.g. ``["speedup"]``.
    objectives: Optional[List[str]] = None
    #: Worker processes for study execution; ``None`` defers to the
    #: session's resolved ``study_jobs`` (1 = serial).
    study_jobs: Optional[int] = None

    def validate(self) -> None:
        owner = type(self).__name__
        if not isinstance(self.spec, dict):
            raise SchemaError(
                f"{owner}.spec", f"expected a StudySpec object, got {self.spec!r}"
            )
        if self.study_dir is not None:
            _check_str(owner, "study_dir", self.study_dir)
        if not isinstance(self.resume, bool):
            raise SchemaError(f"{owner}.resume", f"expected a boolean, got {self.resume!r}")
        if self.sample is not None:
            _check_int(owner, "sample", self.sample)
        if self.seed is not None:
            _check_int(owner, "seed", self.seed, minimum=-(2 ** 31))
        if self.study_jobs is not None:
            _check_int(owner, "study_jobs", self.study_jobs)
        if self.objectives is not None:
            if not isinstance(self.objectives, (list, tuple)) or not self.objectives:
                raise SchemaError(
                    f"{owner}.objectives",
                    f"expected a non-empty list of metric names, got {self.objectives!r}",
                )
            self.objectives = [str(name) for name in self.objectives]
            from repro.explore.spec import parse_objectives

            try:
                parse_objectives(self.objectives)
            except ValueError as exc:
                raise SchemaError(f"{owner}.objectives", str(exc)) from exc
        # Validate the spec itself (and that any overrides compose with
        # it) before any training starts.
        self.resolved_spec()

    def resolved_spec(self):
        """The validated :class:`StudySpec` with sample/seed overrides applied."""
        from repro.explore.spec import StudySpec

        owner = type(self).__name__
        try:
            spec = StudySpec.from_dict(self.spec)
            if self.sample is not None:
                spec.mode = "random"
                spec.sample = self.sample
            if self.seed is not None:
                spec.seed = self.seed
            spec.validate()
        except ValueError as exc:
            raise SchemaError(f"{owner}.spec", str(exc)) from exc
        return spec


#: Diff comparison modes (see :mod:`repro.lineage`).
DIFF_MODES = ("study", "bench")


@dataclass
class DiffRequest(_ApiModel):
    """Compare two study manifests or two BENCH document sets.

    Both sides are *embedded documents*, not server-side paths — the
    service never reads the filesystem on behalf of a client.  The CLI
    (``repro diff``) loads files locally, normalises them, and submits
    this request through the session like every other subcommand.

    ``mode="study"``: ``a``/``b`` are study manifests (compacted
    ``manifest.json`` shape) or ``repro explore --format json`` study
    documents.  ``mode="bench"``: ``a``/``b`` are single BENCH documents
    or ``{name -> BENCH document}`` mappings.
    """

    kind: ClassVar[str] = "diff"

    a: Dict[str, Any]
    b: Dict[str, Any]
    mode: str = "study"
    #: Relative tolerance below which a metric counts as held; ``None``
    #: uses the mode default (0.0 for study, 0.25 for bench).
    tolerance: Optional[float] = None
    #: Metric names treated as noise and dropped before diffing (study).
    ignore: Optional[List[str]] = None
    #: Frontier objectives overriding the specs' (study mode).
    objectives: Optional[List[str]] = None
    #: Display labels for the two sides (default: source descriptions).
    a_label: Optional[str] = None
    b_label: Optional[str] = None

    def validate(self) -> None:
        owner = type(self).__name__
        for name in ("a", "b"):
            if not isinstance(getattr(self, name), dict):
                raise SchemaError(
                    f"{owner}.{name}",
                    f"expected a JSON object, got {getattr(self, name)!r}",
                )
        if self.mode not in DIFF_MODES:
            raise SchemaError(
                f"{owner}.mode", f"expected one of {DIFF_MODES}, got {self.mode!r}"
            )
        if self.tolerance is not None:
            if isinstance(self.tolerance, bool) or not isinstance(
                self.tolerance, (int, float)
            ):
                raise SchemaError(
                    f"{owner}.tolerance", f"expected a number, got {self.tolerance!r}"
                )
            if not math.isfinite(self.tolerance) or self.tolerance < 0:
                raise SchemaError(
                    f"{owner}.tolerance",
                    f"must be a finite number >= 0, got {self.tolerance!r}",
                )
        for name in ("ignore", "objectives"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, (list, tuple)) or not all(
                isinstance(item, str) and item for item in value
            ):
                raise SchemaError(
                    f"{owner}.{name}",
                    f"expected a list of non-empty strings, got {value!r}",
                )
            setattr(self, name, list(value))
        if self.objectives is not None:
            from repro.explore.spec import parse_objectives

            try:
                parse_objectives(self.objectives)
            except ValueError as exc:
                raise SchemaError(f"{owner}.objectives", str(exc)) from exc
        for name in ("a_label", "b_label"):
            if getattr(self, name) is not None:
                _check_str(owner, name, getattr(self, name))


#: Request types by wire tag, the dispatch table of :func:`request_from_dict`.
REQUEST_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        SimulateRequest,
        RooflineRequest,
        ScaleRequest,
        SweepRequest,
        ExploreRequest,
        DiffRequest,
    )
}


def request_from_dict(payload: Any) -> _ApiModel:
    """Parse any request document, dispatching on its ``kind`` tag."""
    if not isinstance(payload, dict):
        raise SchemaError("request", f"expected a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind is None:
        raise SchemaError(
            "request.kind",
            f"required field is missing (one of {sorted(REQUEST_TYPES)})",
        )
    request_type = REQUEST_TYPES.get(kind)
    if request_type is None:
        raise SchemaError(
            "request.kind", f"unknown kind {kind!r}; known: {sorted(REQUEST_TYPES)}"
        )
    return request_type.from_dict(payload)


# ----------------------------------------------------------------------
# results

@dataclass
class SimulateResult(_ApiModel):
    """Per-operation speedups and energy efficiency of one simulate run."""

    model: str
    config: str
    potentials: Dict[str, float] = field(default_factory=dict)
    speedups: Dict[str, float] = field(default_factory=dict)
    core_energy_efficiency: float = 1.0
    overall_energy_efficiency: float = 1.0

    def validate(self) -> None:
        owner = type(self).__name__
        _check_str(owner, "model", self.model)
        _check_str(owner, "config", self.config)
        _check_number_map(owner, "potentials", self.potentials)
        _check_number_map(owner, "speedups", self.speedups)
        for name in ("core_energy_efficiency", "overall_energy_efficiency"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"{owner}.{name}", f"expected a number, got {value!r}")


@dataclass
class RooflineResult(_ApiModel):
    """Roofline placement plus stall/bound summary of one run."""

    model: str
    config: str
    #: A :meth:`repro.analysis.roofline.RooflineReport.as_dict` document.
    roofline: Dict[str, Any] = field(default_factory=dict)
    memory_bound_operations: int = 0
    total_operations: int = 0
    stall_fraction: float = 0.0
    speedup: float = 1.0
    compute_speedup: float = 1.0

    def validate(self) -> None:
        owner = type(self).__name__
        _check_str(owner, "model", self.model)
        _check_str(owner, "config", self.config)
        if not isinstance(self.roofline, dict):
            raise SchemaError(
                f"{owner}.roofline", f"expected an object, got {self.roofline!r}"
            )
        for name in ("memory_bound_operations", "total_operations"):
            _check_int(owner, name, getattr(self, name), minimum=0)
        for name in ("stall_fraction", "speedup", "compute_speedup"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"{owner}.{name}", f"expected a number, got {value!r}")


@dataclass
class ScaleResult(_ApiModel):
    """Multi-device scaling outcome: headline numbers plus the full report."""

    model: str
    config: str
    partition: str = "data"
    num_devices: int = 1
    #: Human-readable interconnect summary (``Interconnect.describe()``).
    link: str = "ideal (unbounded)"
    speedup: float = 1.0
    efficiency: float = 1.0
    comm_fraction: float = 0.0
    single_device_cycles: int = 0
    scaled_cycles: int = 0
    #: A :meth:`repro.scale.ScalingReport.as_dict` document.
    report: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        owner = type(self).__name__
        _check_str(owner, "model", self.model)
        _check_str(owner, "config", self.config)
        _check_str(owner, "partition", self.partition)
        _check_str(owner, "link", self.link)
        _check_int(owner, "num_devices", self.num_devices)
        for name in ("single_device_cycles", "scaled_cycles"):
            _check_int(owner, name, getattr(self, name), minimum=0)
        for name in ("speedup", "efficiency", "comm_fraction"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"{owner}.{name}", f"expected a number, got {value!r}")
        if not isinstance(self.report, dict):
            raise SchemaError(
                f"{owner}.report", f"expected an object, got {self.report!r}"
            )


@dataclass
class SweepResult(_ApiModel):
    """One-knob sweep outcome: the underlying study document plus labels."""

    model: str
    knob: str
    values: List[Any] = field(default_factory=list)
    #: A :func:`repro.explore.report.study_to_dict` document.
    study: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        owner = type(self).__name__
        _check_str(owner, "model", self.model)
        _check_str(owner, "knob", self.knob)
        if not isinstance(self.values, (list, tuple)):
            raise SchemaError(f"{owner}.values", f"expected a list, got {self.values!r}")
        self.values = list(self.values)
        if not isinstance(self.study, dict):
            raise SchemaError(f"{owner}.study", f"expected an object, got {self.study!r}")


@dataclass
class ExploreResult(_ApiModel):
    """Design-space study outcome: the full study document."""

    #: A :func:`repro.explore.report.study_to_dict` document.
    study: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        owner = type(self).__name__
        if not isinstance(self.study, dict):
            raise SchemaError(f"{owner}.study", f"expected an object, got {self.study!r}")


@dataclass
class DiffResult(_ApiModel):
    """Outcome of a lineage diff (study or bench mode).

    ``deltas`` holds per-point metric deltas in study mode and watched
    BENCH metric rows in bench mode; ``regressions`` counts the entries
    ``--fail-on regressed`` trips on (regressed metrics + removed points
    + frontier departures for studies, gated regressed rows for bench),
    ``changed`` everything that moved at all.
    """

    mode: str = "study"
    a: str = ""
    b: str = ""
    tolerance: float = 0.0
    identical: bool = True
    regressions: int = 0
    changed: int = 0
    summary: Dict[str, Any] = field(default_factory=dict)
    deltas: List[Dict[str, Any]] = field(default_factory=list)
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    frontier: Dict[str, Any] = field(default_factory=dict)
    attribution: List[Dict[str, Any]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def validate(self) -> None:
        owner = type(self).__name__
        if self.mode not in DIFF_MODES:
            raise SchemaError(
                f"{owner}.mode", f"expected one of {DIFF_MODES}, got {self.mode!r}"
            )
        for name in ("a", "b"):
            if not isinstance(getattr(self, name), str):
                raise SchemaError(
                    f"{owner}.{name}",
                    f"expected a string, got {getattr(self, name)!r}",
                )
        if (
            isinstance(self.tolerance, bool)
            or not isinstance(self.tolerance, (int, float))
            or not math.isfinite(self.tolerance)
            or self.tolerance < 0
        ):
            raise SchemaError(
                f"{owner}.tolerance",
                f"expected a finite number >= 0, got {self.tolerance!r}",
            )
        if not isinstance(self.identical, bool):
            raise SchemaError(
                f"{owner}.identical", f"expected a boolean, got {self.identical!r}"
            )
        for name in ("regressions", "changed"):
            _check_int(owner, name, getattr(self, name), minimum=0)
        for name in ("summary", "frontier"):
            if not isinstance(getattr(self, name), dict):
                raise SchemaError(
                    f"{owner}.{name}",
                    f"expected an object, got {getattr(self, name)!r}",
                )
        for name in ("deltas", "attribution"):
            value = getattr(self, name)
            if not isinstance(value, list) or not all(
                isinstance(item, dict) for item in value
            ):
                raise SchemaError(
                    f"{owner}.{name}", f"expected a list of objects, got {value!r}"
                )
        for name in ("added", "removed", "warnings"):
            value = getattr(self, name)
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise SchemaError(
                    f"{owner}.{name}", f"expected a list of strings, got {value!r}"
                )


#: Result type for each request kind (the envelope's ``result`` payload).
RESULT_TYPES: Dict[str, type] = {
    "simulate": SimulateResult,
    "roofline": RooflineResult,
    "scale": ScaleResult,
    "sweep": SweepResult,
    "explore": ExploreResult,
    "diff": DiffResult,
}


@dataclass
class ApiResult(_ApiModel):
    """Envelope around every result: kind, schema version, timing, engine.

    ``engine`` is the per-request :class:`~repro.engine.EngineStats`
    delta (what this request cost, even on a shared long-lived engine);
    ``elapsed_seconds`` the wall-clock spent inside the session.
    """

    kind: str = "simulate"
    result: Any = None
    engine: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def validate(self) -> None:
        owner = type(self).__name__
        if self.kind not in RESULT_TYPES:
            raise SchemaError(
                f"{owner}.kind", f"unknown kind {self.kind!r}; known: {sorted(RESULT_TYPES)}"
            )
        expected = RESULT_TYPES[self.kind]
        if not isinstance(self.result, expected):
            raise SchemaError(
                f"{owner}.result",
                f"expected a {expected.__name__} for kind {self.kind!r}, "
                f"got {type(self.result).__name__}",
            )
        if not isinstance(self.engine, dict):
            raise SchemaError(f"{owner}.engine", f"expected an object, got {self.engine!r}")
        if isinstance(self.elapsed_seconds, bool) or not isinstance(
            self.elapsed_seconds, (int, float)
        ):
            raise SchemaError(
                f"{owner}.elapsed_seconds",
                f"expected a number, got {self.elapsed_seconds!r}",
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "schema_version": SCHEMA_VERSION,
            "elapsed_seconds": self.elapsed_seconds,
            "engine": _plain(self.engine),
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "ApiResult":
        name = cls.__name__
        if not isinstance(payload, dict):
            raise SchemaError(name, f"expected a JSON object, got {type(payload).__name__}")
        payload = dict(payload)
        version = payload.pop("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int) or isinstance(version, bool) or version < 1:
            raise SchemaError(f"{name}.schema_version", f"invalid version {version!r}")
        if version > SCHEMA_VERSION:
            raise SchemaError(
                f"{name}.schema_version",
                f"document version {version} is newer than this library "
                f"supports (schema {SCHEMA_VERSION}); upgrade repro",
            )
        kind = payload.get("kind")
        result_type = RESULT_TYPES.get(kind)
        if result_type is None:
            raise SchemaError(
                f"{name}.kind", f"unknown kind {kind!r}; known: {sorted(RESULT_TYPES)}"
            )
        if "result" not in payload:
            raise SchemaError(f"{name}.result", "required field is missing")
        unknown = sorted(set(payload) - {"kind", "result", "engine", "elapsed_seconds"})
        if unknown:
            raise SchemaError(f"{name}.{unknown[0]}", "unknown field")
        engine = payload.get("engine") or {}
        if not isinstance(engine, dict):
            raise SchemaError(f"{name}.engine", f"expected an object, got {engine!r}")
        return cls(
            kind=kind,
            result=result_type.from_dict(payload["result"]),
            engine=dict(engine),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
        )


# ----------------------------------------------------------------------
# asynchronous jobs (repro.jobs)

#: Lifecycle states of an asynchronous job (see :mod:`repro.jobs`).
JOB_STATES = ("queued", "running", "succeeded", "failed", "cancelled")

#: States a job can never leave once entered.
JOB_TERMINAL_STATES = ("succeeded", "failed", "cancelled")


def _check_optional_time(owner: str, name: str, value: Any) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaError(f"{owner}.{name}", f"expected a timestamp, got {value!r}")
    if not math.isfinite(value) or value < 0:
        raise SchemaError(
            f"{owner}.{name}", f"expected a non-negative timestamp, got {value!r}"
        )


@dataclass
class JobRecord(_ApiModel):
    """Wire envelope describing one asynchronous job's current state.

    Served by ``GET /v1/jobs`` / ``GET /v1/jobs/<id>`` and returned
    (status 202) by ``POST /v1/jobs``.  ``request_kind`` names the
    wrapped request's wire tag; ``request`` is its full document, so an
    operator can resubmit a job from its record alone.  ``events`` is
    the count of progress/state events recorded so far — the SSE stream
    at ``/v1/jobs/<id>/events`` replays them by sequence number.
    """

    kind: ClassVar[str] = "job"

    job_id: str
    request_kind: str
    state: str
    created_s: float
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    events: int = 0
    request: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        owner = type(self).__name__
        _check_str(owner, "job_id", self.job_id)
        if self.request_kind not in REQUEST_TYPES:
            raise SchemaError(
                f"{owner}.request_kind",
                f"unknown kind {self.request_kind!r}; known: {sorted(REQUEST_TYPES)}",
            )
        if self.state not in JOB_STATES:
            raise SchemaError(
                f"{owner}.state",
                f"unknown state {self.state!r}; known: {list(JOB_STATES)}",
            )
        _check_optional_time(owner, "created_s", self.created_s)
        if self.created_s is None:
            raise SchemaError(f"{owner}.created_s", "required field is missing")
        _check_optional_time(owner, "started_s", self.started_s)
        _check_optional_time(owner, "finished_s", self.finished_s)
        if self.error is not None:
            _check_str(owner, "error", self.error)
        if not isinstance(self.cancel_requested, bool):
            raise SchemaError(
                f"{owner}.cancel_requested",
                f"expected a boolean, got {self.cancel_requested!r}",
            )
        _check_int(owner, "events", self.events, minimum=0)
        if not isinstance(self.request, dict):
            raise SchemaError(
                f"{owner}.request", f"expected an object, got {self.request!r}"
            )


@dataclass
class JobResult(_ApiModel):
    """Wire envelope for a finished job (``GET /v1/jobs/<id>/result``).

    ``result`` is the :class:`ApiResult` envelope document of a
    succeeded job — byte-identical in content to what the blocking
    ``/v1/<kind>`` route would have returned — and ``None`` for failed
    or cancelled jobs, whose ``error`` (when failed) says why.
    """

    kind: ClassVar[str] = "job_result"

    job_id: str
    state: str
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def validate(self) -> None:
        owner = type(self).__name__
        _check_str(owner, "job_id", self.job_id)
        if self.state not in JOB_TERMINAL_STATES:
            raise SchemaError(
                f"{owner}.state",
                f"expected a terminal state {list(JOB_TERMINAL_STATES)}, "
                f"got {self.state!r}",
            )
        if self.state == "succeeded":
            if not isinstance(self.result, dict):
                raise SchemaError(
                    f"{owner}.result",
                    f"a succeeded job carries its ApiResult document, "
                    f"got {self.result!r}",
                )
        elif self.result is not None:
            raise SchemaError(
                f"{owner}.result",
                f"only succeeded jobs carry a result, state is {self.state!r}",
            )
        if self.error is not None:
            _check_str(owner, "error", self.error)
