"""Unified programmatic API: typed requests, one warm session, a service.

This package is the single front door to every workflow the repository
supports:

* :mod:`repro.api.schema` — versioned, JSON-serialisable request/result
  dataclasses (``SimulateRequest``, ``RooflineRequest``, ``SweepRequest``,
  ``ExploreRequest`` and their results, wrapped in ``ApiResult``
  envelopes with schema version, timing and per-request engine stats);
* :mod:`repro.api.session` — :class:`Session`, the facade that owns
  exactly one :class:`~repro.engine.SimulationEngine` and keeps traces,
  runners and layer results warm across calls;
* :mod:`repro.api.service` — the ``repro serve`` batch service
  (stdlib ``ThreadingHTTPServer``) dispatching POSTed request documents
  into a shared session.

The CLI subcommands are thin clients of this layer: they build a
request, call :meth:`Session.submit` and format the result.
"""

from repro.api.schema import (
    SCHEMA_VERSION,
    ApiResult,
    ExploreRequest,
    ExploreResult,
    RooflineRequest,
    RooflineResult,
    ScaleRequest,
    ScaleResult,
    SchemaError,
    SimulateRequest,
    SimulateResult,
    SweepRequest,
    SweepResult,
    request_from_dict,
)
from repro.api.session import Session
from repro.api.service import ApiServer, create_server, serve

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "SimulateRequest",
    "RooflineRequest",
    "ScaleRequest",
    "SweepRequest",
    "ExploreRequest",
    "SimulateResult",
    "RooflineResult",
    "ScaleResult",
    "SweepResult",
    "ExploreResult",
    "ApiResult",
    "request_from_dict",
    "Session",
    "ApiServer",
    "create_server",
    "serve",
]
