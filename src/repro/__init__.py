"""TensorDash reproduction library.

This package reproduces the system described in "TensorDash: Exploiting
Sparsity to Accelerate Deep Neural Network Training and Inference"
(MICRO 2020).  It contains:

``repro.core``
    The paper's contribution: the sparse input interconnect, the hierarchical
    hardware scheduler, staging buffers, TensorDash and baseline processing
    elements, tiles and the multi-tile accelerator model.

``repro.nn``
    A from-scratch numpy training framework used to generate realistic
    sparsity traces (activations, weights and gradients) for the simulator.

``repro.models``
    A scaled-down model zoo mirroring the networks evaluated in the paper.

``repro.pruning``
    Pruning-during-training methods (dynamic sparse reparameterization and
    sparse momentum) used for the resnet50_DS90 / resnet50_SM90 workloads.

``repro.training``
    Training loop and operand-trace collection for the three training
    convolutions.

``repro.memory``
    Tensor layout, transposers, on-chip SRAM, off-chip DRAM and zero
    compression models, plus the :class:`~repro.memory.hierarchy.MemoryHierarchy`
    bandwidth/capacity model the cycle simulator enforces (unbounded by
    default; finite hierarchies add stall cycles and memory-bound verdicts).

``repro.energy``
    Area, power and energy accounting for FP32 and bfloat16 configurations.

``repro.simulation``
    Mapping of layers to operand streams, the cycle-level simulation driver
    and the experiment runner used by the benchmark harness.

``repro.engine``
    The pluggable execution layer: bit-identical reference / vectorized /
    parallel simulation backends, plus the content-addressed on-disk
    result cache that lets sweeps skip already-simulated layers.

``repro.explore``
    Declarative design-space exploration: JSON-loadable study specs over
    accelerator knobs x workloads x sparsity scenarios, a resumable
    study runner on top of the engine, and Pareto-frontier reporting
    (the ``repro explore`` CLI subcommand).

``repro.api``
    The unified programmatic front door: versioned JSON-serialisable
    request/result schema, the :class:`~repro.api.Session` facade that
    keeps one engine and its caches warm across simulate / sweep /
    explore / roofline calls, and the ``repro serve`` batch service.
    The CLI subcommands are thin clients of this layer.
"""

from repro._version import __version__
from repro.core.config import AcceleratorConfig, PEConfig, TileConfig
from repro.core.accelerator import Accelerator
from repro.engine import SimulationEngine
from repro.memory.hierarchy import MemoryHierarchy
from repro.simulation.runner import ExperimentRunner, simulate_model_training
from repro.api.session import Session

__all__ = [
    "AcceleratorConfig",
    "PEConfig",
    "TileConfig",
    "Accelerator",
    "SimulationEngine",
    "MemoryHierarchy",
    "ExperimentRunner",
    "Session",
    "simulate_model_training",
    "__version__",
]
