"""Operand-trace collection: the paper's trace methodology.

"For each epoch, we sample one randomly selected batch and trace the
operands of the three convolutions: the filters, the input activations per
layer, and the output gradients per layer."  This module snapshots exactly
those operands from the traceable layers of a model after a forward +
backward pass, storing boolean non-zero masks (the only thing the
scheduler's behaviour depends on) plus sparsity summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.nn.layers.conv import Conv2D
from repro.nn.layers.linear import Linear
from repro.nn.module import Module


@dataclass
class LayerTrace:
    """Traced operands of one traceable layer for one sampled batch.

    Masks are boolean non-zero indicators; ``None`` when the corresponding
    operand was not produced (e.g. gradients before a backward pass).
    """

    layer_name: str
    layer_type: str                      # "conv" or "fc"
    kernel: int = 1
    stride: int = 1
    padding: int = 0
    weight_mask: Optional[np.ndarray] = None
    activation_mask: Optional[np.ndarray] = None
    output_gradient_mask: Optional[np.ndarray] = None
    weight_sparsity: float = 0.0
    activation_sparsity: float = 0.0
    gradient_sparsity: float = 0.0
    macs: int = 0

    def operand_sparsity(self, operation: str) -> float:
        """Sparsity of the targeted operand for one of the three operations."""
        if operation == "AxW":
            return self.activation_sparsity
        if operation == "AxG":
            return self.gradient_sparsity
        if operation == "WxG":
            return max(self.gradient_sparsity, self.activation_sparsity)
        raise ValueError(f"unknown operation {operation!r}")


@dataclass
class EpochTrace:
    """All layer traces for one sampled batch of one epoch."""

    epoch: int
    layers: List[LayerTrace] = field(default_factory=list)

    def mean_sparsity(self, operand: str) -> float:
        """Mean sparsity of one operand kind across traced layers."""
        values = {
            "activations": [t.activation_sparsity for t in self.layers],
            "gradients": [t.gradient_sparsity for t in self.layers],
            "weights": [t.weight_sparsity for t in self.layers],
        }[operand]
        return float(np.mean(values)) if values else 0.0


@dataclass
class TrainingTrace:
    """Traces across a whole training run (one EpochTrace per epoch)."""

    model_name: str
    epochs: List[EpochTrace] = field(default_factory=list)

    def final_epoch(self) -> EpochTrace:
        """The most recent epoch's trace."""
        if not self.epochs:
            raise ValueError("training trace is empty")
        return self.epochs[-1]

    def epoch_at_progress(self, fraction: float) -> EpochTrace:
        """The epoch trace closest to a given fraction of training progress."""
        if not self.epochs:
            raise ValueError("training trace is empty")
        index = int(round(fraction * (len(self.epochs) - 1)))
        index = min(max(index, 0), len(self.epochs) - 1)
        return self.epochs[index]


def _sparsity(tensor: np.ndarray) -> float:
    if tensor.size == 0:
        return 0.0
    return 1.0 - np.count_nonzero(tensor) / tensor.size


class TraceCollector:
    """Snapshots operand masks from a model's traceable layers.

    Parameters
    ----------
    store_masks:
        Keep the full boolean masks (needed by the cycle simulator).  When
        False only the summary sparsities are kept, which is enough for the
        potential-speedup analytics and keeps long training runs light.
    max_batch:
        Trace at most this many samples per layer (operand statistics are
        per-sample phenomena, so a few samples suffice).
    """

    def __init__(self, store_masks: bool = True, max_batch: Optional[int] = 4):
        self.store_masks = store_masks
        self.max_batch = max_batch

    def _clip(self, tensor: np.ndarray) -> np.ndarray:
        # Only convolutional operands (4D, batch x channels x H x W) are
        # clipped: a handful of samples already contributes thousands of
        # windows.  Fully-connected operands are kept whole because their
        # batch dimension *is* the reduction dimension of the weight-gradient
        # computation and clipping it would understate that operation.
        if self.max_batch is None or tensor.ndim != 4:
            return tensor
        if tensor.shape[0] <= self.max_batch:
            return tensor
        return tensor[: self.max_batch]

    def collect(self, model: Module, epoch: int) -> EpochTrace:
        """Snapshot all traceable layers after a forward/backward pass."""
        trace = EpochTrace(epoch=epoch)
        for layer in model.traceable_modules():
            operands = layer.trace_operands()
            weights = operands.get("weights")
            activations = operands.get("activations")
            gradients = operands.get("output_gradients")

            if isinstance(layer, Conv2D):
                layer_type = "conv"
                kernel, stride, padding = layer.kernel_size, layer.stride, layer.padding
            elif isinstance(layer, Linear):
                layer_type = "fc"
                kernel, stride, padding = 1, 1, 0
            else:
                layer_type = "fc"
                kernel, stride, padding = 1, 1, 0

            record = LayerTrace(
                layer_name=layer.name,
                layer_type=layer_type,
                kernel=kernel,
                stride=stride,
                padding=padding,
                weight_sparsity=_sparsity(weights) if weights is not None else 0.0,
                activation_sparsity=_sparsity(activations) if activations is not None else 0.0,
                gradient_sparsity=_sparsity(gradients) if gradients is not None else 0.0,
            )
            if activations is not None and weights is not None:
                if layer_type == "conv" and activations.ndim == 4:
                    n, _, h, w = activations.shape
                    out_h = (h + 2 * padding - kernel) // stride + 1
                    out_w = (w + 2 * padding - kernel) // stride + 1
                    record.macs = int(n * out_h * out_w * np.prod(weights.shape))
                else:
                    record.macs = int(activations.shape[0]) * int(np.prod(weights.shape))
            if self.store_masks:
                if weights is not None:
                    record.weight_mask = weights != 0
                if activations is not None:
                    record.activation_mask = self._clip(activations) != 0
                if gradients is not None:
                    record.output_gradient_mask = self._clip(gradients) != 0
            trace.layers.append(record)
        return trace
