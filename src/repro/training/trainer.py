"""Training loop with per-epoch operand tracing.

The trainer mirrors the paper's methodology: train for a number of epochs,
and for each epoch sample one batch whose operands (weights, input
activations, output gradients per layer) are traced for the accelerator
simulation.  Pruning-during-training methods plug in as a hook invoked
after every optimiser step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Tuple

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.training.tracing import TraceCollector, TrainingTrace


class BatchSampler(Protocol):
    """Anything that can produce (inputs, labels) training batches."""

    def sample_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        ...


#: Samples kept per traced convolutional layer unless a caller raises
#: the cap (multi-device scaling does, so data-parallel shards balance).
#: Referenced by the session/study layers so their simulation-time batch
#: clip can never drift from what the trainer actually traced.
DEFAULT_TRACE_MAX_BATCH = 4


@dataclass
class TrainingConfig:
    """Hyperparameters of one training run."""

    epochs: int = 5
    batches_per_epoch: int = 8
    batch_size: int = 8
    learning_rate: float = 0.01
    trace_masks: bool = True
    trace_max_batch: int = DEFAULT_TRACE_MAX_BATCH
    seed: int = 0


@dataclass
class EpochStats:
    """Loss/accuracy bookkeeping for one epoch."""

    epoch: int
    mean_loss: float
    accuracy: float


class Trainer:
    """Runs training and collects per-epoch operand traces.

    Parameters
    ----------
    model:
        A module mapping a batch of inputs to logits.
    optimizer:
        Any :class:`repro.nn.optim.Optimizer` over the model's parameters.
    loss:
        Loss object with ``forward(logits, labels)`` and ``backward()``.
    config:
        Training hyperparameters.
    pruning_hook:
        Optional callable invoked as ``hook(model, epoch, step)`` after
        every optimiser step (the pruning-during-training methods).
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss: Optional[CrossEntropyLoss] = None,
        config: Optional[TrainingConfig] = None,
        pruning_hook: Optional[Callable[[Module, int, int], None]] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss = loss or CrossEntropyLoss()
        self.config = config or TrainingConfig()
        self.pruning_hook = pruning_hook
        self.collector = TraceCollector(
            store_masks=self.config.trace_masks,
            max_batch=self.config.trace_max_batch,
        )
        self.epoch_stats: List[EpochStats] = []

    def _train_step(self, inputs: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        """One forward/backward/update step; returns (loss, accuracy)."""
        self.model.zero_grad()
        logits = self.model.forward(inputs)
        loss_value = self.loss.forward(logits, labels)
        grad = self.loss.backward()
        self.model.backward(grad)
        self.optimizer.step()
        predictions = logits.argmax(axis=-1)
        accuracy = float(np.mean(predictions == labels))
        return loss_value, accuracy

    def train(self, dataset: BatchSampler, model_name: str = "model") -> TrainingTrace:
        """Run the configured number of epochs and return the operand traces."""
        trace = TrainingTrace(model_name=model_name)
        self.model.train()
        step = 0
        for epoch in range(self.config.epochs):
            losses: List[float] = []
            accuracies: List[float] = []
            for batch_index in range(self.config.batches_per_epoch):
                inputs, labels = dataset.sample_batch(self.config.batch_size)
                loss_value, accuracy = self._train_step(inputs, labels)
                losses.append(loss_value)
                accuracies.append(accuracy)
                if self.pruning_hook is not None:
                    self.pruning_hook(self.model, epoch, step)
                step += 1
            # The last batch of the epoch is the sampled (traced) batch; its
            # operands are still cached inside the layers.
            trace.epochs.append(self.collector.collect(self.model, epoch))
            self.epoch_stats.append(
                EpochStats(
                    epoch=epoch,
                    mean_loss=float(np.mean(losses)) if losses else 0.0,
                    accuracy=float(np.mean(accuracies)) if accuracies else 0.0,
                )
            )
        return trace

    def final_loss(self) -> float:
        """Mean loss of the final epoch."""
        if not self.epoch_stats:
            raise RuntimeError("train() has not been run")
        return self.epoch_stats[-1].mean_loss
