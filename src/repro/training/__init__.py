"""Training loop, synthetic datasets and operand-trace collection."""

from repro.training.data import (
    SyntheticImageDataset,
    SyntheticSequenceDataset,
    SyntheticPairDataset,
)
from repro.training.tracing import LayerTrace, EpochTrace, TrainingTrace, TraceCollector
from repro.training.trainer import Trainer, TrainingConfig

__all__ = [
    "SyntheticImageDataset",
    "SyntheticSequenceDataset",
    "SyntheticPairDataset",
    "LayerTrace",
    "EpochTrace",
    "TrainingTrace",
    "TraceCollector",
    "Trainer",
    "TrainingConfig",
]
