"""Synthetic datasets standing in for the paper's training corpora.

The paper traces training on ImageNet (image classification), MSCOCO
(img2txt) and SNLI / Wikitext-2 (language).  Those datasets cannot be
shipped here, so structured synthetic data is generated instead: class
conditional images with spatially-correlated features (so convolutional
features — and therefore ReLU sparsity patterns — develop the same way
they do on natural images), and token sequences with a skewed (Zipf-like)
vocabulary distribution for the sequence workloads.  What the simulator
consumes is only the operand sparsity the training process produces, which
these datasets reproduce mechanically: ReLU and pooling create activation
zeros, ReLU masking creates gradient zeros, and pruning creates weight
zeros.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np


class SyntheticImageDataset:
    """Class-conditional images of shape ``(channels, size, size)``.

    Each class has a set of Gaussian "blob" prototypes; samples are noisy
    superpositions.  Pixels are non-negative after an input ReLU-like
    clamp, matching post-normalisation camera data fed to the zoo models.
    """

    def __init__(
        self,
        num_classes: int = 10,
        channels: int = 3,
        size: int = 32,
        samples_per_class: int = 64,
        seed: int = 0,
    ):
        self.num_classes = num_classes
        self.channels = channels
        self.size = size
        self.samples_per_class = samples_per_class
        self.rng = np.random.default_rng(seed)
        self._prototypes = self.rng.normal(
            0.0, 1.0, size=(num_classes, channels, size, size)
        ).astype(np.float32)

    def __len__(self) -> int:
        return self.num_classes * self.samples_per_class

    def sample_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw a random batch of (images, labels)."""
        labels = self.rng.integers(0, self.num_classes, size=batch_size)
        noise = self.rng.normal(0.0, 0.4, size=(batch_size, self.channels, self.size, self.size))
        images = self._prototypes[labels] + noise
        images = np.maximum(images, 0.0)
        return images.astype(np.float32), labels.astype(np.int64)

    def batches(self, batch_size: int, num_batches: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``num_batches`` random batches."""
        for _ in range(num_batches):
            yield self.sample_batch(batch_size)


class SyntheticSequenceDataset:
    """Token sequences with a Zipf-distributed vocabulary.

    Used by the img2txt, SNLI and GCN stand-ins.  Labels are either the
    next token (language modelling) or a sequence-level class.
    """

    def __init__(
        self,
        vocab_size: int = 512,
        sequence_length: int = 20,
        num_classes: int = 3,
        seed: int = 0,
    ):
        self.vocab_size = vocab_size
        self.sequence_length = sequence_length
        self.num_classes = num_classes
        self.rng = np.random.default_rng(seed)
        ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
        self._token_probs = (1.0 / ranks) / np.sum(1.0 / ranks)

    def sample_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw a batch of (token sequences, sequence labels)."""
        tokens = self.rng.choice(
            self.vocab_size, size=(batch_size, self.sequence_length), p=self._token_probs
        )
        labels = self.rng.integers(0, self.num_classes, size=batch_size)
        return tokens.astype(np.int64), labels.astype(np.int64)

    def sample_lm_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw a language-modelling batch: inputs and next-token targets."""
        tokens = self.rng.choice(
            self.vocab_size, size=(batch_size, self.sequence_length + 1), p=self._token_probs
        )
        return tokens[:, :-1].astype(np.int64), tokens[:, 1:].astype(np.int64)


class SyntheticPairDataset:
    """Premise/hypothesis pairs for the SNLI stand-in (3-way classification)."""

    def __init__(
        self,
        vocab_size: int = 512,
        sequence_length: int = 16,
        seed: int = 0,
    ):
        self.base = SyntheticSequenceDataset(
            vocab_size=vocab_size,
            sequence_length=sequence_length,
            num_classes=3,
            seed=seed,
        )

    def sample_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw a batch of (premises, hypotheses, labels)."""
        premises, labels = self.base.sample_batch(batch_size)
        hypotheses, _ = self.base.sample_batch(batch_size)
        return premises, hypotheses, labels
