"""Sparse momentum (Dettmers & Zettlemoyer, 2019) — "SM90".

Like dynamic sparse reparameterization, sparse momentum keeps a fixed
non-zero budget, but it uses the *momentum* of the optimiser to decide both
how the budget is redistributed across layers (layers with larger mean
momentum magnitude get a larger share) and which zero positions are regrown
(those with the largest momentum magnitude, i.e. the connections gradient
descent most "wants" to use).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.nn.optim import MomentumSGD
from repro.pruning.base import MaskedPruner


class SparseMomentumPruner(MaskedPruner):
    """Momentum-guided prune-and-regrow pruning."""

    def __init__(
        self,
        optimizer: Optional[MomentumSGD] = None,
        target_sparsity: float = 0.9,
        prune_fraction: float = 0.2,
        update_every: int = 4,
        warmup_steps: int = 0,
        seed: int = 0,
    ):
        super().__init__(target_sparsity=target_sparsity, warmup_steps=warmup_steps)
        self.optimizer = optimizer
        self.prune_fraction = prune_fraction
        self.update_every = max(update_every, 1)
        self.rng = np.random.default_rng(seed)
        self._initialised = False

    def bind_optimizer(self, optimizer: MomentumSGD) -> None:
        """Give the pruner access to the optimiser's momentum buffers."""
        self.optimizer = optimizer

    def _momentum_of(self, parameter) -> np.ndarray:
        if isinstance(self.optimizer, MomentumSGD):
            return np.abs(self.optimizer.velocity_of(parameter))
        # Without a momentum optimiser fall back to gradient magnitude.
        if parameter.grad is not None:
            return np.abs(parameter.grad)
        return np.zeros_like(parameter.data)

    def _initialise_masks(self) -> None:
        for parameter in self._parameters:
            keep = 1.0 - self.target_sparsity
            mask = self.rng.random(parameter.data.shape) < keep
            self.masks[id(parameter)] = mask
        self._initialised = True

    def update_masks(self, epoch: int, step: int) -> None:
        if not self._initialised:
            self._initialise_masks()
            return
        if step % self.update_every:
            return

        freed_budget = 0
        momentum_share: Dict[int, float] = {}
        for parameter in self._parameters:
            mask = self.masks[id(parameter)]
            active = np.flatnonzero(mask.reshape(-1))
            momentum = self._momentum_of(parameter)
            momentum_share[id(parameter)] = float(momentum.mean())
            if active.size == 0:
                continue
            magnitudes = np.abs(parameter.data.reshape(-1)[active])
            num_prune = int(self.prune_fraction * active.size)
            if num_prune:
                prune_order = np.argsort(magnitudes)[:num_prune]
                flat = mask.reshape(-1)
                flat[active[prune_order]] = False
                freed_budget += num_prune

        total_momentum = sum(momentum_share.values())
        if freed_budget == 0:
            return

        # Desired regrowth per layer, proportional to its momentum share.
        desired = {}
        for parameter in self._parameters:
            if total_momentum > 0:
                share = momentum_share[id(parameter)] / total_momentum
            else:
                share = 1.0 / max(len(self._parameters), 1)
            desired[id(parameter)] = freed_budget * share

        # Two-pass allocation: grant each layer min(desired, capacity), then
        # redistribute the leftover to layers that still have zero positions,
        # so the global non-zero budget stays constant (the method's
        # fixed-budget invariant).
        remaining = freed_budget
        for _ in range(3):
            if remaining <= 0:
                break
            capacities = {
                id(p): int(np.count_nonzero(~self.masks[id(p)]))
                for p in self._parameters
            }
            total_desired = sum(min(desired[k], capacities[k]) for k in desired)
            if total_desired <= 0:
                break
            budget_this_pass = remaining
            for parameter in self._parameters:
                key = id(parameter)
                capacity = capacities[key]
                if capacity == 0 or remaining <= 0:
                    continue
                want = min(desired[key], capacity)
                to_grow = int(round(budget_this_pass * want / total_desired))
                to_grow = min(to_grow, capacity, remaining)
                if to_grow <= 0:
                    continue
                flat = self.masks[key].reshape(-1)
                zero_positions = np.flatnonzero(~flat)
                momentum = self._momentum_of(parameter).reshape(-1)[zero_positions]
                order = np.argsort(momentum)[::-1]
                chosen = zero_positions[order[:to_grow]]
                flat[chosen] = True
                parameter.data.reshape(-1)[chosen] = 0.0
                remaining -= to_grow
