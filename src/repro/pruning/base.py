"""Shared infrastructure for pruning-during-training methods."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.nn.module import Module, Parameter


def prunable_parameters(model: Module) -> List[Parameter]:
    """Weights eligible for pruning: conv/linear weights, not biases or BN."""
    parameters = []
    for name, parameter in model.named_parameters():
        if name.endswith("weight") and parameter.data.ndim >= 2:
            parameters.append(parameter)
    return parameters


class MaskedPruner:
    """Base class managing per-parameter binary masks.

    Subclasses decide *which* weights are masked; this class applies the
    masks after every optimiser step so pruned weights stay exactly zero
    (the property TensorDash exploits) and reports sparsity statistics.
    """

    def __init__(self, target_sparsity: float = 0.9, warmup_steps: int = 0):
        if not 0.0 <= target_sparsity < 1.0:
            raise ValueError(
                f"target_sparsity must be in [0, 1), got {target_sparsity}"
            )
        self.target_sparsity = target_sparsity
        self.warmup_steps = warmup_steps
        self.masks: Dict[int, np.ndarray] = {}
        self._parameters: List[Parameter] = []

    # -- lifecycle -----------------------------------------------------------
    def attach(self, model: Module) -> None:
        """Bind to a model's prunable parameters and initialise dense masks."""
        self._parameters = prunable_parameters(model)
        for parameter in self._parameters:
            self.masks[id(parameter)] = np.ones_like(parameter.data, dtype=bool)

    def apply_masks(self) -> None:
        """Zero out every weight currently masked off."""
        for parameter in self._parameters:
            mask = self.masks.get(id(parameter))
            if mask is not None:
                parameter.data *= mask

    # -- statistics ------------------------------------------------------------
    def weight_sparsity(self) -> float:
        """Overall fraction of pruned (zero-masked) weights."""
        total = 0
        pruned = 0
        for parameter in self._parameters:
            mask = self.masks.get(id(parameter))
            if mask is None:
                continue
            total += mask.size
            pruned += int(np.count_nonzero(~mask))
        return pruned / total if total else 0.0

    def parameters(self) -> List[Parameter]:
        """The parameters this pruner manages."""
        return list(self._parameters)

    # -- subclass interface ------------------------------------------------------
    def update_masks(self, epoch: int, step: int) -> None:
        """Recompute masks; implemented by subclasses."""
        raise NotImplementedError

    def __call__(self, model: Module, epoch: int, step: int) -> None:
        """Training hook: attach lazily, update masks, re-apply them."""
        if not self._parameters:
            self.attach(model)
        if step >= self.warmup_steps:
            self.update_masks(epoch, step)
        self.apply_masks()
