"""Dynamic sparse reparameterization (Mostafa & Wang, ICML 2019) — "DS90".

The method keeps a fixed global budget of non-zero weights (10% of the
total for the paper's 90% target).  Periodically it prunes the weights with
the smallest magnitudes (below an adaptive threshold) and *regrows* an
equal number of connections at randomly chosen currently-zero positions,
reallocating the freed budget across layers proportionally to how many
survivors each layer kept.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.pruning.base import MaskedPruner


class DynamicSparseReparameterization(MaskedPruner):
    """Fixed-budget prune-and-regrow pruning."""

    def __init__(
        self,
        target_sparsity: float = 0.9,
        prune_fraction: float = 0.2,
        update_every: int = 4,
        warmup_steps: int = 0,
        seed: int = 0,
    ):
        super().__init__(target_sparsity=target_sparsity, warmup_steps=warmup_steps)
        if not 0.0 < prune_fraction <= 1.0:
            raise ValueError(f"prune_fraction must be in (0, 1], got {prune_fraction}")
        self.prune_fraction = prune_fraction
        self.update_every = max(update_every, 1)
        self.rng = np.random.default_rng(seed)
        self._initialised = False

    def _initialise_masks(self) -> None:
        """Start from a random sparse topology at the target sparsity."""
        for parameter in self._parameters:
            keep = 1.0 - self.target_sparsity
            mask = self.rng.random(parameter.data.shape) < keep
            self.masks[id(parameter)] = mask
        self._initialised = True

    def update_masks(self, epoch: int, step: int) -> None:
        if not self._initialised:
            self._initialise_masks()
            return
        if step % self.update_every:
            return

        freed_budget = 0
        survivors_per_parameter: Dict[int, int] = {}
        for parameter in self._parameters:
            mask = self.masks[id(parameter)]
            active = np.flatnonzero(mask.reshape(-1))
            if active.size == 0:
                survivors_per_parameter[id(parameter)] = 0
                continue
            magnitudes = np.abs(parameter.data.reshape(-1)[active])
            num_prune = int(self.prune_fraction * active.size)
            if num_prune:
                prune_order = np.argsort(magnitudes)[:num_prune]
                flat = mask.reshape(-1)
                flat[active[prune_order]] = False
                freed_budget += num_prune
            survivors_per_parameter[id(parameter)] = int(mask.sum())

        total_survivors = sum(survivors_per_parameter.values())
        if total_survivors == 0 or freed_budget == 0:
            return

        # Regrow the freed budget proportionally to each layer's survivors.
        for parameter in self._parameters:
            mask = self.masks[id(parameter)]
            share = survivors_per_parameter[id(parameter)] / total_survivors
            to_grow = int(round(freed_budget * share))
            if to_grow <= 0:
                continue
            flat = mask.reshape(-1)
            zero_positions = np.flatnonzero(~flat)
            if zero_positions.size == 0:
                continue
            chosen = self.rng.choice(
                zero_positions, size=min(to_grow, zero_positions.size), replace=False
            )
            flat[chosen] = True
            # Newly grown connections start at zero and learn from scratch.
            parameter.data.reshape(-1)[chosen] = 0.0
