"""Global magnitude pruning with a gradually ramped sparsity target."""

from __future__ import annotations

import numpy as np

from repro.pruning.base import MaskedPruner


class MagnitudePruner(MaskedPruner):
    """Prune the globally smallest-magnitude weights.

    The sparsity target ramps linearly from 0 to ``target_sparsity`` over
    ``ramp_steps`` optimiser steps (a cubic or linear ramp is standard for
    magnitude pruning during training); once a weight is pruned it can be
    recovered only if it is no longer among the smallest at the next update.
    """

    def __init__(
        self,
        target_sparsity: float = 0.9,
        ramp_steps: int = 20,
        update_every: int = 1,
        warmup_steps: int = 0,
    ):
        super().__init__(target_sparsity=target_sparsity, warmup_steps=warmup_steps)
        self.ramp_steps = max(ramp_steps, 1)
        self.update_every = max(update_every, 1)

    def current_target(self, step: int) -> float:
        """Sparsity target in effect at a given optimiser step."""
        progress = min(1.0, (step + 1) / self.ramp_steps)
        return self.target_sparsity * progress

    def update_masks(self, epoch: int, step: int) -> None:
        if step % self.update_every:
            return
        target = self.current_target(step)
        all_magnitudes = np.concatenate(
            [np.abs(p.data).reshape(-1) for p in self._parameters]
        )
        if all_magnitudes.size == 0:
            return
        k = int(target * all_magnitudes.size)
        if k <= 0:
            return
        threshold = np.partition(all_magnitudes, k - 1)[k - 1]
        for parameter in self._parameters:
            self.masks[id(parameter)] = np.abs(parameter.data) > threshold
