"""Pruning-during-training methods.

The paper evaluates two ResNet-50 variants trained with methods that prune
during training, both targeting 90% weight sparsity:

* ``resnet50_DS90`` — dynamic sparse reparameterization (Mostafa & Wang,
  ICML 2019): keep a fixed global weight budget, periodically prune the
  smallest-magnitude weights and regrow the freed budget at random
  positions.
* ``resnet50_SM90`` — sparse momentum (Dettmers & Zettlemoyer, 2019):
  prune by magnitude and regrow where the momentum magnitude is largest,
  redistributing the budget toward layers whose momentum indicates they
  need more capacity.

Both methods convert weights to zero during training, which TensorDash can
exploit on top of the naturally occurring activation/gradient sparsity.
"""

from repro.pruning.magnitude import MagnitudePruner
from repro.pruning.dynamic_sparse import DynamicSparseReparameterization
from repro.pruning.sparse_momentum import SparseMomentumPruner

__all__ = [
    "MagnitudePruner",
    "DynamicSparseReparameterization",
    "SparseMomentumPruner",
]
