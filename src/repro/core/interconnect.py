"""The sparse input interconnect: per-lane movement options.

Each multiplier input is fed through a small multiplexer that can select
one of a limited set of values from the staging buffer (Fig. 9).  For the
paper's preferred configuration (16 lanes, 3-deep staging buffer) each lane
has eight options, listed in the scheduler's static priority order:

====  ==============  ====================================
rank  (step, lane)    meaning
====  ==============  ====================================
0     (+0, i)         the original dense-schedule value
1     (+1, i)         lookahead one step
2     (+2, i)         lookahead two steps
3     (+1, i-1)       lookaside from the left neighbour
4     (+1, i+1)       lookaside from the right neighbour
5     (+2, i-2)       lookaside two lanes left, two steps ahead
6     (+2, i+2)       lookaside two lanes right, two steps ahead
7     (+1, i-3)       lookaside three lanes left, one step ahead
====  ==============  ====================================

Lane indices wrap around (the lanes form a ring).  A 2-deep staging buffer
(the lower-cost design point of Fig. 19) keeps only the options whose step
fits, i.e. five movements per multiplier.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

# The connectivity template as (step, lane_offset) pairs in priority order.
# This is the pattern of Fig. 9, shared (shifted) by every lane.
_FULL_TEMPLATE: Tuple[Tuple[int, int], ...] = (
    (0, 0),   # dense schedule
    (1, 0),   # lookahead 1
    (2, 0),   # lookahead 2
    (1, -1),  # lookaside
    (1, +1),
    (2, -2),
    (2, +2),
    (1, -3),
)


class ConnectivityPattern:
    """Movement options per lane for a given PE geometry.

    Parameters
    ----------
    lanes:
        Number of multiplier lanes in the PE (16 for the paper's default).
    staging_depth:
        Depth of the staging buffer; options whose lookahead step exceeds
        ``staging_depth - 1`` are removed, which yields the paper's
        8-option (3-deep) and 5-option (2-deep) configurations.
    template:
        Optional custom template of ``(step, lane_offset)`` pairs in
        priority order; used by the interconnect-geometry ablation.
    """

    def __init__(
        self,
        lanes: int = 16,
        staging_depth: int = 3,
        template: Sequence[Tuple[int, int]] | None = None,
    ):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        if staging_depth < 1:
            raise ValueError(f"staging_depth must be >= 1, got {staging_depth}")
        self.lanes = lanes
        self.staging_depth = staging_depth
        full = tuple(template) if template is not None else _FULL_TEMPLATE
        self.template: Tuple[Tuple[int, int], ...] = tuple(
            (step, offset) for step, offset in full if step < staging_depth
        )
        if not self.template or self.template[0] != (0, 0):
            raise ValueError("the first movement option must be the dense position (0, 0)")
        # With few lanes the wrapped offsets can alias to the same position;
        # a physical multiplexer has no duplicate inputs, so deduplicate
        # while preserving priority order.
        self._options: List[Tuple[Tuple[int, int], ...]] = []
        for lane in range(lanes):
            seen: set = set()
            options: List[Tuple[int, int]] = []
            for step, offset in self.template:
                position = (step, (lane + offset) % lanes)
                if position in seen:
                    continue
                seen.add(position)
                options.append(position)
            self._options.append(tuple(options))

    # -- queries -----------------------------------------------------------
    def options_for_lane(self, lane: int) -> Tuple[Tuple[int, int], ...]:
        """Ordered ``(step, lane)`` options available to ``lane``."""
        return self._options[lane]

    @property
    def options_per_lane(self) -> int:
        """Number of movement options per multiplier input."""
        return len(self.template)

    def select_bits(self) -> int:
        """Bits needed for one lane's multiplexer select signal."""
        bits = 0
        options = self.options_per_lane
        while (1 << bits) < options:
            bits += 1
        return max(bits, 1)

    def promotion_map(self) -> Dict[Tuple[int, int], List[Tuple[int, int]]]:
        """Map each staging-buffer position to the lanes that may consume it.

        Used by the decompressor (Fig. 12) and by tests that verify the
        level groups are conflict-free.
        """
        reachable: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for lane in range(self.lanes):
            for rank, position in enumerate(self._options[lane]):
                reachable.setdefault(position, []).append((lane, rank))
        return reachable

    # -- scheduler level groups ---------------------------------------------
    def level_groups(self) -> List[List[int]]:
        """Partition lanes into scheduling levels with non-overlapping options.

        For the default 16-lane, 8-option pattern this reproduces the
        paper's six levels {0,5,10}, {1,6,11}, {2,7,12}, {3,8,13},
        {4,9,14}, {15}.  For other geometries a greedy conflict-free
        partition is computed with the same semantics: lanes within one
        level never reach the same (step, lane) staging-buffer entry.
        """
        groups: List[List[int]] = []
        assigned = [False] * self.lanes
        for lane in range(self.lanes):
            if assigned[lane]:
                continue
            group = [lane]
            used = set(self._options[lane])
            assigned[lane] = True
            for candidate in range(lane + 1, self.lanes):
                if assigned[candidate]:
                    continue
                candidate_options = set(self._options[candidate])
                if used & candidate_options:
                    continue
                group.append(candidate)
                used |= candidate_options
                assigned[candidate] = True
            groups.append(group)
        return groups

    def validate_level_groups(self, groups: Sequence[Sequence[int]]) -> bool:
        """Check that no two lanes within any group share an option position."""
        for group in groups:
            seen: set = set()
            for lane in group:
                for position in self._options[lane]:
                    if position in seen:
                        return False
                    seen.add(position)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ConnectivityPattern(lanes={self.lanes}, depth={self.staging_depth}, "
            f"options={self.options_per_lane})"
        )


#: The paper's fixed level assignment for the default 16-lane configuration.
PAPER_LEVEL_GROUPS: Tuple[Tuple[int, ...], ...] = (
    (0, 5, 10),
    (1, 6, 11),
    (2, 7, 12),
    (3, 8, 13),
    (4, 9, 14),
    (15,),
)
