"""The TensorDash hardware scheduler (Fig. 10).

Given the zero bit-vectors of the two staging buffers, the scheduler picks,
for each multiplier lane, one of the lane's movement options so that every
*effectual* value pair (both operands non-zero) in the staging window is
consumed exactly once and as many lanes as possible are kept busy.

The hardware implementation is a cascade of per-lane 8-to-3 priority
encoders arranged in six levels; lanes within a level have disjoint option
sets so their selections can never conflict, and each level removes its
selections from the Z vector before passing it to the next level.  The
software model here processes lanes in the same level order, which produces
bit-identical schedules to the combinational circuit.

Two implementations are provided:

* :class:`HardwareScheduler` — a direct, readable model of a single
  scheduling step, used by the PE/tile models and by the unit tests.
* :class:`BatchScheduler` — a numpy-vectorised equivalent that schedules
  many independent staging windows at once, used by the cycle simulator to
  keep full-model experiments tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interconnect import ConnectivityPattern


@dataclass
class Schedule:
    """The outcome of one scheduling step.

    Attributes
    ----------
    selections:
        Per lane, the selected ``(step, lane)`` staging-buffer position, or
        ``None`` if the lane is idle this cycle.
    select_signals:
        Per lane, the multiplexer select value (the option's rank in the
        lane's priority list), or ``None`` when idle.  These are the MS
        signals of Fig. 10.
    advance:
        The AS signal: how many staging-buffer rows were fully drained and
        can be refilled from the scratchpads (always at least 1 when the
        window is non-empty).
    busy_lanes:
        Number of lanes that perform an effectual MAC this cycle.
    """

    selections: List[Optional[Tuple[int, int]]]
    select_signals: List[Optional[int]]
    advance: int
    busy_lanes: int

    @property
    def utilization(self) -> float:
        """Fraction of lanes doing useful work this cycle."""
        if not self.selections:
            return 0.0
        return self.busy_lanes / len(self.selections)


def pack_stream_rows(streams: np.ndarray) -> np.ndarray:
    """Pack boolean stream rows into one ``uint64`` lane-bitmask per row.

    ``streams`` has shape ``(num_streams, rows, lanes)`` with
    ``lanes <= 64``; the result has shape ``(num_streams, rows)`` where
    bit ``l`` of word ``[s, r]`` is ``streams[s, r, l]``.  A window
    starting at row ``p`` for a ``depth``-deep staging buffer is then
    ``rows[p] | rows[p+1] << lanes | ...`` — the layout
    :meth:`BatchScheduler.schedule_packed` consumes.
    """
    num_streams, rows, lanes = streams.shape
    if lanes > 64:
        raise ValueError(f"cannot pack {lanes} lanes into a 64-bit word")
    packed_bytes = np.packbits(
        np.ascontiguousarray(streams, dtype=bool), axis=-1, bitorder="little"
    )
    words = np.zeros((num_streams, rows, 8), dtype=np.uint8)
    words[:, :, : packed_bytes.shape[-1]] = packed_bytes
    return words.view("<u8").reshape(num_streams, rows)


class HardwareScheduler:
    """Cycle-level model of the hierarchical scheduler for one PE row.

    Parameters
    ----------
    pattern:
        The sparse interconnect connectivity; defaults to the paper's
        16-lane, 3-deep configuration.
    """

    def __init__(self, pattern: Optional[ConnectivityPattern] = None):
        self.pattern = pattern or ConnectivityPattern()
        self.level_groups = self.pattern.level_groups()
        #: Lanes in the order the hardware levels evaluate them.
        self.lane_order: List[int] = [
            lane for group in self.level_groups for lane in group
        ]

    # -- single step --------------------------------------------------------
    def schedule_step(
        self, effectual: np.ndarray, advance_limit: Optional[int] = None
    ) -> Schedule:
        """Schedule one cycle over a staging window.

        Parameters
        ----------
        effectual:
            Boolean array of shape ``(staging_depth, lanes)``; ``True``
            marks a pending effectual pair (both operands non-zero and not
            yet consumed in a previous cycle).  This is the complement of
            the Z vector described in the paper (Z marks ineffectual
            pairs); the complement is used directly because it is what the
            priority encoders consume.
        advance_limit:
            Maximum rows the staging buffer can refill this cycle (the
            scratchpad banking limit the memory hierarchy imposes);
            ``None`` means unlimited — the legacy behaviour.  The AS
            signal is clamped to it, so drained rows beyond the refill
            bandwidth simply advance on a later cycle.

        Returns
        -------
        Schedule
            The selections, MS signals, AS advance count and lane
            occupancy for this cycle.
        """
        depth, lanes = effectual.shape
        if depth != self.pattern.staging_depth or lanes != self.pattern.lanes:
            raise ValueError(
                f"expected window of shape ({self.pattern.staging_depth}, "
                f"{self.pattern.lanes}), got {effectual.shape}"
            )
        remaining = effectual.copy()
        selections: List[Optional[Tuple[int, int]]] = [None] * lanes
        signals: List[Optional[int]] = [None] * lanes

        for lane in self.lane_order:
            for rank, (step, source_lane) in enumerate(
                self.pattern.options_for_lane(lane)
            ):
                if remaining[step, source_lane]:
                    remaining[step, source_lane] = False
                    selections[lane] = (step, source_lane)
                    signals[lane] = rank
                    break

        advance = self._advance_rows(remaining)
        if advance_limit is not None:
            if advance_limit < 1:
                raise ValueError(f"advance_limit must be >= 1, got {advance_limit}")
            advance = min(advance, advance_limit)
        busy = sum(1 for s in selections if s is not None)
        return Schedule(
            selections=selections,
            select_signals=signals,
            advance=advance,
            busy_lanes=busy,
        )

    @staticmethod
    def _advance_rows(remaining: np.ndarray) -> int:
        """How many leading staging rows are fully drained after this cycle.

        Row +0 always drains (its effectual pairs are first priority for
        their own lanes and no other lane can reach step +0), so the
        advance is at least 1; it grows while subsequent rows are empty.
        """
        depth = remaining.shape[0]
        advance = 0
        for step in range(depth):
            if remaining[step].any():
                break
            advance += 1
        return max(advance, 1)

    # -- stream processing ---------------------------------------------------
    def process_stream(
        self,
        effectual_rows: np.ndarray,
        advance_limit: Optional[int] = None,
    ) -> Tuple[int, List[Schedule]]:
        """Process a whole stream of dense-schedule rows through one PE.

        Parameters
        ----------
        effectual_rows:
            Boolean array of shape ``(rows, lanes)``: which positions of the
            dense schedule hold effectual pairs.
        advance_limit:
            Per-cycle staging refill limit forwarded to
            :meth:`schedule_step` (``None`` = unlimited).

        Returns
        -------
        (cycles, schedules):
            Total cycles needed and the per-cycle schedules.
        """
        rows, lanes = effectual_rows.shape
        if lanes != self.pattern.lanes:
            raise ValueError(
                f"stream has {lanes} lanes, scheduler expects {self.pattern.lanes}"
            )
        depth = self.pattern.staging_depth
        pending = effectual_rows.copy()
        schedules: List[Schedule] = []
        position = 0
        cycles = 0
        while position < rows:
            window = np.zeros((depth, lanes), dtype=bool)
            visible = min(depth, rows - position)
            window[:visible] = pending[position : position + visible]
            schedule = self.schedule_step(window, advance_limit=advance_limit)
            # Clear the consumed pairs from the pending stream.
            for selection in schedule.selections:
                if selection is None:
                    continue
                step, lane = selection
                pending[position + step, lane] = False
            advance = min(schedule.advance, rows - position)
            position += advance
            cycles += 1
            schedules.append(schedule)
        return cycles, schedules


class BatchScheduler:
    """Vectorised scheduler over many independent staging windows.

    The hardware scheduler is combinational and stateless, so scheduling S
    independent windows is embarrassingly parallel.  This class expresses
    the priority walk as numpy operations over the batch dimension, which
    the cycle simulator relies on to keep full-model experiments
    tractable.  Its decisions are bit-identical to
    :class:`HardwareScheduler` (covered by a property test).

    Two equivalent kernels are kept:

    * :meth:`schedule` — boolean windows, vectorised *per level*: lanes
      within a hardware level have disjoint option sets (guaranteed by
      :meth:`~repro.core.interconnect.ConnectivityPattern.level_groups`
      and asserted at construction), so a whole level's selections are
      computed from one snapshot with a single gather/argmax/scatter
      round instead of a per-lane Python walk.
    * :meth:`schedule_packed` — the same decisions on *bit-packed*
      windows, one ``uint64`` word per window (available whenever
      ``staging_depth * lanes <= 64``, i.e. :attr:`packable`).  Bit ``i``
      of the word is staging position ``(i // lanes, i % lanes)``.  This
      is the kernel behind the engine's batched fast path: per scheduling
      cycle it touches 8 bytes per window instead of a 48-byte boolean
      window, which is what makes whole-layer batches cheap.
    """

    def __init__(self, pattern: Optional[ConnectivityPattern] = None):
        self.pattern = pattern or ConnectivityPattern()
        groups = self.pattern.level_groups()
        if not self.pattern.validate_level_groups(groups):  # pragma: no cover
            raise AssertionError("level groups overlap; scheduler invariant broken")
        self._lane_order = [lane for group in groups for lane in group]
        # Pre-compute the option coordinates per lane for fast indexing.
        self._options = [
            self.pattern.options_for_lane(lane) for lane in range(self.pattern.lanes)
        ]
        depth, lanes = self.pattern.staging_depth, self.pattern.lanes
        width = depth * lanes
        # -- level tables for the boolean kernel -------------------------
        # Flat (step * lanes + lane) option indices per level, padded with
        # a sentinel column that is always False, so one gather/argmax
        # serves every lane of the level at once.
        self._sentinel = width
        self._level_tables = []
        for group in groups:
            max_opts = max(len(self._options[lane]) for lane in group)
            table = np.full((len(group), max_opts), self._sentinel, dtype=np.int64)
            for i, lane in enumerate(group):
                for rank, (step, src) in enumerate(self._options[lane]):
                    table[i, rank] = step * lanes + src
            self._level_tables.append((table, np.arange(len(group))))
        # -- masks for the bit-packed kernel ------------------------------
        #: Whether a whole staging window fits one uint64 word.
        self.packable = width <= 64
        if self.packable:
            one = np.uint64(1)
            self._packed_opts = [
                [one << np.uint64(step * lanes + src) for step, src in self._options[lane]]
                for lane in range(lanes)
            ]
            self._packed_levels = groups
            self._row_masks = [
                np.uint64(((1 << lanes) - 1) << (lanes * row)) for row in range(depth)
            ]

    def schedule(
        self, effectual: np.ndarray, advance_limit: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Schedule a batch of windows.

        Parameters
        ----------
        effectual:
            Boolean array of shape ``(batch, depth, lanes)`` of pending
            effectual pairs.
        advance_limit:
            Maximum rows the staging buffers can refill this cycle (the
            scratchpad banking limit the memory hierarchy imposes);
            ``None`` means unlimited.  Identical to the
            :class:`HardwareScheduler` clamp, so the two implementations
            stay bit-identical under any limit.

        Returns
        -------
        (claimed, advance, busy):
            ``claimed`` is a boolean array of the same shape marking the
            pairs consumed this cycle; ``advance`` is the per-window AS
            count; ``busy`` is the per-window number of busy lanes.
        """
        batch, depth, lanes = effectual.shape
        if depth != self.pattern.staging_depth or lanes != self.pattern.lanes:
            raise ValueError(
                f"expected windows of shape (*, {self.pattern.staging_depth}, "
                f"{self.pattern.lanes}), got {effectual.shape}"
            )
        # Flat windows with one sentinel column (always False) appended, so
        # idle lanes can "claim" the sentinel unconditionally and the
        # scatter needs no masking.
        width = depth * lanes
        flat = np.zeros((batch, width + 1), dtype=bool)
        flat[:, :width] = effectual.reshape(batch, width)
        claimed_flat = np.zeros_like(flat)
        busy = np.zeros(batch, dtype=np.int64)
        batch_index = np.arange(batch)

        for table, lane_range in self._level_tables:
            gathered = flat[:, table]              # (batch, level_lanes, opts)
            available = gathered.any(axis=2)       # (batch, level_lanes)
            first = gathered.argmax(axis=2)        # first True == priority pick
            columns = table[lane_range[None, :], first]
            columns = np.where(available, columns, self._sentinel)
            flat[batch_index[:, None], columns] = False
            claimed_flat[batch_index[:, None], columns] = True
            busy += available.sum(axis=1)

        claimed = claimed_flat[:, :width].reshape(batch, depth, lanes)
        remaining = flat[:, :width].reshape(batch, depth, lanes)
        # AS: leading fully-drained rows, at least 1.
        row_clear = ~remaining.any(axis=2)          # (batch, depth)
        advance = np.cumprod(row_clear, axis=1).sum(axis=1)
        advance = np.maximum(advance, 1)
        if advance_limit is not None:
            if advance_limit < 1:
                raise ValueError(f"advance_limit must be >= 1, got {advance_limit}")
            advance = np.minimum(advance, advance_limit)
        return claimed, advance.astype(np.int64), busy

    # -- bit-packed kernel ---------------------------------------------------
    def schedule_packed(
        self, windows: np.ndarray, advance_limit: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Schedule a batch of bit-packed windows (one ``uint64`` each).

        Bit ``step * lanes + lane`` of a window word marks a pending
        effectual pair at staging position ``(step, lane)``.  Returns
        ``(claimed, advance, busy)`` where ``claimed`` is a word per
        window holding the consumed bits — decisions are bit-identical to
        :meth:`schedule` on the unpacked windows (property-tested).

        Only available when :attr:`packable` (``depth * lanes <= 64``).
        """
        if not self.packable:
            raise ValueError(
                f"pattern (depth={self.pattern.staging_depth}, "
                f"lanes={self.pattern.lanes}) does not fit a 64-bit window"
            )
        zero = np.uint64(0)
        remaining = windows.copy()
        claimed = np.zeros_like(windows)
        busy = np.zeros(windows.shape[0], dtype=np.int64)
        for group in self._packed_levels:
            # Lanes within a level reach disjoint positions, so their
            # selections are computed from the same `remaining` snapshot.
            for lane in group:
                masks = self._packed_opts[lane]
                selected = remaining & masks[0]
                for mask in masks[1:]:
                    # Branchless priority walk: keep the first hit.
                    candidate = remaining & mask
                    selected += candidate * (selected == zero)
                claimed |= selected
                busy += selected != zero
            remaining = windows & ~claimed
        # AS: leading fully-drained rows, at least 1.
        advance = np.zeros(windows.shape[0], dtype=np.int64)
        clear = np.ones(windows.shape[0], dtype=bool)
        for row_mask in self._row_masks:
            clear = clear & ((remaining & row_mask) == zero)
            advance += clear
        advance = np.maximum(advance, 1)
        if advance_limit is not None:
            if advance_limit < 1:
                raise ValueError(f"advance_limit must be >= 1, got {advance_limit}")
            advance = np.minimum(advance, advance_limit)
        return claimed, advance, busy

    def stream_cycles(
        self, effectual_rows: np.ndarray, advance_limit: Optional[int] = None
    ) -> int:
        """Cycles for a single stream, via the batched kernel (convenience)."""
        return int(
            self.stream_cycles_batch(
                effectual_rows[None, :, :], advance_limit=advance_limit
            )[0]
        )

    def stream_cycles_batch(
        self, effectual_rows: np.ndarray, advance_limit: Optional[int] = None
    ) -> np.ndarray:
        """Cycles for a batch of equally-long streams processed independently.

        Parameters
        ----------
        effectual_rows:
            Boolean array of shape ``(batch, rows, lanes)``.
        advance_limit:
            Per-cycle staging refill limit forwarded to :meth:`schedule`.

        Returns
        -------
        numpy.ndarray
            Per-stream cycle counts.
        """
        batch, rows, lanes = effectual_rows.shape
        depth = self.pattern.staging_depth
        if rows == 0:
            return np.zeros(batch, dtype=np.int64)
        # Pad with empty rows so windows never run off the end.
        padded = np.zeros((batch, rows + depth, lanes), dtype=bool)
        padded[:, :rows] = effectual_rows
        position = np.zeros(batch, dtype=np.int64)
        cycles = np.zeros(batch, dtype=np.int64)
        active = position < rows
        row_index = np.arange(depth)
        while active.any():
            idx = np.nonzero(active)[0]
            gather = position[idx, None] + row_index[None, :]
            windows = padded[idx[:, None, None], gather[:, :, None], np.arange(lanes)[None, None, :]]
            claimed, advance, _ = self.schedule(windows, advance_limit=advance_limit)
            # Clear consumed pairs in the padded stream.
            padded[idx[:, None, None], gather[:, :, None], np.arange(lanes)[None, None, :]] &= ~claimed
            remaining_rows = rows - position[idx]
            step_advance = np.minimum(advance, remaining_rows)
            position[idx] += step_advance
            cycles[idx] += 1
            active = position < rows
        return cycles
