"""The TensorDash hardware model: the paper's primary contribution.

The package models, at cycle level, the components described in Sections 3
and 3.1-3.7 of the paper:

* :mod:`repro.core.interconnect` — the sparse per-lane multiplexer
  connectivity (lookahead / lookaside movement options).
* :mod:`repro.core.scheduler` — the hierarchical combinational hardware
  scheduler and its vectorised batch equivalent.
* :mod:`repro.core.staging` — the N-deep operand staging buffers.
* :mod:`repro.core.pe` — baseline (dense) and TensorDash processing elements.
* :mod:`repro.core.tile` — grids of PEs with shared B-side scheduling and
  inter-PE synchronisation stalls.
* :mod:`repro.core.accelerator` — the 16-tile accelerator.
* :mod:`repro.core.backside` — pre-scheduling (compressed, scheduled-form
  storage) and the back-side scheduler.
* :mod:`repro.core.power_gating` — per-layer sparsity monitoring and
  power-gating decisions for models with no sparsity.
* :mod:`repro.core.config` — Table 2 default configurations.
"""

from repro.core.config import AcceleratorConfig, PEConfig, TileConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import HardwareScheduler, Schedule, BatchScheduler
from repro.core.staging import StagingBuffer
from repro.core.pe import BaselinePE, TensorDashPE
from repro.core.tile import BaselineTile, TensorDashTile
from repro.core.accelerator import Accelerator
from repro.core.backside import PreScheduler, ScheduledTensor, BacksideScheduler
from repro.core.dataflow import TileWorkPartitioner, MultiTileResult
from repro.core.power_gating import SparsityMonitor, PowerGateController

__all__ = [
    "AcceleratorConfig",
    "PEConfig",
    "TileConfig",
    "ConnectivityPattern",
    "HardwareScheduler",
    "Schedule",
    "BatchScheduler",
    "StagingBuffer",
    "BaselinePE",
    "TensorDashPE",
    "BaselineTile",
    "TensorDashTile",
    "Accelerator",
    "PreScheduler",
    "ScheduledTensor",
    "BacksideScheduler",
    "TileWorkPartitioner",
    "MultiTileResult",
    "SparsityMonitor",
    "PowerGateController",
]
