"""Tiles: grids of PEs sharing operands spatially (Fig. 11).

PEs along a row share the same B operand stream (e.g. one filter per row)
and PEs along a column share the same A operand stream (e.g. one window per
column).  In the configuration the paper evaluates, sparsity is extracted
only from the B side: a single scheduler per row drives the multiplexer
select signals of every PE in that row, and a shared A-side staging buffer
per column supplies the values.

Because the A-side staging buffers are shared down the columns, every row
must advance through the dense schedule in lockstep: each cycle the tile
advances by the *minimum* AS across its rows.  Rows whose B stream is
sparser than the slowest row's simply idle (work-imbalance stalls), which
is the effect Figs. 17 and 18 quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PEConfig, TileConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import BatchScheduler, HardwareScheduler
from repro.core.pe import BaselinePE


@dataclass
class TileResult:
    """Outcome of processing one work assignment on a tile."""

    cycles: int
    outputs: np.ndarray          # (rows, columns) accumulated outputs
    macs_performed: int
    macs_total: int
    stall_cycles: int            # cycles in which at least one row was idle

    @property
    def utilization(self) -> float:
        """Fraction of MAC slots that did useful work."""
        if self.macs_total == 0:
            return 0.0
        return self.macs_performed / self.macs_total


def _stack_streams(streams: Sequence[np.ndarray], lanes: int) -> np.ndarray:
    stacked = np.stack([np.asarray(s, dtype=np.float64) for s in streams])
    if stacked.ndim != 3 or stacked.shape[2] != lanes:
        raise ValueError(
            f"each stream must be a (rows, {lanes}) array, got {stacked.shape[1:]}"
        )
    return stacked


class BaselineTile:
    """Dense tile: one dense-schedule row per cycle regardless of content."""

    def __init__(
        self,
        tile_config: Optional[TileConfig] = None,
        pe_config: Optional[PEConfig] = None,
    ):
        self.tile_config = tile_config or TileConfig()
        self.pe_config = pe_config or PEConfig()

    def process(
        self, a_streams: Sequence[np.ndarray], b_streams: Sequence[np.ndarray]
    ) -> TileResult:
        """Process per-column A streams against per-row B streams."""
        lanes = self.pe_config.lanes
        a = _stack_streams(a_streams, lanes)   # (columns, rows_len, lanes)
        b = _stack_streams(b_streams, lanes)   # (rows, rows_len, lanes)
        if a.shape[1] != b.shape[1]:
            raise ValueError("A and B streams must cover the same dense schedule length")
        outputs = np.einsum("ctl,rtl->rc", a, b)
        rows_len = a.shape[1]
        total = rows_len * lanes * a.shape[0] * b.shape[0]
        return TileResult(
            cycles=rows_len,
            outputs=outputs,
            macs_performed=total,
            macs_total=total,
            stall_cycles=0,
        )


class TensorDashTile:
    """TensorDash tile with B-side sparsity extraction and shared A buffers."""

    def __init__(
        self,
        tile_config: Optional[TileConfig] = None,
        pe_config: Optional[PEConfig] = None,
    ):
        self.tile_config = tile_config or TileConfig()
        self.pe_config = pe_config or PEConfig()
        self.pattern = ConnectivityPattern(
            lanes=self.pe_config.lanes, staging_depth=self.pe_config.staging_depth
        )
        self.scheduler = HardwareScheduler(self.pattern)
        self.batch_scheduler = BatchScheduler(self.pattern)

    def process(
        self,
        a_streams: Sequence[np.ndarray],
        b_streams: Sequence[np.ndarray],
        compute_outputs: bool = True,
        vectorized: Optional[bool] = None,
    ) -> TileResult:
        """Process per-column A streams against per-row B streams.

        Parameters
        ----------
        a_streams:
            One ``(rows_len, lanes)`` stream per tile column.
        b_streams:
            One ``(rows_len, lanes)`` stream per tile row; sparsity is
            extracted from these.
        compute_outputs:
            When False, skip the functional accumulation and only count
            cycles (used by the large-scale cycle simulator).
        vectorized:
            Route the cycle-only accounting through the
            :class:`~repro.core.scheduler.BatchScheduler` (all tile rows
            scheduled in one numpy batch per cycle) instead of the
            per-row Python loop.  Defaults to automatic: vectorized when
            ``compute_outputs`` is False.  Both paths are bit-identical
            (the schedulers are property-tested equivalents); functional
            output accumulation always uses the per-row loop.
        """
        lanes = self.pe_config.lanes
        depth = self.pe_config.staging_depth
        a = _stack_streams(a_streams, lanes)
        b = _stack_streams(b_streams, lanes)
        if a.shape[1] != b.shape[1]:
            raise ValueError("A and B streams must cover the same dense schedule length")
        num_columns = a.shape[0]
        num_rows = b.shape[0]
        rows_len = a.shape[1]

        outputs = np.zeros((num_rows, num_columns), dtype=np.float64)
        if rows_len == 0:
            return TileResult(0, outputs, 0, 0, 0)

        pending = b != 0                     # (rows, rows_len, lanes)
        pending = pending.copy()
        if vectorized is None:
            vectorized = not compute_outputs
        if vectorized and not compute_outputs:
            return self._process_cycles_vectorized(
                pending, num_columns, rows_len, lanes, outputs
            )
        position = 0
        cycles = 0
        stall_cycles = 0
        effectual_macs = 0

        while position < rows_len:
            advances: List[int] = []
            any_idle_row = False
            for row in range(num_rows):
                window = np.zeros((depth, lanes), dtype=bool)
                visible = min(depth, rows_len - position)
                window[:visible] = pending[row, position : position + visible]
                schedule = self.scheduler.schedule_step(window)
                if schedule.busy_lanes == 0:
                    any_idle_row = True
                for selection in schedule.selections:
                    if selection is None:
                        continue
                    step, lane = selection
                    stream_row = position + step
                    pending[row, stream_row, lane] = False
                    effectual_macs += num_columns
                    if compute_outputs:
                        outputs[row] += (
                            a[:, stream_row, lane] * b[row, stream_row, lane]
                        )
                advances.append(min(schedule.advance, rows_len - position))
            step_advance = min(advances)
            if any_idle_row or len(set(advances)) > 1:
                stall_cycles += 1
            position += step_advance
            cycles += 1

        total = rows_len * lanes * num_rows * num_columns
        return TileResult(
            cycles=cycles,
            outputs=outputs,
            macs_performed=effectual_macs,
            macs_total=total,
            stall_cycles=stall_cycles,
        )

    def _process_cycles_vectorized(
        self,
        pending: np.ndarray,
        num_columns: int,
        rows_len: int,
        lanes: int,
        outputs: np.ndarray,
    ) -> TileResult:
        """Cycle-only fast path: all tile rows scheduled as one numpy batch.

        Mirrors the serial loop exactly — same lockstep minimum-advance
        rule, same stall and effectual-MAC accounting — but performs one
        :meth:`BatchScheduler.schedule` call per cycle over every row
        instead of one :meth:`HardwareScheduler.schedule_step` per row.
        """
        num_rows = pending.shape[0]
        depth = self.pe_config.staging_depth
        padded = np.zeros((num_rows, rows_len + depth, lanes), dtype=bool)
        padded[:, :rows_len] = pending
        row_index = np.arange(depth)
        position = 0
        cycles = 0
        stall_cycles = 0
        effectual_macs = 0
        while position < rows_len:
            windows = padded[:, position + row_index, :]
            claimed, advance, busy = self.batch_scheduler.schedule(windows)
            padded[:, position + row_index, :] &= ~claimed
            effectual_macs += int(claimed.sum()) * num_columns
            advances = np.minimum(advance, rows_len - position)
            if (busy == 0).any() or np.unique(advances).size > 1:
                stall_cycles += 1
            position += int(advances.min())
            cycles += 1
        total = rows_len * lanes * num_rows * num_columns
        return TileResult(
            cycles=cycles,
            outputs=outputs,
            macs_performed=effectual_macs,
            macs_total=total,
            stall_cycles=stall_cycles,
        )

    def speedup_over_baseline(
        self,
        a_streams: Sequence[np.ndarray],
        b_streams: Sequence[np.ndarray],
    ) -> float:
        """Cycles of the dense tile divided by this tile's cycles."""
        baseline = BaselineTile(self.tile_config, self.pe_config).process(
            a_streams, b_streams
        )
        result = self.process(a_streams, b_streams, compute_outputs=False)
        if result.cycles == 0:
            return 1.0
        return baseline.cycles / result.cycles
