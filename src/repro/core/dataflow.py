"""Work distribution across tiles (the accelerator-level dataflow).

The accelerator has 16 tiles that process a layer cooperatively: work
groups (filter-group x window-group assignments) are distributed across the
tiles, and the layer finishes when the last tile finishes.  Because
TensorDash tiles finish early when their operands are sparse, imbalance in
how sparse each tile's share is adds a second-order synchronisation loss on
top of the intra-tile row imbalance of Fig. 17.  This module models that
assignment and accounts for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.accelerator import Accelerator
from repro.core.config import AcceleratorConfig


@dataclass
class MultiTileResult:
    """Cycle accounting for one operation spread over all tiles."""

    name: str
    per_tile_tensordash_cycles: List[int]
    per_tile_baseline_cycles: List[int]

    @property
    def tensordash_cycles(self) -> int:
        """Latency of the operation: the slowest tile's cycle count."""
        return max(self.per_tile_tensordash_cycles) if self.per_tile_tensordash_cycles else 0

    @property
    def baseline_cycles(self) -> int:
        """Baseline latency under the same work assignment."""
        return max(self.per_tile_baseline_cycles) if self.per_tile_baseline_cycles else 0

    @property
    def speedup(self) -> float:
        if self.tensordash_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.tensordash_cycles

    @property
    def imbalance(self) -> float:
        """Slowest-over-average tile cycles (1.0 = perfectly balanced)."""
        cycles = self.per_tile_tensordash_cycles
        if not cycles or np.mean(cycles) == 0:
            return 1.0
        return float(max(cycles) / np.mean(cycles))


class TileWorkPartitioner:
    """Assigns work groups to tiles and computes accelerator-level latency."""

    def __init__(self, config: Optional[AcceleratorConfig] = None):
        self.config = config or AcceleratorConfig()
        self.accelerator = Accelerator(self.config)

    def partition(self, num_groups: int) -> List[np.ndarray]:
        """Round-robin group indices per tile (the paper's window/filter split)."""
        assignments = [
            np.arange(tile, num_groups, self.config.num_tiles)
            for tile in range(self.config.num_tiles)
        ]
        return [a for a in assignments if a.size > 0] or [np.arange(0)]

    def run_operation(self, name: str, groups: np.ndarray) -> MultiTileResult:
        """Distribute ``groups`` over the tiles and account per-tile latency.

        ``groups`` is the usual ``(num_groups, tile_rows, stream_rows,
        lanes)`` boolean array of effectual positions.
        """
        groups = np.asarray(groups, dtype=bool)
        if groups.ndim != 4:
            raise ValueError(
                f"groups must be 4D (groups, tile_rows, stream_rows, lanes), got {groups.shape}"
            )
        num_groups, _, stream_rows, _ = groups.shape
        per_group_cycles = self.accelerator.tile_cycles_batch(groups)
        tensordash: List[int] = []
        baseline: List[int] = []
        for assignment in self.partition(num_groups):
            tensordash.append(int(per_group_cycles[assignment].sum()))
            baseline.append(int(assignment.size * stream_rows))
        return MultiTileResult(
            name=name,
            per_tile_tensordash_cycles=tensordash,
            per_tile_baseline_cycles=baseline,
        )
