"""Pre-scheduling, scheduled-form storage and the back-side scheduler.

Sections 3.6 and 3.7 of the paper describe storing tensors in *scheduled*
form: each stored value is a pair ``(v, idx)`` where ``idx`` is the
movement (MS select) the front-end scheduler would have produced for that
value with one-side scheduling.  Storing only the non-zero values this way
compresses the tensor, reduces on-chip accesses and amplifies effective
memory capacity; a mirror multiplexer stage (Fig. 12) expands the tensor
back to dense form before it enters a PE's scratchpads.

The :class:`BacksideScheduler` performs the same scheduling at the *output*
of the PEs (Section 3.7), optionally iteratively (one level per cycle) to
reduce hardware cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import HardwareScheduler


@dataclass
class ScheduledRow:
    """One packed row of a scheduled tensor.

    ``values[lane]`` is the value assigned to ``lane`` this step and
    ``indices[lane]`` is the movement rank (the ``idx`` field / MS signal)
    that produced it; ``None`` marks an idle lane.  ``advance`` is the AS
    count the scheduler produced for this step; the decompressor needs it
    to place subsequent rows at the right dense offsets (in hardware it is
    carried alongside the row, two bits per packed row).
    """

    values: np.ndarray
    indices: List[Optional[int]]
    advance: int = 1


@dataclass
class ScheduledTensor:
    """A tensor stored in scheduled (compressed) form.

    Attributes
    ----------
    rows:
        The packed schedule rows.
    dense_rows:
        Number of rows of the original dense schedule (needed to restore
        the original shape).
    lanes:
        Lane width of the schedule.
    """

    rows: List[ScheduledRow]
    dense_rows: int
    lanes: int

    @property
    def scheduled_row_count(self) -> int:
        """Rows occupied in scheduled form."""
        return len(self.rows)

    @property
    def compression_ratio(self) -> float:
        """Dense rows divided by scheduled rows (>= 1 when sparsity exists)."""
        if not self.rows:
            return float(self.dense_rows) if self.dense_rows else 1.0
        return self.dense_rows / len(self.rows)

    def footprint_values(self) -> int:
        """Number of value slots occupied in memory in scheduled form."""
        return len(self.rows) * self.lanes


class PreScheduler:
    """Compresses a dense operand stream into scheduled form and back.

    The compressor runs the one-side hardware scheduler over the stream's
    zero pattern; the decompressor is the mirror multiplexer stage of
    Fig. 12.  ``decompress(compress(x))`` always reproduces ``x`` exactly
    up to its zero values (zeros are not stored), which is the property the
    round-trip tests check.
    """

    def __init__(self, pattern: Optional[ConnectivityPattern] = None):
        self.pattern = pattern or ConnectivityPattern()
        self.scheduler = HardwareScheduler(self.pattern)

    def compress(self, stream: np.ndarray) -> ScheduledTensor:
        """Pack a dense ``(rows, lanes)`` stream into scheduled form."""
        stream = np.asarray(stream, dtype=np.float64)
        if stream.ndim != 2 or stream.shape[1] != self.pattern.lanes:
            raise ValueError(
                f"stream must be (rows, {self.pattern.lanes}), got {stream.shape}"
            )
        rows, lanes = stream.shape
        depth = self.pattern.staging_depth
        pending = stream != 0
        pending = pending.copy()
        packed: List[ScheduledRow] = []
        position = 0
        while position < rows:
            window = np.zeros((depth, lanes), dtype=bool)
            visible = min(depth, rows - position)
            window[:visible] = pending[position : position + visible]
            schedule = self.scheduler.schedule_step(window)
            values = np.zeros(lanes, dtype=np.float64)
            indices: List[Optional[int]] = [None] * lanes
            for lane, selection in enumerate(schedule.selections):
                if selection is None:
                    continue
                step, source_lane = selection
                stream_row = position + step
                pending[stream_row, source_lane] = False
                values[lane] = stream[stream_row, source_lane]
                indices[lane] = schedule.select_signals[lane]
            advance = min(schedule.advance, rows - position)
            packed.append(ScheduledRow(values=values, indices=indices, advance=advance))
            position += advance
        return ScheduledTensor(rows=packed, dense_rows=rows, lanes=lanes)

    def decompress(self, scheduled: ScheduledTensor) -> np.ndarray:
        """Expand a scheduled tensor back to its dense ``(rows, lanes)`` form.

        This is the mirror multiplexer stage of Fig. 12: each stored value
        is routed back to the dense position its ``idx`` field names,
        relative to the dense offset tracked via the stored AS counts.
        """
        dense = np.zeros((scheduled.dense_rows, scheduled.lanes), dtype=np.float64)
        position = 0
        for packed_row in scheduled.rows:
            for lane, idx in enumerate(packed_row.indices):
                if idx is None:
                    continue
                step, source_lane = self.pattern.options_for_lane(lane)[idx]
                dense[position + step, source_lane] = packed_row.values[lane]
            position += packed_row.advance
            if position >= scheduled.dense_rows:
                break
        return dense

    def roundtrip(self, stream: np.ndarray) -> np.ndarray:
        """Compress then decompress (convenience for tests)."""
        return self.decompress(self.compress(stream))


class BacksideScheduler:
    """Scheduler placed at the PE outputs (Section 3.7).

    Output values are produced over several cycles, so the back-side
    scheduler can be iterative: it reuses a single level of the
    hierarchical scheduler over ``levels`` cycles to schedule one block of
    output values, trading latency for area.  The schedule produced is
    identical to the front-end scheduler's; only the number of cycles to
    produce it differs.
    """

    def __init__(self, pattern: Optional[ConnectivityPattern] = None, iterative: bool = True):
        self.pattern = pattern or ConnectivityPattern()
        self.pre_scheduler = PreScheduler(self.pattern)
        self.iterative = iterative

    def schedule_output_block(self, block: np.ndarray) -> Tuple[ScheduledTensor, int]:
        """Schedule a block of produced outputs into stored (scheduled) form.

        Returns the scheduled tensor and the number of scheduler cycles
        spent (``levels`` per packed row when iterative, 1 otherwise).
        """
        scheduled = self.pre_scheduler.compress(block)
        levels = len(self.pattern.level_groups())
        cycles_per_row = levels if self.iterative else 1
        return scheduled, scheduled.scheduled_row_count * cycles_per_row

    def storage_savings(self, block: np.ndarray) -> float:
        """Fraction of value slots saved by storing the block in scheduled form."""
        scheduled = self.pre_scheduler.compress(block)
        dense_slots = block.shape[0] * block.shape[1]
        if dense_slots == 0:
            return 0.0
        return 1.0 - scheduled.footprint_values() / dense_slots
