"""Power gating for models with little or no sparsity (Section 3.5).

When a model exhibits no sparsity the TensorDash-specific components can be
power gated and the staging buffers bypassed so that neither performance
nor energy is penalised.  The decision can be static (the model is known to
be dense) or dynamic: a counter per tensor at the output of each layer
measures the fraction of zeros produced, and that measurement decides
whether TensorDash is enabled for the *next* layer in the same pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class LayerSparsityRecord:
    """Zero statistics of one tensor produced at a layer output."""

    layer: str
    zeros: int
    total: int

    @property
    def sparsity(self) -> float:
        """Fraction of zero values."""
        if self.total == 0:
            return 0.0
        return self.zeros / self.total


class SparsityMonitor:
    """Per-layer zero counters modelling the hardware monitoring counters."""

    def __init__(self):
        self._records: Dict[str, LayerSparsityRecord] = {}

    def observe(self, layer: str, tensor: np.ndarray) -> LayerSparsityRecord:
        """Count zeros in a produced tensor and remember the result."""
        tensor = np.asarray(tensor)
        record = LayerSparsityRecord(
            layer=layer,
            zeros=int(np.count_nonzero(tensor == 0)),
            total=int(tensor.size),
        )
        self._records[layer] = record
        return record

    def sparsity_of(self, layer: str) -> float:
        """Most recently observed sparsity of a layer output (0.0 if unseen)."""
        record = self._records.get(layer)
        return record.sparsity if record is not None else 0.0

    def records(self) -> List[LayerSparsityRecord]:
        """All records in observation order."""
        return list(self._records.values())


class PowerGateController:
    """Decides whether TensorDash should be enabled for a layer.

    Parameters
    ----------
    threshold:
        Minimum observed sparsity for which exploiting sparsity is worth
        the (small) energy of the schedulers and multiplexers.  The paper's
        GCN experiment shows that ~5% layer sparsity still yields a small
        win, so the default threshold is conservative.
    static_disable:
        Force the gate closed regardless of measurements (the "known dense
        model" case).
    """

    def __init__(self, threshold: float = 0.02, static_disable: bool = False):
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self.threshold = threshold
        self.static_disable = static_disable
        self.monitor = SparsityMonitor()
        self._decisions: Dict[str, bool] = {}

    def observe_output(self, layer: str, tensor: np.ndarray) -> None:
        """Record the zero fraction of a layer's output tensor."""
        self.monitor.observe(layer, tensor)

    def should_enable(self, next_layer: str, producer_layer: Optional[str] = None) -> bool:
        """Decide whether to enable TensorDash for ``next_layer``.

        The decision uses the sparsity observed at the producing layer's
        output (its activations or gradients feed the next layer).  When no
        measurement exists yet the gate defaults to enabled, matching the
        paper's "never slows down execution" evaluation setting.
        """
        if self.static_disable:
            decision = False
        elif producer_layer is None:
            decision = True
        else:
            decision = self.monitor.sparsity_of(producer_layer) >= self.threshold
        self._decisions[next_layer] = decision
        return decision

    def decisions(self) -> Dict[str, bool]:
        """All decisions taken so far, keyed by layer."""
        return dict(self._decisions)

    def gated_fraction(self) -> float:
        """Fraction of layers for which TensorDash was power gated."""
        if not self._decisions:
            return 0.0
        disabled = sum(1 for enabled in self._decisions.values() if not enabled)
        return disabled / len(self._decisions)
