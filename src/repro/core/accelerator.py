"""The multi-tile accelerator model.

An accelerator is a grid of tiles (16 by default) fed from shared on-chip
AM/BM/CM memories.  Work is distributed across tiles at the granularity of
(filter-group, window-group) assignments; the accelerator's latency for an
operation is the maximum latency across its tiles (they operate in
lockstep on a layer), matching how the paper's simulator accounts for
inter-tile imbalance.

For large workloads the per-value functional simulation in
:class:`repro.core.tile.TensorDashTile` is too slow, so the accelerator
offers a cycle-only path built on the vectorised
:class:`repro.core.scheduler.BatchScheduler`; its cycle counts are
identical to the functional model (verified by tests) because the
scheduler decisions only depend on the operand zero patterns.

Both execution strategies are exposed explicitly —
:meth:`Accelerator.run_operation_serial` (one group at a time, the path
the ``reference`` engine backend checks against) and
:meth:`Accelerator.run_operation_batched` (all groups at once, the
``vectorized`` backend's kernel) — and :mod:`repro.engine` chooses between
them; :meth:`Accelerator.run_operation` dispatches on the input shape for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import AcceleratorConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import BatchScheduler


@dataclass
class OperationResult:
    """Cycle accounting for one operation (one of the three convolutions).

    ``baseline_cycles`` / ``tensordash_cycles`` are *total* cycles: the
    compute cycles the schedulers produce plus any stall cycles the memory
    hierarchy imposed (zero with the default unbounded hierarchy, so the
    totals equal the legacy compute-only counts bit-exactly).  ``bound``
    records the hierarchy's verdict for the TensorDash design:
    ``"compute"`` when the operation ran at its compute rate, ``"dram"`` /
    ``"sram"`` when that level's bandwidth set the pace.
    """

    name: str
    baseline_cycles: int
    tensordash_cycles: int
    macs_total: int
    macs_effectual: int
    #: Memory-stall cycles included in the totals above.
    baseline_stall_cycles: int = 0
    tensordash_stall_cycles: int = 0
    #: Cycles the memory hierarchy demands for this operation's traffic
    #: (the ``ceil(bytes / bytes-per-cycle)`` floor both designs share).
    memory_cycles: int = 0
    #: Effective DRAM bytes charged (compressed traffic plus capacity spill).
    dram_bytes: int = 0
    #: Compute-bound / memory-bound verdict for the TensorDash design.
    bound: str = "compute"

    @property
    def baseline_compute_cycles(self) -> int:
        """Baseline cycles excluding memory stalls."""
        return self.baseline_cycles - self.baseline_stall_cycles

    @property
    def tensordash_compute_cycles(self) -> int:
        """TensorDash cycles excluding memory stalls."""
        return self.tensordash_cycles - self.tensordash_stall_cycles

    @property
    def memory_bound(self) -> bool:
        """True when the hierarchy's bandwidth set this operation's pace."""
        return self.bound != "compute"

    @property
    def stall_fraction(self) -> float:
        """Share of TensorDash's total cycles spent stalled on memory."""
        if self.tensordash_cycles == 0:
            return 0.0
        return self.tensordash_stall_cycles / self.tensordash_cycles

    @property
    def speedup(self) -> float:
        """Baseline cycles divided by TensorDash cycles (stalls included)."""
        if self.tensordash_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.tensordash_cycles

    @property
    def compute_speedup(self) -> float:
        """Speedup on compute cycles alone (memory stalls excluded).

        Matches the unbounded-hierarchy figure except when the
        staging-refill clamp binds (``staging_depth > scratchpad_banks``
        under a bandwidth-limited hierarchy), which inflates the compute
        cycles themselves.
        """
        if self.tensordash_compute_cycles == 0:
            return 1.0
        return self.baseline_compute_cycles / self.tensordash_compute_cycles

    @property
    def potential_speedup(self) -> float:
        """Work-reduction upper bound: total MACs over effectual MACs."""
        if self.macs_effectual == 0:
            return float(self.macs_total) if self.macs_total else 1.0
        return self.macs_total / self.macs_effectual


class Accelerator:
    """Cycle-level model of the full TensorDash accelerator.

    Parameters
    ----------
    config:
        Accelerator configuration; ``config.power_gated`` turns the model
        into the dense baseline (TensorDash components disabled).
    """

    def __init__(self, config: Optional[AcceleratorConfig] = None):
        self.config = config or AcceleratorConfig()
        self.pattern = ConnectivityPattern(
            lanes=self.config.pe.lanes,
            staging_depth=self.config.pe.staging_depth,
        )
        self.batch_scheduler = BatchScheduler(self.pattern)
        # With a bandwidth-limited memory hierarchy the staging buffers can
        # refill at most ``scratchpad_banks`` rows per cycle (one row per
        # bank); without one — including capacity-only hierarchies, whose
        # sole effect is extra DRAM bytes — the legacy unlimited-refill
        # behaviour keeps cycle counts reproduced bit-exactly.  Table 2
        # banks the scratchpads as deep as the staging buffers, so the
        # limit only binds for exotic geometries (staging depth > banks).
        if self.config.hierarchy.has_bandwidth_limit:
            self.refill_limit: Optional[int] = self.config.memory.scratchpad_banks
        else:
            self.refill_limit = None

    # ------------------------------------------------------------------
    def baseline_cycles_for_rows(self, dense_rows: int) -> int:
        """Cycles the dense baseline needs for ``dense_rows`` schedule rows."""
        return int(dense_rows)

    def tile_cycles(self, row_effectual: np.ndarray) -> int:
        """Cycles one tile needs to process a group of row streams in lockstep.

        Parameters
        ----------
        row_effectual:
            Boolean array of shape ``(tile_rows, stream_rows, lanes)``:
            the effectual (non-zero B) positions of the dense schedule for
            each PE row of the tile.  All rows advance together at the
            minimum per-row AS (shared A-side staging buffers).
        """
        if self.config.power_gated:
            return int(row_effectual.shape[1])
        num_rows, stream_rows, lanes = row_effectual.shape
        depth = self.config.pe.staging_depth
        if stream_rows == 0:
            return 0
        padded = np.zeros((num_rows, stream_rows + depth, lanes), dtype=bool)
        padded[:, :stream_rows] = row_effectual
        position = 0
        cycles = 0
        row_index = np.arange(depth)
        while position < stream_rows:
            windows = padded[:, position + row_index, :]
            claimed, advance, _ = self.batch_scheduler.schedule(
                windows, advance_limit=self.refill_limit
            )
            padded[:, position + row_index, :] &= ~claimed
            step = int(advance.min())
            step = min(step, stream_rows - position)
            position += step
            cycles += 1
        return cycles

    def independent_streams_cycles(self, effectual: np.ndarray) -> np.ndarray:
        """Cycles for independent streams with no inter-row synchronisation.

        Used for single-row tiles and for per-PE (two-side) studies.
        """
        if self.config.power_gated:
            batch, stream_rows, _ = effectual.shape
            return np.full(batch, stream_rows, dtype=np.int64)
        return self.batch_scheduler.stream_cycles_batch(
            effectual, advance_limit=self.refill_limit
        )

    def tile_cycles_batch(self, groups: np.ndarray) -> np.ndarray:
        """Cycles per work group for many tile-row groups processed at once.

        Parameters
        ----------
        groups:
            Boolean array of shape ``(num_groups, tile_rows, stream_rows,
            lanes)``.  Each group's rows advance in lockstep (shared A-side
            staging buffers); different groups are independent.

        Returns
        -------
        numpy.ndarray
            Per-group cycle counts.  Summing them gives the operation's
            TensorDash cycles; ``num_groups * stream_rows`` gives the
            baseline's.
        """
        groups = np.asarray(groups, dtype=bool)
        if groups.ndim != 4:
            raise ValueError(
                f"groups must be 4D (groups, tile_rows, stream_rows, lanes), got {groups.shape}"
            )
        num_groups, tile_rows, stream_rows, lanes = groups.shape
        if self.config.power_gated:
            return np.full(num_groups, stream_rows, dtype=np.int64)
        if stream_rows == 0 or num_groups == 0:
            return np.zeros(num_groups, dtype=np.int64)
        depth = self.config.pe.staging_depth

        flat = groups.reshape(num_groups * tile_rows, stream_rows, lanes)
        padded = np.zeros((flat.shape[0], stream_rows + depth, lanes), dtype=bool)
        padded[:, :stream_rows] = flat

        group_position = np.zeros(num_groups, dtype=np.int64)
        cycles = np.zeros(num_groups, dtype=np.int64)
        row_offsets = np.arange(depth)
        stream_group = np.repeat(np.arange(num_groups), tile_rows)

        active_groups = group_position < stream_rows
        while active_groups.any():
            active_streams = active_groups[stream_group]
            stream_idx = np.nonzero(active_streams)[0]
            positions = group_position[stream_group[stream_idx]]
            gather = positions[:, None] + row_offsets[None, :]
            windows = padded[
                stream_idx[:, None, None],
                gather[:, :, None],
                np.arange(lanes)[None, None, :],
            ]
            claimed, advance, _ = self.batch_scheduler.schedule(
                windows, advance_limit=self.refill_limit
            )
            padded[
                stream_idx[:, None, None],
                gather[:, :, None],
                np.arange(lanes)[None, None, :],
            ] &= ~claimed
            # Reduce the per-stream advance to a per-group minimum.
            group_advance = np.full(num_groups, np.iinfo(np.int64).max, dtype=np.int64)
            np.minimum.at(group_advance, stream_group[stream_idx], advance)
            active_idx = np.nonzero(active_groups)[0]
            step = np.minimum(
                group_advance[active_idx], stream_rows - group_position[active_idx]
            )
            group_position[active_idx] += step
            cycles[active_idx] += 1
            active_groups = group_position < stream_rows
        return cycles

    # ------------------------------------------------------------------
    def run_operation(
        self,
        name: str,
        row_groups: Sequence[np.ndarray],
    ) -> OperationResult:
        """Run one operation expressed as per-tile row groups.

        Parameters
        ----------
        name:
            Operation label (``"AxW"``, ``"AxG"`` or ``"WxG"``).
        row_groups:
            A sequence of boolean arrays, each of shape
            ``(tile_rows, stream_rows, lanes)``.  Each array is the work
            one tile-row-group performs in lockstep; groups are processed
            back to back (or on parallel tiles — the relative speedup is
            unaffected because the baseline is scaled identically).

        A 4D ndarray input takes the batched fast path
        (:meth:`run_operation_batched`); any other sequence takes the
        serial path (:meth:`run_operation_serial`).  Both produce
        bit-identical results.
        """
        if isinstance(row_groups, np.ndarray) and row_groups.ndim == 4:
            return self.run_operation_batched(name, row_groups)
        return self.run_operation_serial(name, row_groups)

    def run_operation_batched(self, name: str, groups: np.ndarray) -> OperationResult:
        """Batched execution: schedule every group's windows at once.

        This is the kernel behind the engine's ``vectorized`` backend;
        ``groups`` must be a boolean 4D array of shape ``(num_groups,
        tile_rows, stream_rows, lanes)``.
        """
        groups = np.asarray(groups, dtype=bool)
        if groups.ndim != 4:
            raise ValueError(
                f"groups must be 4D (groups, tile_rows, stream_rows, lanes), got {groups.shape}"
            )
        num_groups, tile_rows, stream_rows, _ = groups.shape
        return OperationResult(
            name=name,
            baseline_cycles=num_groups * stream_rows,
            tensordash_cycles=int(self.tile_cycles_batch(groups).sum()),
            macs_total=num_groups * tile_rows * stream_rows * self.config.pe.lanes,
            macs_effectual=int(groups.sum()),
        )

    def run_operation_serial(
        self, name: str, row_groups: Sequence[np.ndarray]
    ) -> OperationResult:
        """Serial execution: one group at a time through :meth:`tile_cycles`."""
        baseline_cycles = 0
        tensordash_cycles = 0
        macs_total = 0
        macs_effectual = 0
        lanes = self.config.pe.lanes

        for group in row_groups:
            group = np.asarray(group, dtype=bool)
            if group.ndim != 3:
                raise ValueError(
                    f"row group must be 3D (tile_rows, stream_rows, lanes), got {group.shape}"
                )
            stream_rows = group.shape[1]
            baseline_cycles += self.baseline_cycles_for_rows(stream_rows)
            tensordash_cycles += self.tile_cycles(group)
            macs_total += group.shape[0] * stream_rows * lanes
            macs_effectual += int(group.sum())
        return OperationResult(
            name=name,
            baseline_cycles=baseline_cycles,
            tensordash_cycles=tensordash_cycles,
            macs_total=macs_total,
            macs_effectual=macs_effectual,
        )

    def describe(self) -> str:
        """Summary string for reports."""
        return self.config.describe()
