"""The multi-tile accelerator model.

An accelerator is a grid of tiles (16 by default) fed from shared on-chip
AM/BM/CM memories.  Work is distributed across tiles at the granularity of
(filter-group, window-group) assignments; the accelerator's latency for an
operation is the maximum latency across its tiles (they operate in
lockstep on a layer), matching how the paper's simulator accounts for
inter-tile imbalance.

For large workloads the per-value functional simulation in
:class:`repro.core.tile.TensorDashTile` is too slow, so the accelerator
offers a cycle-only path built on the vectorised
:class:`repro.core.scheduler.BatchScheduler`; its cycle counts are
identical to the functional model (verified by tests) because the
scheduler decisions only depend on the operand zero patterns.

Both execution strategies are exposed explicitly —
:meth:`Accelerator.run_operation_serial` (one group at a time, the path
the ``reference`` engine backend checks against) and
:meth:`Accelerator.run_operation_batched` (all groups at once, the
``vectorized`` backend's kernel) — and :mod:`repro.engine` chooses between
them; :meth:`Accelerator.run_operation` dispatches on the input shape for
backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import AcceleratorConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import BatchScheduler, pack_stream_rows


@dataclass
class OperationResult:
    """Cycle accounting for one operation (one of the three convolutions).

    ``baseline_cycles`` / ``tensordash_cycles`` are *total* cycles: the
    compute cycles the schedulers produce plus any stall cycles the memory
    hierarchy imposed (zero with the default unbounded hierarchy, so the
    totals equal the legacy compute-only counts bit-exactly).  ``bound``
    records the hierarchy's verdict for the TensorDash design:
    ``"compute"`` when the operation ran at its compute rate, ``"dram"`` /
    ``"sram"`` when that level's bandwidth set the pace.
    """

    name: str
    baseline_cycles: int
    tensordash_cycles: int
    macs_total: int
    macs_effectual: int
    #: Memory-stall cycles included in the totals above.
    baseline_stall_cycles: int = 0
    tensordash_stall_cycles: int = 0
    #: Cycles the memory hierarchy demands for this operation's traffic
    #: (the ``ceil(bytes / bytes-per-cycle)`` floor both designs share).
    memory_cycles: int = 0
    #: Effective DRAM bytes charged (compressed traffic plus capacity spill).
    dram_bytes: int = 0
    #: Compute-bound / memory-bound verdict for the TensorDash design.
    bound: str = "compute"

    @property
    def baseline_compute_cycles(self) -> int:
        """Baseline cycles excluding memory stalls."""
        return self.baseline_cycles - self.baseline_stall_cycles

    @property
    def tensordash_compute_cycles(self) -> int:
        """TensorDash cycles excluding memory stalls."""
        return self.tensordash_cycles - self.tensordash_stall_cycles

    @property
    def memory_bound(self) -> bool:
        """True when the hierarchy's bandwidth set this operation's pace."""
        return self.bound != "compute"

    @property
    def stall_fraction(self) -> float:
        """Share of TensorDash's total cycles spent stalled on memory."""
        if self.tensordash_cycles == 0:
            return 0.0
        return self.tensordash_stall_cycles / self.tensordash_cycles

    @property
    def speedup(self) -> float:
        """Baseline cycles divided by TensorDash cycles (stalls included)."""
        if self.tensordash_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.tensordash_cycles

    @property
    def compute_speedup(self) -> float:
        """Speedup on compute cycles alone (memory stalls excluded).

        Matches the unbounded-hierarchy figure except when the
        staging-refill clamp binds (``staging_depth > scratchpad_banks``
        under a bandwidth-limited hierarchy), which inflates the compute
        cycles themselves.
        """
        if self.tensordash_compute_cycles == 0:
            return 1.0
        return self.baseline_compute_cycles / self.tensordash_compute_cycles

    @property
    def potential_speedup(self) -> float:
        """Work-reduction upper bound: total MACs over effectual MACs."""
        if self.macs_effectual == 0:
            return float(self.macs_total) if self.macs_total else 1.0
        return self.macs_total / self.macs_effectual


class Accelerator:
    """Cycle-level model of the full TensorDash accelerator.

    Parameters
    ----------
    config:
        Accelerator configuration; ``config.power_gated`` turns the model
        into the dense baseline (TensorDash components disabled).
    """

    def __init__(self, config: Optional[AcceleratorConfig] = None):
        self.config = config or AcceleratorConfig()
        self.pattern = ConnectivityPattern(
            lanes=self.config.pe.lanes,
            staging_depth=self.config.pe.staging_depth,
        )
        self.batch_scheduler = BatchScheduler(self.pattern)
        # With a bandwidth-limited memory hierarchy the staging buffers can
        # refill at most ``scratchpad_banks`` rows per cycle (one row per
        # bank); without one — including capacity-only hierarchies, whose
        # sole effect is extra DRAM bytes — the legacy unlimited-refill
        # behaviour keeps cycle counts reproduced bit-exactly.  Table 2
        # banks the scratchpads as deep as the staging buffers, so the
        # limit only binds for exotic geometries (staging depth > banks).
        if self.config.hierarchy.has_bandwidth_limit:
            self.refill_limit: Optional[int] = self.config.memory.scratchpad_banks
        else:
            self.refill_limit = None

    # ------------------------------------------------------------------
    def baseline_cycles_for_rows(self, dense_rows: int) -> int:
        """Cycles the dense baseline needs for ``dense_rows`` schedule rows."""
        return int(dense_rows)

    def tile_cycles(self, row_effectual: np.ndarray) -> int:
        """Cycles one tile needs to process a group of row streams in lockstep.

        Parameters
        ----------
        row_effectual:
            Boolean array of shape ``(tile_rows, stream_rows, lanes)``:
            the effectual (non-zero B) positions of the dense schedule for
            each PE row of the tile.  All rows advance together at the
            minimum per-row AS (shared A-side staging buffers).
        """
        if self.config.power_gated:
            return int(row_effectual.shape[1])
        num_rows, stream_rows, lanes = row_effectual.shape
        depth = self.config.pe.staging_depth
        if stream_rows == 0:
            return 0
        padded = np.zeros((num_rows, stream_rows + depth, lanes), dtype=bool)
        padded[:, :stream_rows] = row_effectual
        position = 0
        cycles = 0
        row_index = np.arange(depth)
        while position < stream_rows:
            windows = padded[:, position + row_index, :]
            claimed, advance, _ = self.batch_scheduler.schedule(
                windows, advance_limit=self.refill_limit
            )
            padded[:, position + row_index, :] &= ~claimed
            step = int(advance.min())
            step = min(step, stream_rows - position)
            position += step
            cycles += 1
        return cycles

    def independent_streams_cycles(self, effectual: np.ndarray) -> np.ndarray:
        """Cycles for independent streams with no inter-row synchronisation.

        Used for single-row tiles and for per-PE (two-side) studies.
        """
        if self.config.power_gated:
            batch, stream_rows, _ = effectual.shape
            return np.full(batch, stream_rows, dtype=np.int64)
        return self.batch_scheduler.stream_cycles_batch(
            effectual, advance_limit=self.refill_limit
        )

    def tile_cycles_batch(
        self, groups: np.ndarray, rows_per_group: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Cycles per work group for many tile-row groups processed at once.

        Parameters
        ----------
        groups:
            Boolean array of shape ``(num_groups, tile_rows, stream_rows,
            lanes)``.  Each group's rows advance in lockstep (shared A-side
            staging buffers); different groups are independent.
        rows_per_group:
            Optional per-group dense-schedule lengths, enabling *ragged*
            batches: group ``g`` only covers its first
            ``rows_per_group[g]`` stream rows and every position beyond
            them must be False (padding).  ``None`` means every group
            spans the full ``stream_rows``.  Results are bit-identical to
            running each group in its own exactly-sized batch, which is
            what lets the engine fuse operations of different shapes into
            one scheduling pass.

        Returns
        -------
        numpy.ndarray
            Per-group cycle counts.  Summing them gives the operation's
            TensorDash cycles; summing the per-group row counts gives the
            baseline's.
        """
        groups = np.asarray(groups, dtype=bool)
        if groups.ndim != 4:
            raise ValueError(
                f"groups must be 4D (groups, tile_rows, stream_rows, lanes), got {groups.shape}"
            )
        num_groups, tile_rows, stream_rows, lanes = groups.shape
        if rows_per_group is None:
            rows_per_group = np.full(num_groups, stream_rows, dtype=np.int64)
        else:
            rows_per_group = np.asarray(rows_per_group, dtype=np.int64)
            if rows_per_group.shape != (num_groups,):
                raise ValueError(
                    f"rows_per_group must have shape ({num_groups},), "
                    f"got {rows_per_group.shape}"
                )
        if self.config.power_gated:
            return rows_per_group.copy()
        if stream_rows == 0 or num_groups == 0:
            return np.zeros(num_groups, dtype=np.int64)
        depth = self.config.pe.staging_depth

        if self.batch_scheduler.packable:
            flat = groups.reshape(num_groups * tile_rows, stream_rows, lanes)
            packed = np.zeros(
                (flat.shape[0], stream_rows + depth), dtype=np.uint64
            )
            packed[:, :stream_rows] = pack_stream_rows(flat)
            return self.tile_cycles_packed(packed, tile_rows, rows_per_group)

        flat = groups.reshape(num_groups * tile_rows, stream_rows, lanes)
        padded = np.zeros((flat.shape[0], stream_rows + depth, lanes), dtype=bool)
        padded[:, :stream_rows] = flat

        group_position = np.zeros(num_groups, dtype=np.int64)
        cycles = np.zeros(num_groups, dtype=np.int64)
        row_offsets = np.arange(depth)
        stream_group = np.repeat(np.arange(num_groups), tile_rows)

        active_groups = group_position < rows_per_group
        while active_groups.any():
            active_streams = active_groups[stream_group]
            stream_idx = np.nonzero(active_streams)[0]
            positions = group_position[stream_group[stream_idx]]
            gather = positions[:, None] + row_offsets[None, :]
            windows = padded[
                stream_idx[:, None, None],
                gather[:, :, None],
                np.arange(lanes)[None, None, :],
            ]
            claimed, advance, _ = self.batch_scheduler.schedule(
                windows, advance_limit=self.refill_limit
            )
            padded[
                stream_idx[:, None, None],
                gather[:, :, None],
                np.arange(lanes)[None, None, :],
            ] &= ~claimed
            # Reduce the per-stream advance to a per-group minimum.
            group_advance = np.full(num_groups, np.iinfo(np.int64).max, dtype=np.int64)
            np.minimum.at(group_advance, stream_group[stream_idx], advance)
            active_idx = np.nonzero(active_groups)[0]
            step = np.minimum(
                group_advance[active_idx],
                rows_per_group[active_idx] - group_position[active_idx],
            )
            group_position[active_idx] += step
            cycles[active_idx] += 1
            active_groups = group_position < rows_per_group
        return cycles

    def tile_cycles_packed(
        self,
        packed_rows: np.ndarray,
        tile_rows: int,
        rows_per_group: np.ndarray,
    ) -> np.ndarray:
        """Ragged batched tile cycles on bit-packed operand rows.

        This is the engine's hot kernel: the whole batch — typically every
        work group of every operation of a layer, or of many layers — is
        scheduled together, paying the per-cycle dispatch cost once for
        the batch instead of once per operation.

        Parameters
        ----------
        packed_rows:
            ``uint64`` array of shape ``(num_groups * tile_rows,
            max_rows + staging_depth)``; word ``[s, r]`` holds the lane
            bitmask of stream ``s``'s dense-schedule row ``r`` (see
            :func:`~repro.core.scheduler.pack_stream_rows`).  Streams of
            one group are contiguous.  Rows at or beyond the group's
            ``rows_per_group`` entry must be zero.  **Mutated in place**
            (consumed pairs are cleared) — pass a copy to reuse it.
        tile_rows:
            Streams per lockstep group.
        rows_per_group:
            Per-group dense-schedule lengths, shape ``(num_groups,)``.

        Returns
        -------
        numpy.ndarray
            Per-group cycle counts, bit-identical to the boolean path.
        """
        if not self.batch_scheduler.packable:
            raise ValueError("configuration does not fit 64-bit packed windows")
        rows_per_group = np.asarray(rows_per_group, dtype=np.int64)
        num_groups = rows_per_group.shape[0]
        cycles = np.zeros(num_groups, dtype=np.int64)
        if self.config.power_gated:
            return rows_per_group.copy()
        if num_groups == 0:
            return cycles
        lanes = self.config.pe.lanes
        depth = self.config.pe.staging_depth
        width = packed_rows.shape[1]
        if packed_rows.shape[0] != num_groups * tile_rows:
            raise ValueError(
                f"expected {num_groups * tile_rows} packed streams, "
                f"got {packed_rows.shape[0]}"
            )
        flat = np.ascontiguousarray(packed_rows).reshape(-1)
        lane_mask = np.uint64((1 << lanes) - 1) if lanes < 64 else ~np.uint64(0)
        shifts = [np.uint64(lanes * k) for k in range(depth)]
        tile_offsets = np.arange(tile_rows, dtype=np.int64) * width

        position = np.zeros(num_groups, dtype=np.int64)
        active = position < rows_per_group
        active_idx = np.nonzero(active)[0]
        while active_idx.size:
            # Streams of active groups are contiguous runs of tile_rows.
            base = (
                active_idx[:, None] * (tile_rows * width)
                + tile_offsets[None, :]
                + position[active_idx, None]
            ).reshape(-1)
            windows = flat[base]
            for k in range(1, depth):
                windows = windows | (flat[base + k] << shifts[k])
            claimed, advance, _ = self.batch_scheduler.schedule_packed(
                windows, advance_limit=self.refill_limit
            )
            flat[base] &= ~(claimed & lane_mask)
            for k in range(1, depth):
                flat[base + k] &= ~((claimed >> shifts[k]) & lane_mask)
            group_advance = advance.reshape(-1, tile_rows).min(axis=1)
            step = np.minimum(
                group_advance, rows_per_group[active_idx] - position[active_idx]
            )
            position[active_idx] += step
            cycles[active_idx] += 1
            active_idx = active_idx[
                position[active_idx] < rows_per_group[active_idx]
            ]
        return cycles

    # ------------------------------------------------------------------
    def run_operation(
        self,
        name: str,
        row_groups: Sequence[np.ndarray],
    ) -> OperationResult:
        """Run one operation expressed as per-tile row groups.

        Parameters
        ----------
        name:
            Operation label (``"AxW"``, ``"AxG"`` or ``"WxG"``).
        row_groups:
            A sequence of boolean arrays, each of shape
            ``(tile_rows, stream_rows, lanes)``.  Each array is the work
            one tile-row-group performs in lockstep; groups are processed
            back to back (or on parallel tiles — the relative speedup is
            unaffected because the baseline is scaled identically).

        A 4D ndarray input takes the batched fast path
        (:meth:`run_operation_batched`); any other sequence takes the
        serial path (:meth:`run_operation_serial`).  Both produce
        bit-identical results.
        """
        if isinstance(row_groups, np.ndarray) and row_groups.ndim == 4:
            return self.run_operation_batched(name, row_groups)
        return self.run_operation_serial(name, row_groups)

    def run_operation_batched(self, name: str, groups: np.ndarray) -> OperationResult:
        """Batched execution: schedule every group's windows at once.

        This is the kernel behind the engine's ``vectorized`` backend;
        ``groups`` must be a boolean 4D array of shape ``(num_groups,
        tile_rows, stream_rows, lanes)``.
        """
        groups = np.asarray(groups, dtype=bool)
        if groups.ndim != 4:
            raise ValueError(
                f"groups must be 4D (groups, tile_rows, stream_rows, lanes), got {groups.shape}"
            )
        num_groups, tile_rows, stream_rows, _ = groups.shape
        return OperationResult(
            name=name,
            baseline_cycles=num_groups * stream_rows,
            tensordash_cycles=int(self.tile_cycles_batch(groups).sum()),
            macs_total=num_groups * tile_rows * stream_rows * self.config.pe.lanes,
            macs_effectual=int(groups.sum()),
        )

    #: Upper bound on the ``uint64`` words one merged scheduling bucket may
    #: hold (~64 MiB).  Units are packed greedily in ascending stream-row
    #: order, so each bucket mixes similar lengths and padding stays small.
    BATCH_WORD_BUDGET = 8_000_000

    def run_operations_batched(
        self, units: Sequence[Tuple[str, np.ndarray]]
    ) -> List[OperationResult]:
        """Run many operations through shared ragged scheduling batches.

        ``units`` is a sequence of ``(name, groups)`` pairs as accepted by
        :meth:`run_operation_batched`; the units may come from different
        operations *and different layers* — each work group is an
        independent lockstep unit, so fusing them into one batch changes
        nothing about the schedule while amortising the per-cycle
        dispatch cost over the whole batch.  Results are returned in
        input order and are bit-identical to calling
        :meth:`run_operation_batched` per unit.

        Units are sorted by stream-row count and merged into buckets of
        at most :data:`BATCH_WORD_BUDGET` packed words *after padding*,
        with padding capped at half a bucket — this bounds peak memory
        and keeps the first-touch cost of fresh allocations proportional
        to the useful data.  Configurations whose staging window exceeds
        64 bits fall back to the per-unit boolean path.
        """
        results: List[Optional[OperationResult]] = [None] * len(units)
        if not units:
            return []
        if not self.batch_scheduler.packable or self.config.power_gated:
            for index, (name, groups) in enumerate(units):
                results[index] = self.run_operation_batched(name, groups)
            return results

        depth = self.config.pe.staging_depth
        shapes = []
        for name, groups in units:
            groups = np.asarray(groups, dtype=bool)
            if groups.ndim != 4:
                raise ValueError(
                    f"groups must be 4D (groups, tile_rows, stream_rows, lanes), "
                    f"got {groups.shape}"
                )
            shapes.append(groups.shape)
        tile_rows = {shape[1] for shape in shapes if shape[0]}
        if len(tile_rows) > 1:
            raise ValueError(f"units mix tile_rows values: {sorted(tile_rows)}")

        order = sorted(range(len(units)), key=lambda i: shapes[i][2])
        bucket: List[int] = []
        bucket_streams = 0
        bucket_words = 0
        for index in order:
            num_groups, rows_in_tile, stream_rows, _ = shapes[index]
            if num_groups == 0 or stream_rows == 0:
                results[index] = self.run_operation_batched(*units[index])
                continue
            streams = num_groups * rows_in_tile
            words = streams * (stream_rows + depth)
            # Ascending sort makes the candidate's stream_rows the bucket
            # maximum, so this is the exact post-padding allocation size.
            padded = (bucket_streams + streams) * (stream_rows + depth)
            if bucket and (
                padded > self.BATCH_WORD_BUDGET
                or padded > 2 * (bucket_words + words)
            ):
                self._run_bucket(bucket, units, shapes, results)
                bucket, bucket_streams, bucket_words = [], 0, 0
            bucket.append(index)
            bucket_streams += streams
            bucket_words += words
        if bucket:
            self._run_bucket(bucket, units, shapes, results)
        return results

    def _run_bucket(
        self,
        bucket: List[int],
        units: Sequence[Tuple[str, np.ndarray]],
        shapes: List[tuple],
        results: List[Optional[OperationResult]],
    ) -> None:
        """Schedule one merged bucket and scatter its per-unit results."""
        depth = self.config.pe.staging_depth
        lanes = self.config.pe.lanes
        tile_rows = shapes[bucket[0]][1]
        max_rows = max(shapes[i][2] for i in bucket)
        width = max_rows + depth
        total_groups = sum(shapes[i][0] for i in bucket)
        packed = np.zeros((total_groups * tile_rows, width), dtype=np.uint64)
        rows_per_group = np.empty(total_groups, dtype=np.int64)
        offset = 0
        for index in bucket:
            groups = np.asarray(units[index][1], dtype=bool)
            num_groups, _, stream_rows, _ = shapes[index]
            packed[
                offset * tile_rows : (offset + num_groups) * tile_rows, :stream_rows
            ] = pack_stream_rows(groups.reshape(-1, stream_rows, lanes))
            rows_per_group[offset : offset + num_groups] = stream_rows
            offset += num_groups
        cycles = self.tile_cycles_packed(packed, tile_rows, rows_per_group)
        offset = 0
        for index in bucket:
            name, groups = units[index]
            groups = np.asarray(groups, dtype=bool)
            num_groups, _, stream_rows, _ = shapes[index]
            results[index] = OperationResult(
                name=name,
                baseline_cycles=num_groups * stream_rows,
                tensordash_cycles=int(
                    cycles[offset : offset + num_groups].sum()
                ),
                macs_total=num_groups * tile_rows * stream_rows * lanes,
                macs_effectual=int(groups.sum()),
            )
            offset += num_groups

    def run_operation_serial(
        self, name: str, row_groups: Sequence[np.ndarray]
    ) -> OperationResult:
        """Serial execution: one group at a time through :meth:`tile_cycles`."""
        baseline_cycles = 0
        tensordash_cycles = 0
        macs_total = 0
        macs_effectual = 0
        lanes = self.config.pe.lanes

        for group in row_groups:
            group = np.asarray(group, dtype=bool)
            if group.ndim != 3:
                raise ValueError(
                    f"row group must be 3D (tile_rows, stream_rows, lanes), got {group.shape}"
                )
            stream_rows = group.shape[1]
            baseline_cycles += self.baseline_cycles_for_rows(stream_rows)
            tensordash_cycles += self.tile_cycles(group)
            macs_total += group.shape[0] * stream_rows * lanes
            macs_effectual += int(group.sum())
        return OperationResult(
            name=name,
            baseline_cycles=baseline_cycles,
            tensordash_cycles=tensordash_cycles,
            macs_total=macs_total,
            macs_effectual=macs_effectual,
        )

    def describe(self) -> str:
        """Summary string for reports."""
        return self.config.describe()
