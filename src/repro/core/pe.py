"""Processing elements: the dense baseline PE and the TensorDash PE.

Both PEs perform ``lanes`` MAC operations per cycle, all accumulating into
a single output value (Fig. 6).  The TensorDash PE (Fig. 8) adds staging
buffers, the sparse interconnect and the hardware scheduler, letting it
retire up to ``staging_depth`` dense rows per cycle when sparsity allows.

The PE models are *functional*: they compute the actual accumulated dot
product as well as the cycle count, so tests can verify that skipping
ineffectual MACs never changes the result (the paper's "does not affect
numerical fidelity" property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import PEConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import HardwareScheduler, Schedule
from repro.core.staging import StagingBuffer


@dataclass
class PEResult:
    """Outcome of processing one operand-stream pair through a PE."""

    cycles: int
    output: float
    macs_performed: int
    macs_total: int

    @property
    def skipped_macs(self) -> int:
        """MAC slots eliminated relative to the dense schedule."""
        return self.macs_total - self.macs_performed


def _validate_streams(a_stream: np.ndarray, b_stream: np.ndarray, lanes: int) -> None:
    if a_stream.shape != b_stream.shape:
        raise ValueError(
            f"operand streams must have identical shapes, got "
            f"{a_stream.shape} and {b_stream.shape}"
        )
    if a_stream.ndim != 2 or a_stream.shape[1] != lanes:
        raise ValueError(
            f"streams must be (rows, {lanes}) arrays, got shape {a_stream.shape}"
        )


class BaselinePE:
    """The dense baseline PE: one dense-schedule row per cycle."""

    def __init__(self, config: Optional[PEConfig] = None):
        self.config = config or PEConfig()

    def process(self, a_stream: np.ndarray, b_stream: np.ndarray) -> PEResult:
        """Process aligned operand streams; cycles equal the number of rows."""
        a_stream = np.asarray(a_stream, dtype=np.float64)
        b_stream = np.asarray(b_stream, dtype=np.float64)
        _validate_streams(a_stream, b_stream, self.config.lanes)
        rows = a_stream.shape[0]
        output = float(np.sum(a_stream * b_stream))
        total = rows * self.config.lanes
        return PEResult(cycles=rows, output=output, macs_performed=total, macs_total=total)


class TensorDashPE:
    """The TensorDash PE: staging buffers + sparse interconnect + scheduler.

    Parameters
    ----------
    config:
        PE geometry.  ``config.two_side`` selects whether the scheduler sees
        zeros on both operands (per-PE scheduling, Section 3.1) or only on
        the B operand (the tile configuration of Section 3.3).
    """

    def __init__(self, config: Optional[PEConfig] = None):
        self.config = config or PEConfig()
        self.pattern = ConnectivityPattern(
            lanes=self.config.lanes, staging_depth=self.config.staging_depth
        )
        self.scheduler = HardwareScheduler(self.pattern)

    def process(
        self, a_stream: np.ndarray, b_stream: np.ndarray
    ) -> Tuple[PEResult, List[Schedule]]:
        """Process aligned operand streams, skipping ineffectual pairs.

        Returns the functional/cycle result plus the per-cycle schedules
        (useful for inspecting MS/AS signal behaviour in tests).
        """
        a_stream = np.asarray(a_stream, dtype=np.float64)
        b_stream = np.asarray(b_stream, dtype=np.float64)
        _validate_streams(a_stream, b_stream, self.config.lanes)

        a_buffer = StagingBuffer(a_stream, depth=self.config.staging_depth)
        b_buffer = StagingBuffer(b_stream, depth=self.config.staging_depth)

        rows = a_stream.shape[0]
        if self.config.two_side:
            pending = (a_stream != 0) & (b_stream != 0)
        else:
            pending = b_stream != 0
        pending = pending.copy()

        cycles = 0
        output = 0.0
        macs_performed = 0
        schedules: List[Schedule] = []
        depth = self.config.staging_depth
        lanes = self.config.lanes

        position = 0
        while position < rows:
            window = np.zeros((depth, lanes), dtype=bool)
            visible = min(depth, rows - position)
            window[:visible] = pending[position : position + visible]
            schedule = self.scheduler.schedule_step(window)
            for selection in schedule.selections:
                if selection is None:
                    continue
                step, lane = selection
                row = position + step
                pending[row, lane] = False
                output += float(a_stream[row, lane]) * float(b_stream[row, lane])
                macs_performed += 1
            advance = min(schedule.advance, rows - position)
            a_buffer.advance(advance)
            b_buffer.advance(advance)
            position += advance
            cycles += 1
            schedules.append(schedule)

        result = PEResult(
            cycles=cycles,
            output=output,
            macs_performed=macs_performed,
            macs_total=rows * lanes,
        )
        return result, schedules

    def speedup_over_baseline(
        self, a_stream: np.ndarray, b_stream: np.ndarray
    ) -> float:
        """Convenience: cycles of the baseline PE divided by this PE's cycles."""
        baseline = BaselinePE(self.config).process(a_stream, b_stream)
        result, _ = self.process(a_stream, b_stream)
        if result.cycles == 0:
            return 1.0
        return baseline.cycles / result.cycles
