"""Operand staging buffers (Fig. 9).

Each PE operand side has a small buffer holding the next ``depth`` rows of
the dense schedule.  The buffer produces the zero bit-vector the scheduler
consumes and supports row-granular refill (driven by the AS signal).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class StagingBuffer:
    """An N-deep, ``lanes``-wide staging buffer fed from an operand stream.

    The buffer is a sliding window over a stream of dense-schedule rows.
    ``window()`` exposes the current rows (zero padded past the end of the
    stream), ``zero_vector()`` the per-position zero flags, and
    ``advance(n)`` retires ``n`` rows, modelling the refill from the banked
    scratchpads.
    """

    def __init__(self, stream: np.ndarray, depth: int = 3):
        stream = np.asarray(stream)
        if stream.ndim != 2:
            raise ValueError(f"stream must be 2D (rows, lanes), got shape {stream.shape}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.stream = stream
        self.depth = depth
        self.lanes = stream.shape[1]
        self.position = 0

    @property
    def rows(self) -> int:
        """Total rows in the backing stream."""
        return self.stream.shape[0]

    @property
    def exhausted(self) -> bool:
        """True when every row of the stream has been retired."""
        return self.position >= self.rows

    @property
    def visible_rows(self) -> int:
        """Number of real (non padding) rows in the current window."""
        return max(0, min(self.depth, self.rows - self.position))

    def window(self) -> np.ndarray:
        """The current ``(depth, lanes)`` window, zero padded at the end."""
        window = np.zeros((self.depth, self.lanes), dtype=self.stream.dtype)
        visible = self.visible_rows
        if visible:
            window[:visible] = self.stream[self.position : self.position + visible]
        return window

    def zero_vector(self) -> np.ndarray:
        """Boolean ``(depth, lanes)`` array marking zero values (the AZ/BZ signal)."""
        return self.window() == 0

    def nonzero_vector(self) -> np.ndarray:
        """Boolean ``(depth, lanes)`` array marking non-zero values."""
        return self.window() != 0

    def value_at(self, step: int, lane: int) -> float:
        """Read one value through the sparse interconnect."""
        if not 0 <= step < self.depth:
            raise IndexError(f"step {step} outside staging depth {self.depth}")
        row = self.position + step
        if row >= self.rows:
            return 0.0
        return float(self.stream[row, lane])

    def advance(self, count: int) -> int:
        """Retire ``count`` rows (the AS signal); returns rows actually retired."""
        if count < 0:
            raise ValueError(f"advance count must be non-negative, got {count}")
        actual = min(count, self.rows - self.position)
        self.position += actual
        return actual

    def reset(self) -> None:
        """Rewind to the start of the stream."""
        self.position = 0

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate over the raw dense rows (baseline processing order)."""
        for row in range(self.rows):
            yield self.stream[row]
