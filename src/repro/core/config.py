"""Configuration dataclasses mirroring the paper's Table 2 defaults."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.memory.hierarchy import MemoryHierarchy


#: Datatypes the hardware model supports.  The paper evaluates FP32 and
#: bfloat16; the PE model is datatype agnostic so fixed-point widths are
#: accepted too for the energy model.
SUPPORTED_DATATYPES = ("fp32", "bfloat16", "fp16", "fixed16", "fixed8")

#: Bits per value for each supported datatype.
DATATYPE_BITS = {
    "fp32": 32,
    "bfloat16": 16,
    "fp16": 16,
    "fixed16": 16,
    "fixed8": 8,
}


@dataclass(frozen=True)
class PEConfig:
    """Configuration of a single processing element.

    The paper's preferred PE performs 16 MACs per cycle with a 3-deep
    staging buffer per operand side (lookahead 2, lookaside 5 — eight
    movement options per multiplier input, Fig. 9).
    """

    lanes: int = 16
    staging_depth: int = 3
    datatype: str = "fp32"
    #: Extract sparsity from both operand sides (per-PE scheduling) or only
    #: from the B side (the tile configuration the paper evaluates).
    two_side: bool = False

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.staging_depth < 1:
            raise ValueError(
                f"staging_depth must be >= 1, got {self.staging_depth}"
            )
        if self.datatype not in SUPPORTED_DATATYPES:
            raise ValueError(
                f"unsupported datatype {self.datatype!r}; "
                f"expected one of {SUPPORTED_DATATYPES}"
            )

    @property
    def lookahead(self) -> int:
        """Maximum lookahead in time steps (staging depth minus one)."""
        return self.staging_depth - 1

    @property
    def value_bits(self) -> int:
        """Width of a single operand value in bits."""
        return DATATYPE_BITS[self.datatype]

    @property
    def max_speedup(self) -> float:
        """Upper bound on speedup: at most ``staging_depth`` rows retire per cycle."""
        return float(self.staging_depth)


@dataclass(frozen=True)
class TileConfig:
    """Configuration of a grid of PEs sharing operands (Fig. 11)."""

    rows: int = 4
    columns: int = 4

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ValueError(
                f"tile must have positive dimensions, got {self.rows}x{self.columns}"
            )

    @property
    def pes(self) -> int:
        """Number of PEs in the tile."""
        return self.rows * self.columns


@dataclass(frozen=True)
class MemoryConfig:
    """On-chip and off-chip memory configuration (Table 2)."""

    #: Per-tile activation / B-operand / output SRAM: 256 KB x 4 banks each.
    am_kb_per_bank: int = 256
    bm_kb_per_bank: int = 256
    cm_kb_per_bank: int = 256
    banks_per_tile: int = 4
    #: Per-PE scratchpads: 1 KB x 3 banks each.
    scratchpad_kb: int = 1
    scratchpad_banks: int = 3
    #: Transposer internal buffer.
    transposer_buffer_kb: int = 1
    transposers: int = 15
    #: Off-chip memory: 16 GB, 4-channel LPDDR4-3200.
    dram_gb: int = 16
    dram_channels: int = 4
    dram_mts: int = 3200
    #: Zero-compress off-chip transfers (both designs do, per the paper's
    #: methodology).  Disabling it feeds raw byte counts to the bandwidth
    #: model and the DRAM energy accounting alike.
    compress_offchip: bool = True

    @property
    def on_chip_kb_per_tile(self) -> int:
        """Total AM + BM + CM capacity per tile in KB."""
        return (
            self.am_kb_per_bank + self.bm_kb_per_bank + self.cm_kb_per_bank
        ) * self.banks_per_tile

    @property
    def peak_dram_bandwidth_gbps(self) -> float:
        """Peak off-chip bandwidth in GB/s.

        Delegates to :class:`repro.memory.dram.DRAMModel` so the
        performance model (hierarchy, roofline CLI) and the DRAM
        latency/energy model can never disagree on peak bandwidth.
        """
        from repro.memory.dram import DRAMModel

        return DRAMModel(
            channels=self.dram_channels, mts=self.dram_mts
        ).peak_bandwidth_gbps


@dataclass(frozen=True)
class AcceleratorConfig:
    """Full accelerator configuration (Table 2 defaults).

    16 tiles of 4x4 PEs, 16 MACs per PE: 4096 MACs per cycle at 500 MHz in
    a 65 nm node.
    """

    pe: PEConfig = field(default_factory=PEConfig)
    tile: TileConfig = field(default_factory=TileConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Bandwidth/capacity limits the cycle simulator enforces.  The
    #: default is unbounded (infinite bandwidth), which reproduces the
    #: compute-only cycle counts bit-exactly; set finite limits (or use
    #: ``MemoryHierarchy.table2()`` / ``.edge()``) to make memory a
    #: performance constraint.
    hierarchy: MemoryHierarchy = field(default_factory=MemoryHierarchy)
    num_tiles: int = 16
    frequency_mhz: int = 500
    tech_node_nm: int = 65
    #: When True, the TensorDash-specific components are power-gated and the
    #: accelerator behaves exactly like the dense baseline.
    power_gated: bool = False

    def __post_init__(self) -> None:
        if self.num_tiles < 1:
            raise ValueError(f"num_tiles must be >= 1, got {self.num_tiles}")
        if self.frequency_mhz <= 0:
            raise ValueError(
                f"frequency_mhz must be positive, got {self.frequency_mhz}"
            )

    @property
    def total_pes(self) -> int:
        """Number of PEs across all tiles."""
        return self.num_tiles * self.tile.pes

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput per cycle."""
        return self.total_pes * self.pe.lanes

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1000.0 / self.frequency_mhz

    def with_pe(self, **kwargs) -> "AcceleratorConfig":
        """Return a copy with PE fields overridden."""
        return replace(self, pe=replace(self.pe, **kwargs))

    def with_hierarchy(self, **kwargs) -> "AcceleratorConfig":
        """Return a copy with memory-hierarchy fields overridden.

        Unset fields keep their current value, so limits compose::

            config.with_hierarchy(dram_bandwidth_gbps=25.6).with_hierarchy(sram_kb=512)
        """
        return replace(self, hierarchy=replace(self.hierarchy, **kwargs))

    def with_tile(self, rows: int | None = None, columns: int | None = None) -> "AcceleratorConfig":
        """Return a copy with tile geometry overridden."""
        tile = TileConfig(
            rows=rows if rows is not None else self.tile.rows,
            columns=columns if columns is not None else self.tile.columns,
        )
        return replace(self, tile=tile)

    def describe(self) -> str:
        """Human-readable one-line summary used by the benchmark harness."""
        text = (
            f"{self.num_tiles} tiles x {self.tile.rows}x{self.tile.columns} PEs x "
            f"{self.pe.lanes} MACs ({self.pe.datatype}, staging depth "
            f"{self.pe.staging_depth}, {self.frequency_mhz} MHz)"
        )
        if not self.hierarchy.is_unbounded:
            limits = []
            if self.hierarchy.dram_bandwidth_gbps is not None:
                limits.append(f"DRAM {self.hierarchy.dram_bandwidth_gbps:g} GB/s")
            if self.hierarchy.sram_bandwidth_gbps is not None:
                limits.append(f"SRAM {self.hierarchy.sram_bandwidth_gbps:g} GB/s")
            if self.hierarchy.sram_kb is not None:
                limits.append(f"SRAM {self.hierarchy.sram_kb} KB")
            text += f" [memory: {', '.join(limits)}]"
        return text


def paper_default_config() -> AcceleratorConfig:
    """The configuration of Table 2 used for all headline results."""
    return AcceleratorConfig()


def bfloat16_config() -> AcceleratorConfig:
    """The bfloat16 variant evaluated in Section 4.4."""
    return AcceleratorConfig(pe=PEConfig(datatype="bfloat16"))
