"""Scaled SqueezeNet (Iandola et al.) for 32x32 inputs.

SqueezeNet's fire modules (a 1x1 "squeeze" convolution followed by parallel
1x1 and 3x3 "expand" convolutions whose outputs are concatenated) are kept.
SqueezeNet is already heavily optimised for parameter count, yet the paper
still measures a better-than-2x potential speedup for it in Fig. 1 — the
fire modules' ReLUs keep producing activation sparsity.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Concat, Conv2D, GlobalAvgPool2D, Linear, MaxPool2D, ReLU
from repro.nn.model import Graph


def _add_fire_module(
    graph: Graph,
    input_name: str,
    in_channels: int,
    squeeze: int,
    expand: int,
    prefix: str,
    rng: np.random.Generator,
) -> tuple:
    """Append one fire module; returns (output node name, output channels)."""
    graph.add_node(f"{prefix}_squeeze",
                   Conv2D(in_channels, squeeze, 1, rng=rng, name=f"{prefix}_squeeze"),
                   [input_name])
    graph.add_node(f"{prefix}_squeeze_relu", ReLU(name=f"{prefix}_squeeze_relu"),
                   [f"{prefix}_squeeze"])
    graph.add_node(f"{prefix}_expand1",
                   Conv2D(squeeze, expand, 1, rng=rng, name=f"{prefix}_expand1"),
                   [f"{prefix}_squeeze_relu"])
    graph.add_node(f"{prefix}_expand1_relu", ReLU(name=f"{prefix}_expand1_relu"),
                   [f"{prefix}_expand1"])
    graph.add_node(f"{prefix}_expand3",
                   Conv2D(squeeze, expand, 3, padding=1, rng=rng, name=f"{prefix}_expand3"),
                   [f"{prefix}_squeeze_relu"])
    graph.add_node(f"{prefix}_expand3_relu", ReLU(name=f"{prefix}_expand3_relu"),
                   [f"{prefix}_expand3"])
    graph.add_node(f"{prefix}_concat", Concat(axis=1, name=f"{prefix}_concat"),
                   [f"{prefix}_expand1_relu", f"{prefix}_expand3_relu"])
    return f"{prefix}_concat", 2 * expand


def build_squeezenet(
    num_classes: int = 10,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
    seed: int = 0,
) -> Graph:
    """Build the scaled SqueezeNet out of fire modules."""
    rng = np.random.default_rng(seed)
    graph = Graph(output="logits", name="squeezenet")

    def width(base: int) -> int:
        return max(4, int(base * width_multiplier))

    stem = width(32)
    graph.add_node("stem_conv",
                   Conv2D(in_channels, stem, 3, stride=1, padding=1, rng=rng,
                          name="stem_conv"),
                   [Graph.INPUT])
    graph.add_node("stem_relu", ReLU(name="stem_relu"), ["stem_conv"])
    graph.add_node("stem_pool", MaxPool2D(2, name="stem_pool"), ["stem_relu"])

    current, channels = _add_fire_module(
        graph, "stem_pool", stem, width(8), width(16), "fire2", rng
    )
    current, channels = _add_fire_module(
        graph, current, channels, width(8), width(16), "fire3", rng
    )
    graph.add_node("pool3", MaxPool2D(2, name="pool3"), [current])
    current, channels = _add_fire_module(
        graph, "pool3", channels, width(12), width(24), "fire4", rng
    )
    current, channels = _add_fire_module(
        graph, current, channels, width(12), width(24), "fire5", rng
    )
    graph.add_node("pool5", MaxPool2D(2, name="pool5"), [current])
    current, channels = _add_fire_module(
        graph, "pool5", channels, width(16), width(32), "fire6", rng
    )

    # Classifier: 1x1 conv to class channels, then global average pooling.
    graph.add_node("classifier_conv",
                   Conv2D(channels, num_classes, 1, rng=rng, name="classifier_conv"),
                   [current])
    graph.add_node("classifier_relu", ReLU(name="classifier_relu"), ["classifier_conv"])
    graph.add_node("gap", GlobalAvgPool2D(name="gap"), ["classifier_relu"])
    graph.add_node("logits", Linear(num_classes, num_classes, rng=rng, name="fc"), ["gap"])
    return graph
