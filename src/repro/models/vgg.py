"""Scaled VGG-16 (Simonyan & Zisserman) for 32x32 inputs.

VGG's homogeneous 3x3 conv + ReLU stacks with pooling after each block are
preserved; the channel counts are scaled down so the model trains on a CPU
while producing the same layer-by-layer sparsity structure.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.nn import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    Module,
    ReLU,
    Sequential,
)

#: Block structure of VGG-16: (number of convs, base output channels).
_VGG16_BLOCKS = ((2, 16), (2, 32), (3, 64), (3, 96), (3, 96))


def build_vgg16(
    num_classes: int = 10,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
    seed: int = 0,
) -> Sequential:
    """Build the scaled VGG-16 with its characteristic conv blocks."""
    rng = np.random.default_rng(seed)
    layers: List[Module] = []
    channels = in_channels
    spatial = 32
    for block_index, (convs, base_width) in enumerate(_VGG16_BLOCKS):
        width = max(8, int(base_width * width_multiplier))
        for conv_index in range(convs):
            layers.append(
                Conv2D(
                    channels,
                    width,
                    kernel_size=3,
                    stride=1,
                    padding=1,
                    rng=rng,
                    name=f"block{block_index + 1}_conv{conv_index + 1}",
                )
            )
            layers.append(ReLU(name=f"block{block_index + 1}_relu{conv_index + 1}"))
            channels = width
        # VGG pools after every block; stop pooling once the map is tiny.
        if spatial > 2:
            layers.append(MaxPool2D(kernel_size=2, name=f"pool{block_index + 1}"))
            spatial //= 2

    layers.extend(
        [
            Flatten(name="flatten"),
            Linear(channels * spatial * spatial, max(64, int(256 * width_multiplier)),
                   rng=rng, name="fc1"),
            ReLU(name="fc_relu1"),
            Dropout(p=0.5, rng=rng, name="fc_drop1"),
            Linear(max(64, int(256 * width_multiplier)),
                   max(32, int(128 * width_multiplier)), rng=rng, name="fc2"),
            ReLU(name="fc_relu2"),
            Linear(max(32, int(128 * width_multiplier)), num_classes, rng=rng, name="fc3"),
        ]
    )
    return Sequential(layers, name="vgg16")
