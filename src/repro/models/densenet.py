"""Scaled DenseNet-121 (Huang et al.) for 32x32 inputs.

DenseNet's defining features are dense blocks (each layer's output is
concatenated onto the running feature map) and a BN -> ReLU -> Conv
ordering with batch normalisation between every convolution and the next
ReLU.  The paper singles this structure out: the BN layer between a
convolution and the subsequent ReLU "absorbs" gradient sparsity, which is
why DenseNet-121's W*G speedup in Fig. 13 is negligible and its overall
potential in Fig. 1 is the lowest of the zoo.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Flatten,
    GlobalAvgPool2D,
    Linear,
    ReLU,
)
from repro.nn.model import Graph


#: Dense block structure: layers per block.  DenseNet-121 uses (6, 12, 24,
#: 16); scaled to keep forward/backward cheap while preserving the growth
#: pattern.
_DENSE_BLOCKS = (3, 4, 4)
_GROWTH_RATE = 12


def _add_dense_layer(
    graph: Graph,
    input_name: str,
    in_channels: int,
    growth_rate: int,
    prefix: str,
    rng: np.random.Generator,
) -> str:
    """BN -> ReLU -> 3x3 Conv producing ``growth_rate`` channels."""
    graph.add_node(f"{prefix}_bn", BatchNorm2D(in_channels, name=f"{prefix}_bn"),
                   [input_name])
    graph.add_node(f"{prefix}_relu", ReLU(name=f"{prefix}_relu"), [f"{prefix}_bn"])
    graph.add_node(f"{prefix}_conv",
                   Conv2D(in_channels, growth_rate, 3, stride=1, padding=1, rng=rng,
                          name=f"{prefix}_conv"),
                   [f"{prefix}_relu"])
    return f"{prefix}_conv"


def build_densenet121(
    num_classes: int = 10,
    in_channels: int = 3,
    growth_rate: int = _GROWTH_RATE,
    seed: int = 0,
) -> Graph:
    """Build the scaled DenseNet-121 as a DAG of dense blocks and transitions."""
    rng = np.random.default_rng(seed)
    graph = Graph(output="logits", name="densenet121")

    stem_width = 2 * growth_rate
    graph.add_node("stem_conv",
                   Conv2D(in_channels, stem_width, 3, stride=1, padding=1, rng=rng,
                          name="stem_conv"),
                   [Graph.INPUT])
    current = "stem_conv"
    channels = stem_width

    for block_index, num_layers in enumerate(_DENSE_BLOCKS):
        for layer_index in range(num_layers):
            prefix = f"block{block_index + 1}_layer{layer_index + 1}"
            new_features = _add_dense_layer(
                graph, current, channels, growth_rate, prefix, rng
            )
            concat_name = f"{prefix}_concat"
            graph.add_node(concat_name, Concat(axis=1, name=concat_name),
                           [current, new_features])
            current = concat_name
            channels += growth_rate

        if block_index != len(_DENSE_BLOCKS) - 1:
            # Transition layer: BN -> ReLU -> 1x1 conv (halve channels) -> avg pool.
            prefix = f"transition{block_index + 1}"
            out_channels = channels // 2
            graph.add_node(f"{prefix}_bn", BatchNorm2D(channels, name=f"{prefix}_bn"),
                           [current])
            graph.add_node(f"{prefix}_relu", ReLU(name=f"{prefix}_relu"),
                           [f"{prefix}_bn"])
            graph.add_node(f"{prefix}_conv",
                           Conv2D(channels, out_channels, 1, stride=1, padding=0,
                                  rng=rng, name=f"{prefix}_conv"),
                           [f"{prefix}_relu"])
            graph.add_node(f"{prefix}_pool", AvgPool2D(kernel_size=2, name=f"{prefix}_pool"),
                           [f"{prefix}_conv"])
            current = f"{prefix}_pool"
            channels = out_channels

    graph.add_node("final_bn", BatchNorm2D(channels, name="final_bn"), [current])
    graph.add_node("final_relu", ReLU(name="final_relu"), ["final_bn"])
    graph.add_node("gap", GlobalAvgPool2D(name="gap"), ["final_relu"])
    graph.add_node("logits", Linear(channels, num_classes, rng=rng, name="fc"), ["gap"])
    return graph
