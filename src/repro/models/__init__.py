"""The model zoo: scaled-down versions of the networks the paper evaluates.

The paper traces training of AlexNet, VGG16, ResNet-50, DenseNet-121,
SqueezeNet (ImageNet classification), img2txt (scene understanding /
captioning), SNLI (natural-language inference), two pruned-while-training
ResNet-50 variants (DS90 and SM90) and GCN (a gated convolutional language
model with virtually no sparsity).  Full ImageNet-scale training is not
feasible here, so each model is reproduced at reduced width/depth while
preserving the architectural features that determine operand sparsity:
ReLU placement, batch-normalisation placement (DenseNet), residual
connections (ResNet), concatenation (DenseNet/SqueezeNet), dropout
(AlexNet/VGG) and gated linear units without ReLU (GCN).
"""

from repro.models.alexnet import build_alexnet
from repro.models.vgg import build_vgg16
from repro.models.resnet import build_resnet50
from repro.models.densenet import build_densenet121
from repro.models.squeezenet import build_squeezenet
from repro.models.img2txt import build_img2txt
from repro.models.snli import build_snli
from repro.models.gcn import build_gcn
from repro.models.registry import (
    ModelSpec,
    MODEL_REGISTRY,
    build_model,
    build_dataset,
    available_models,
)

__all__ = [
    "build_alexnet",
    "build_vgg16",
    "build_resnet50",
    "build_densenet121",
    "build_squeezenet",
    "build_img2txt",
    "build_snli",
    "build_gcn",
    "ModelSpec",
    "MODEL_REGISTRY",
    "build_model",
    "build_dataset",
    "available_models",
]
