"""Scaled img2txt (Show-and-Tell style captioning) stand-in.

The paper's img2txt workload (Vinyals et al.) is a CNN encoder followed by
an LSTM decoder.  This stand-in keeps the compute profile that matters to
the accelerator: a small convolutional encoder producing image features,
followed by a large fully-connected decoder stack (which is where an LSTM's
matmuls live) with ReLU nonlinearities.  Sparsity therefore appears both in
the convolutional activations/gradients and in the decoder matmuls, which
is the behaviour Fig. 13 shows for img2txt.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Conv2D,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)


def build_img2txt(
    vocab_size: int = 256,
    in_channels: int = 3,
    feature_dim: int = 128,
    seed: int = 0,
) -> Sequential:
    """Build the img2txt stand-in: conv encoder + FC decoder over the vocabulary."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            # Encoder: a compact CNN producing an image embedding.
            Conv2D(in_channels, 24, 3, stride=1, padding=1, rng=rng, name="enc_conv1"),
            ReLU(name="enc_relu1"),
            MaxPool2D(2, name="enc_pool1"),
            Conv2D(24, 48, 3, stride=1, padding=1, rng=rng, name="enc_conv2"),
            ReLU(name="enc_relu2"),
            MaxPool2D(2, name="enc_pool2"),
            Conv2D(48, 64, 3, stride=1, padding=1, rng=rng, name="enc_conv3"),
            ReLU(name="enc_relu3"),
            MaxPool2D(2, name="enc_pool3"),
            Flatten(name="enc_flatten"),
            Linear(64 * 4 * 4, feature_dim, rng=rng, name="enc_fc"),
            ReLU(name="enc_fc_relu"),
            # Decoder: the recurrent decoder's matmul stack, unrolled.
            Linear(feature_dim, 2 * feature_dim, rng=rng, name="dec_fc1"),
            ReLU(name="dec_relu1"),
            Linear(2 * feature_dim, 2 * feature_dim, rng=rng, name="dec_fc2"),
            ReLU(name="dec_relu2"),
            Linear(2 * feature_dim, vocab_size, rng=rng, name="dec_logits"),
        ],
        name="img2txt",
    )
