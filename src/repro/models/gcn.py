"""Scaled GCN: the gated convolutional language model (Dauphin et al.).

The paper uses GCN (trained on Wikitext-2) as the counter-example with
*virtually no sparsity*: gated linear units compute ``a * sigmoid(b)``,
and because neither factor clamps to exactly zero the activations and
gradients stay dense.  TensorDash then gains only ~1% (a few layers show
about 5% sparsity) and, without power gating, pays a ~0.5% energy penalty.
Reproducing that behaviour requires reproducing the GLU structure, which
this stand-in does with fully-connected gated blocks over token embeddings.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import Embedding, Flatten, Linear, Sequential
from repro.nn import functional as F
from repro.nn.module import Module


class GatedLinearUnit(Module):
    """A gated linear unit: ``out = (W_a x) * sigmoid(W_b x)``.

    Both branches are :class:`Linear` layers so their matmuls are traced
    like any other layer; the elementwise gate produces essentially no
    zeros, which is the point of the GCN workload.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(name=name)
        self.value_proj = self.register_module(
            "value_proj", Linear(in_features, out_features, rng=rng, name=f"{self.name}.value")
        )
        self.gate_proj = self.register_module(
            "gate_proj", Linear(in_features, out_features, rng=rng, name=f"{self.name}.gate")
        )
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        value = self.value_proj(x)
        gate = F.sigmoid(self.gate_proj(x))
        self._cache = (value, gate)
        return value * gate

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() called before forward()")
        value, gate = self._cache
        grad_value = grad_out * gate
        grad_gate_pre = grad_out * value * gate * (1.0 - gate)
        grad_x = self.value_proj.backward(grad_value)
        grad_x = grad_x + self.gate_proj.backward(grad_gate_pre)
        return grad_x


class _FlattenTokens(Module):
    """Flatten (batch, tokens, features) embeddings to (batch, tokens*features)."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._shape: Optional[tuple] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() called before forward()")
        return grad_out.reshape(self._shape)


def build_gcn(
    vocab_size: int = 512,
    sequence_length: int = 20,
    embedding_dim: int = 32,
    hidden_dim: int = 128,
    num_classes: int = 512,
    seed: int = 0,
) -> Sequential:
    """Build the scaled GCN language model (gated blocks, no ReLU anywhere)."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Embedding(vocab_size, embedding_dim, rng=rng, name="embedding"),
            _FlattenTokens(name="flatten_tokens"),
            GatedLinearUnit(sequence_length * embedding_dim, hidden_dim, rng=rng, name="glu1"),
            GatedLinearUnit(hidden_dim, hidden_dim, rng=rng, name="glu2"),
            GatedLinearUnit(hidden_dim, hidden_dim, rng=rng, name="glu3"),
            Linear(hidden_dim, num_classes, rng=rng, name="lm_head"),
        ],
        name="gcn",
    )
