"""Scaled ResNet-50 (He et al.) for 32x32 inputs.

ResNet's bottleneck residual blocks (1x1 reduce, 3x3, 1x1 expand, identity
shortcut, post-addition ReLU) are preserved.  The residual additions matter
for the paper's results: adding the shortcut to the block output reduces
activation sparsity compared to a plain conv stack, which is why ResNet-50
shows lower potential speedup than AlexNet/VGG unless pruning is applied
during training (the DS90/SM90 variants).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.nn import (
    Add,
    BatchNorm2D,
    Conv2D,
    Flatten,
    GlobalAvgPool2D,
    Linear,
    ReLU,
)
from repro.nn.model import Graph


#: Stage structure of ResNet-50: (blocks, base bottleneck width).  Scaled to
#: three stages of two blocks so a full forward/backward pass stays cheap.
_RESNET50_STAGES = ((2, 16), (2, 32), (2, 48))
_EXPANSION = 2


def _add_bottleneck(
    graph: Graph,
    input_name: str,
    in_channels: int,
    width: int,
    stride: int,
    prefix: str,
    rng: np.random.Generator,
) -> Tuple[str, int]:
    """Append one bottleneck block to the graph; returns (output node, channels)."""
    out_channels = width * _EXPANSION

    graph.add_node(f"{prefix}_conv1",
                   Conv2D(in_channels, width, 1, stride=1, padding=0, rng=rng,
                          name=f"{prefix}_conv1"),
                   [input_name])
    graph.add_node(f"{prefix}_bn1", BatchNorm2D(width, name=f"{prefix}_bn1"),
                   [f"{prefix}_conv1"])
    graph.add_node(f"{prefix}_relu1", ReLU(name=f"{prefix}_relu1"), [f"{prefix}_bn1"])

    graph.add_node(f"{prefix}_conv2",
                   Conv2D(width, width, 3, stride=stride, padding=1, rng=rng,
                          name=f"{prefix}_conv2"),
                   [f"{prefix}_relu1"])
    graph.add_node(f"{prefix}_bn2", BatchNorm2D(width, name=f"{prefix}_bn2"),
                   [f"{prefix}_conv2"])
    graph.add_node(f"{prefix}_relu2", ReLU(name=f"{prefix}_relu2"), [f"{prefix}_bn2"])

    graph.add_node(f"{prefix}_conv3",
                   Conv2D(width, out_channels, 1, stride=1, padding=0, rng=rng,
                          name=f"{prefix}_conv3"),
                   [f"{prefix}_relu2"])
    graph.add_node(f"{prefix}_bn3", BatchNorm2D(out_channels, name=f"{prefix}_bn3"),
                   [f"{prefix}_conv3"])

    # Shortcut: identity when shapes match, 1x1 projection otherwise.
    if stride != 1 or in_channels != out_channels:
        graph.add_node(f"{prefix}_proj",
                       Conv2D(in_channels, out_channels, 1, stride=stride, padding=0,
                              rng=rng, name=f"{prefix}_proj"),
                       [input_name])
        shortcut = f"{prefix}_proj"
    else:
        shortcut = input_name

    graph.add_node(f"{prefix}_add", Add(name=f"{prefix}_add"),
                   [f"{prefix}_bn3", shortcut])
    graph.add_node(f"{prefix}_out", ReLU(name=f"{prefix}_out"), [f"{prefix}_add"])
    return f"{prefix}_out", out_channels


def build_resnet50(
    num_classes: int = 10,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
    seed: int = 0,
) -> Graph:
    """Build the scaled ResNet-50 as a DAG of bottleneck blocks."""
    rng = np.random.default_rng(seed)
    graph = Graph(output="logits", name="resnet50")

    stem_width = max(8, int(16 * width_multiplier))
    graph.add_node("stem_conv",
                   Conv2D(in_channels, stem_width, 3, stride=1, padding=1, rng=rng,
                          name="stem_conv"),
                   [Graph.INPUT])
    graph.add_node("stem_bn", BatchNorm2D(stem_width, name="stem_bn"), ["stem_conv"])
    graph.add_node("stem_relu", ReLU(name="stem_relu"), ["stem_bn"])

    current = "stem_relu"
    channels = stem_width
    for stage_index, (blocks, base_width) in enumerate(_RESNET50_STAGES):
        width = max(8, int(base_width * width_multiplier))
        for block_index in range(blocks):
            stride = 2 if (block_index == 0 and stage_index > 0) else 1
            current, channels = _add_bottleneck(
                graph,
                current,
                channels,
                width,
                stride,
                prefix=f"stage{stage_index + 1}_block{block_index + 1}",
                rng=rng,
            )

    graph.add_node("gap", GlobalAvgPool2D(name="gap"), [current])
    graph.add_node("logits", Linear(channels, num_classes, rng=rng, name="fc"), ["gap"])
    return graph
