"""Scaled SNLI natural-language-inference model.

The paper's SNLI workload encodes a premise and a hypothesis and classifies
their relation (entailment / contradiction / neutral).  The stand-in embeds
a concatenated token sequence, encodes each position with a shared
fully-connected ReLU encoder, mean-pools over positions and classifies with
an MLP — the compute is dominated by FC matmuls whose activations and
gradients carry ReLU sparsity, matching the profile the paper traces.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import Embedding, Linear, ReLU
from repro.nn.module import Module


class _MeanOverTokens(Module):
    """Average token representations over the sequence dimension."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._length: int = 0

    def forward(self, x: np.ndarray) -> np.ndarray:
        # x: (batch, tokens, features)
        self._length = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out[:, None, :] / self._length
        return np.repeat(grad, self._length, axis=1)


class SNLIModel(Module):
    """Embedding + token encoder + pooled classifier."""

    def __init__(
        self,
        vocab_size: int = 512,
        embedding_dim: int = 64,
        hidden_dim: int = 128,
        num_classes: int = 3,
        seed: int = 0,
    ):
        super().__init__(name="snli")
        rng = np.random.default_rng(seed)
        self.embedding = self.register_module(
            "embedding", Embedding(vocab_size, embedding_dim, rng=rng, name="embedding")
        )
        self.encoder_fc1 = self.register_module(
            "encoder_fc1", Linear(embedding_dim, hidden_dim, rng=rng, name="encoder_fc1")
        )
        self.encoder_relu1 = self.register_module("encoder_relu1", ReLU(name="encoder_relu1"))
        self.encoder_fc2 = self.register_module(
            "encoder_fc2", Linear(hidden_dim, hidden_dim, rng=rng, name="encoder_fc2")
        )
        self.encoder_relu2 = self.register_module("encoder_relu2", ReLU(name="encoder_relu2"))
        self.pool = self.register_module("pool", _MeanOverTokens(name="pool"))
        self.classifier_fc1 = self.register_module(
            "classifier_fc1", Linear(hidden_dim, hidden_dim, rng=rng, name="classifier_fc1")
        )
        self.classifier_relu = self.register_module(
            "classifier_relu", ReLU(name="classifier_relu")
        )
        self.classifier_fc2 = self.register_module(
            "classifier_fc2", Linear(hidden_dim, num_classes, rng=rng, name="classifier_fc2")
        )
        self._token_shape: Optional[tuple] = None

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        # tokens: (batch, sequence) integer ids.
        batch, sequence = tokens.shape
        self._token_shape = (batch, sequence)
        embedded = self.embedding(tokens)                     # (batch, seq, emb)
        flat = embedded.reshape(batch * sequence, -1)
        encoded = self.encoder_relu1(self.encoder_fc1(flat))
        encoded = self.encoder_relu2(self.encoder_fc2(encoded))
        encoded = encoded.reshape(batch, sequence, -1)
        pooled = self.pool(encoded)
        hidden = self.classifier_relu(self.classifier_fc1(pooled))
        return self.classifier_fc2(hidden)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._token_shape is None:
            raise RuntimeError("backward() called before forward()")
        batch, sequence = self._token_shape
        grad = self.classifier_fc2.backward(grad_out)
        grad = self.classifier_relu.backward(grad)
        grad = self.classifier_fc1.backward(grad)
        grad = self.pool.backward(grad)
        grad = grad.reshape(batch * sequence, -1)
        grad = self.encoder_relu2.backward(grad)
        grad = self.encoder_fc2.backward(grad)
        grad = self.encoder_relu1.backward(grad)
        grad = self.encoder_fc1.backward(grad)
        grad = grad.reshape(batch, sequence, -1)
        return self.embedding.backward(grad)


def build_snli(
    vocab_size: int = 512,
    embedding_dim: int = 64,
    hidden_dim: int = 128,
    num_classes: int = 3,
    seed: int = 0,
) -> SNLIModel:
    """Build the scaled SNLI model."""
    return SNLIModel(
        vocab_size=vocab_size,
        embedding_dim=embedding_dim,
        hidden_dim=hidden_dim,
        num_classes=num_classes,
        seed=seed,
    )
