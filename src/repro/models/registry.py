"""Model registry: the paper's workload list, ready to train and trace.

Each entry knows how to build the model, which synthetic dataset feeds it,
and (for the DS90 / SM90 variants) which pruning-during-training method to
attach.  The benchmark harness iterates over this registry to produce the
per-model series of Figs. 1 and 13-16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.models.alexnet import build_alexnet
from repro.models.densenet import build_densenet121
from repro.models.gcn import build_gcn
from repro.models.img2txt import build_img2txt
from repro.models.resnet import build_resnet50
from repro.models.snli import build_snli
from repro.models.squeezenet import build_squeezenet
from repro.models.vgg import build_vgg16
from repro.training.data import SyntheticImageDataset, SyntheticSequenceDataset


@dataclass
class ModelSpec:
    """One workload: model factory, dataset factory and optional pruning."""

    name: str
    build: Callable[..., object]
    dataset: Callable[..., object]
    pruning: Optional[str] = None           # None, "dynamic_sparse" or "sparse_momentum"
    description: str = ""
    #: Classes the synthetic dataset should expose for this model's head.
    num_classes: int = 10


def _image_dataset(num_classes: int = 10, seed: int = 0) -> SyntheticImageDataset:
    return SyntheticImageDataset(num_classes=num_classes, channels=3, size=32, seed=seed)


def _sequence_dataset(num_classes: int, vocab: int = 512, length: int = 20, seed: int = 0):
    return SyntheticSequenceDataset(
        vocab_size=vocab, sequence_length=length, num_classes=num_classes, seed=seed
    )


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    "alexnet": ModelSpec(
        name="alexnet",
        build=build_alexnet,
        dataset=_image_dataset,
        description="Scaled AlexNet, ImageNet-classification stand-in",
    ),
    "vgg16": ModelSpec(
        name="vgg16",
        build=build_vgg16,
        dataset=_image_dataset,
        description="Scaled VGG-16, ImageNet-classification stand-in",
    ),
    "resnet50": ModelSpec(
        name="resnet50",
        build=build_resnet50,
        dataset=_image_dataset,
        description="Scaled ResNet-50 (dense training)",
    ),
    "resnet50_DS90": ModelSpec(
        name="resnet50_DS90",
        build=build_resnet50,
        dataset=_image_dataset,
        pruning="dynamic_sparse",
        description="ResNet-50 trained with dynamic sparse reparameterization (90% target)",
    ),
    "resnet50_SM90": ModelSpec(
        name="resnet50_SM90",
        build=build_resnet50,
        dataset=_image_dataset,
        pruning="sparse_momentum",
        description="ResNet-50 trained with sparse momentum (90% target)",
    ),
    "densenet121": ModelSpec(
        name="densenet121",
        build=build_densenet121,
        dataset=_image_dataset,
        description="Scaled DenseNet-121 (BN between conv and ReLU)",
    ),
    "squeezenet": ModelSpec(
        name="squeezenet",
        build=build_squeezenet,
        dataset=_image_dataset,
        description="Scaled SqueezeNet (fire modules)",
    ),
    "img2txt": ModelSpec(
        name="img2txt",
        build=build_img2txt,
        dataset=lambda num_classes=128, seed=0: _image_dataset(num_classes=num_classes, seed=seed),
        description="Image-captioning stand-in (conv encoder + FC decoder)",
        num_classes=128,
    ),
    "snli": ModelSpec(
        name="snli",
        build=build_snli,
        dataset=lambda num_classes=3, seed=0: _sequence_dataset(num_classes=3, seed=seed),
        description="SNLI natural-language-inference stand-in",
        num_classes=3,
    ),
    "gcn": ModelSpec(
        name="gcn",
        build=build_gcn,
        dataset=lambda num_classes=512, seed=0: _sequence_dataset(num_classes=512, seed=seed),
        description="Gated convolutional language model (virtually no sparsity)",
        num_classes=512,
    ),
}

#: The models the paper's headline figures sweep over, in figure order.
PAPER_MODELS: List[str] = [
    "alexnet",
    "densenet121",
    "squeezenet",
    "vgg16",
    "img2txt",
    "resnet50_DS90",
    "resnet50_SM90",
    "snli",
]


def available_models() -> List[str]:
    """Names of every registered workload."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, seed: int = 0, **kwargs):
    """Instantiate a registered model by name."""
    spec = MODEL_REGISTRY.get(name)
    if spec is None:
        raise KeyError(f"unknown model {name!r}; known: {available_models()}")
    builder_kwargs = dict(kwargs)
    if spec.name in ("snli", "gcn"):
        return spec.build(seed=seed, **builder_kwargs)
    if spec.name == "img2txt":
        return spec.build(vocab_size=spec.num_classes, seed=seed, **builder_kwargs)
    return spec.build(num_classes=spec.num_classes, seed=seed, **builder_kwargs)


def build_dataset(name: str, seed: int = 0):
    """Instantiate the synthetic dataset matching a registered model."""
    spec = MODEL_REGISTRY.get(name)
    if spec is None:
        raise KeyError(f"unknown model {name!r}; known: {available_models()}")
    return spec.dataset(num_classes=spec.num_classes, seed=seed)


def trace_workload(
    name: str,
    epochs: int = 2,
    batches_per_epoch: int = 2,
    batch_size: int = 8,
    seed: int = 0,
    learning_rate: float = 0.01,
    trace_max_batch: Optional[int] = None,
):
    """Train a registered workload briefly and return its operand traces.

    The one shared train-and-trace path: builds the model, its synthetic
    dataset and any pruning hook the workload requires, runs the short
    training loop, and returns the resulting
    :class:`~repro.training.tracing.TrainingTrace`.  The CLI, the
    benchmark harness and the design-space study runner all call this, so
    tracing defaults cannot drift between entry points.

    ``trace_max_batch`` caps the samples kept per traced convolutional
    layer (``None`` keeps the trainer's default of 4).  Multi-device
    scaling runs raise it to the device count so data-parallel shards
    stay balanced; everything else leaves it alone.
    """
    # Imported lazily: repro.training imports this module's datasets, so a
    # top-level import would be circular.
    from repro.nn.optim import MomentumSGD
    from repro.training.trainer import Trainer, TrainingConfig

    model = build_model(name, seed=seed)
    dataset = build_dataset(name, seed=seed)
    optimizer = MomentumSGD(model.parameters(), lr=learning_rate)
    trainer = Trainer(
        model,
        optimizer,
        config=TrainingConfig(
            epochs=epochs,
            batches_per_epoch=batches_per_epoch,
            batch_size=batch_size,
            learning_rate=learning_rate,
            **(
                {}
                if trace_max_batch is None
                else {"trace_max_batch": int(trace_max_batch)}
            ),
        ),
        pruning_hook=build_pruning_hook(name, optimizer),
    )
    return trainer.train(dataset, model_name=name)


def build_pruning_hook(name: str, optimizer=None):
    """Instantiate the pruning method a registered workload requires, if any."""
    spec = MODEL_REGISTRY.get(name)
    if spec is None:
        raise KeyError(f"unknown model {name!r}; known: {available_models()}")
    if spec.pruning is None:
        return None
    if spec.pruning == "dynamic_sparse":
        from repro.pruning import DynamicSparseReparameterization

        return DynamicSparseReparameterization(target_sparsity=0.9)
    if spec.pruning == "sparse_momentum":
        from repro.pruning import SparseMomentumPruner

        pruner = SparseMomentumPruner(target_sparsity=0.9)
        if optimizer is not None:
            pruner.bind_optimizer(optimizer)
        return pruner
    raise ValueError(f"unknown pruning method {spec.pruning!r}")
