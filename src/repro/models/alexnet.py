"""Scaled AlexNet (Krizhevsky et al.) for 32x32 inputs.

AlexNet's distinguishing features for sparsity purposes are plain
conv + ReLU stacks with max pooling and a large dropout-regularised
fully-connected head; both produce substantial activation and gradient
sparsity, which is why AlexNet sits near the top of the paper's Fig. 1.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    Conv2D,
    Dropout,
    Flatten,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
)


def build_alexnet(
    num_classes: int = 10,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
    seed: int = 0,
) -> Sequential:
    """Build the scaled AlexNet.

    Parameters
    ----------
    num_classes:
        Output classes of the classifier head.
    in_channels:
        Input image channels.
    width_multiplier:
        Scales every channel count; 1.0 gives the default scaled model.
    seed:
        Seed of the weight-initialisation generator.
    """
    rng = np.random.default_rng(seed)

    def width(base: int) -> int:
        return max(8, int(base * width_multiplier))

    return Sequential(
        [
            Conv2D(in_channels, width(32), kernel_size=3, stride=1, padding=1,
                   rng=rng, name="conv1"),
            ReLU(name="relu1"),
            MaxPool2D(kernel_size=2, name="pool1"),
            Conv2D(width(32), width(64), kernel_size=3, stride=1, padding=1,
                   rng=rng, name="conv2"),
            ReLU(name="relu2"),
            MaxPool2D(kernel_size=2, name="pool2"),
            Conv2D(width(64), width(96), kernel_size=3, stride=1, padding=1,
                   rng=rng, name="conv3"),
            ReLU(name="relu3"),
            Conv2D(width(96), width(96), kernel_size=3, stride=1, padding=1,
                   rng=rng, name="conv4"),
            ReLU(name="relu4"),
            Conv2D(width(96), width(64), kernel_size=3, stride=1, padding=1,
                   rng=rng, name="conv5"),
            ReLU(name="relu5"),
            MaxPool2D(kernel_size=2, name="pool3"),
            Flatten(name="flatten"),
            Dropout(p=0.5, rng=rng, name="drop1"),
            Linear(width(64) * 4 * 4, width(256), rng=rng, name="fc6"),
            ReLU(name="relu6"),
            Dropout(p=0.5, rng=rng, name="drop2"),
            Linear(width(256), width(128), rng=rng, name="fc7"),
            ReLU(name="relu7"),
            Linear(width(128), num_classes, rng=rng, name="fc8"),
        ],
        name="alexnet",
    )
