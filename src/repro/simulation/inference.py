"""Inference-mode pre-scheduling (Sections 3.6.1-3.6.2).

During inference the weights are static, so they can be *pre-scheduled*:
packed in memory in scheduled (value, idx) form offline, bypassing the
dynamic scheduler on the weight side entirely while the idx fields drive
the activation-side multiplexers directly.  Activations, which are produced
at run time, are scheduled by the back-side scheduler as they are written.
Convolutional layers pre-schedule activations in channel groups because all
windows consume the same (row, column) channel block together.

This module models the three options the paper describes for a
fully-connected inference layer — weight-side pre-scheduling,
activation-side (back-side) scheduling, and both-side pre-scheduling with
the Fig. 12 decompressor — and reports cycles plus memory footprint for
each, alongside the dynamic (training-style) TensorDash scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.backside import PreScheduler
from repro.core.config import PEConfig
from repro.core.interconnect import ConnectivityPattern
from repro.core.scheduler import BatchScheduler


@dataclass
class InferenceLayerReport:
    """Cycle and footprint accounting for one FC inference layer."""

    baseline_cycles: int
    weight_prescheduled_cycles: int
    dynamic_cycles: int
    dense_weight_values: int
    scheduled_weight_values: int

    @property
    def weight_prescheduled_speedup(self) -> float:
        if self.weight_prescheduled_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.weight_prescheduled_cycles

    @property
    def dynamic_speedup(self) -> float:
        if self.dynamic_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.dynamic_cycles

    @property
    def weight_compression_ratio(self) -> float:
        if self.scheduled_weight_values == 0:
            return 1.0
        return self.dense_weight_values / self.scheduled_weight_values


class FullyConnectedInference:
    """Models an FC layer's inference on TensorDash with pre-scheduled weights.

    Parameters
    ----------
    config:
        PE geometry (lanes and staging depth).
    """

    def __init__(self, config: Optional[PEConfig] = None):
        self.config = config or PEConfig()
        self.pattern = ConnectivityPattern(
            lanes=self.config.lanes, staging_depth=self.config.staging_depth
        )
        self.pre_scheduler = PreScheduler(self.pattern)
        self.batch_scheduler = BatchScheduler(self.pattern)

    def _weight_stream(self, weights: np.ndarray, filter_index: int) -> np.ndarray:
        """The dense-schedule stream of one filter: its weights, 16 per row."""
        lanes = self.config.lanes
        row = weights[filter_index]
        rows = -(-row.size // lanes)
        stream = np.zeros((rows, lanes), dtype=np.float64)
        stream.reshape(-1)[: row.size] = row
        return stream

    def analyze_layer(self, weights: np.ndarray) -> InferenceLayerReport:
        """Analyse one FC layer (``weights`` shaped ``(filters, in_features)``).

        * baseline: one dense row per cycle, per filter;
        * weight pre-scheduled: the scheduled weight rows are streamed
          directly, so cycles equal the scheduled row count (the dynamic
          scheduler is bypassed);
        * dynamic: the training-style scheduler applied at run time, which
          produces the same schedule (the compressor *is* the scheduler),
          so its cycle count matches — the difference is where the
          scheduling work happens, not how many cycles the MACs take.
        """
        filters = weights.shape[0]
        baseline_cycles = 0
        prescheduled_cycles = 0
        dynamic_cycles = 0
        dense_values = 0
        scheduled_values = 0
        for filter_index in range(filters):
            stream = self._weight_stream(weights, filter_index)
            baseline_cycles += stream.shape[0]
            scheduled = self.pre_scheduler.compress(stream)
            prescheduled_cycles += scheduled.scheduled_row_count
            dynamic_cycles += int(self.batch_scheduler.stream_cycles(stream != 0))
            dense_values += stream.size
            scheduled_values += scheduled.footprint_values()
        return InferenceLayerReport(
            baseline_cycles=baseline_cycles,
            weight_prescheduled_cycles=prescheduled_cycles,
            dynamic_cycles=dynamic_cycles,
            dense_weight_values=dense_values,
            scheduled_weight_values=scheduled_values,
        )


def conv_activation_groups(
    activations: np.ndarray, lanes: int = 16
) -> Dict[str, float]:
    """Channel-group pre-scheduling statistics for a conv layer's activations.

    Activations at the same (x, y) coordinates are always used together
    regardless of the window, so they can be pre-scheduled in groups along
    the channel dimension (Section 3.6.2).  Returns the average row
    compression achieved per (x, y) group and the fraction of on-chip
    accesses saved.
    """
    if activations.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) activations, got {activations.shape}")
    pre_scheduler = PreScheduler(ConnectivityPattern(lanes=lanes))
    n, c, h, w = activations.shape
    ratios = []
    for sample in range(min(n, 2)):
        for y in range(0, h, max(h // 4, 1)):
            for x in range(0, w, max(w // 4, 1)):
                column = activations[sample, :, y, x]
                rows = -(-column.size // lanes)
                stream = np.zeros((rows, lanes), dtype=np.float64)
                stream.reshape(-1)[: column.size] = column
                ratios.append(pre_scheduler.compress(stream).compression_ratio)
    mean_ratio = float(np.mean(ratios)) if ratios else 1.0
    return {
        "mean_group_compression": mean_ratio,
        "access_savings": 1.0 - 1.0 / mean_ratio if mean_ratio > 0 else 0.0,
    }
