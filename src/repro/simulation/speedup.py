"""Potential (work-reduction) speedup analytics — the Fig. 1 measurement.

The potential speedup of an operation is ``all MACs / remaining MACs``
after eliminating those whose targeted operand is zero.  It is an upper
bound on what any zero-skipping hardware could achieve; the cycle
simulator reports how much of it TensorDash's restricted interconnect
actually captures.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def tensor_sparsity(tensor: np.ndarray) -> float:
    """Fraction of zero values in a tensor."""
    tensor = np.asarray(tensor)
    if tensor.size == 0:
        return 0.0
    return 1.0 - np.count_nonzero(tensor) / tensor.size


def potential_speedup_from_sparsity(sparsity: float) -> float:
    """``all MACs / remaining MACs`` when a fraction ``sparsity`` is skipped."""
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    remaining = 1.0 - sparsity
    if remaining <= 0.0:
        return float("inf")
    return 1.0 / remaining


def operation_sparsity(
    operation: str,
    activations: Optional[np.ndarray],
    weights: Optional[np.ndarray],
    output_gradients: Optional[np.ndarray],
) -> float:
    """Sparsity of the targeted operand of one of the three operations.

    * ``AxW``: the activations (weights show negligible sparsity unless the
      training method prunes, in which case the activation side still
      carries the larger share per the paper's policy).
    * ``AxG``: the output gradients.
    * ``WxG``: GO or A, whichever is sparser.
    """
    if operation == "AxW":
        if activations is None:
            return 0.0
        return tensor_sparsity(activations)
    if operation == "AxG":
        if output_gradients is None:
            return 0.0
        return tensor_sparsity(output_gradients)
    if operation == "WxG":
        candidates = []
        if output_gradients is not None:
            candidates.append(tensor_sparsity(output_gradients))
        if activations is not None:
            candidates.append(tensor_sparsity(activations))
        return max(candidates) if candidates else 0.0
    raise ValueError(f"unknown operation {operation!r}; expected AxW, AxG or WxG")


def potential_speedup(
    activations: Optional[np.ndarray],
    weights: Optional[np.ndarray],
    output_gradients: Optional[np.ndarray],
) -> Dict[str, float]:
    """Potential speedup per operation plus the whole-layer figure.

    The three operations perform roughly the same number of MACs (paper
    Section 2), so the total is the harmonic combination of the three with
    equal weights.
    """
    speedups = {}
    for operation in ("AxW", "AxG", "WxG"):
        sparsity = operation_sparsity(operation, activations, weights, output_gradients)
        speedups[operation] = potential_speedup_from_sparsity(sparsity)
    inverse_sum = sum(1.0 / speedups[op] for op in ("AxW", "AxG", "WxG"))
    speedups["Total"] = 3.0 / inverse_sum if inverse_sum else 1.0
    return speedups


def bandwidth_bound_speedup(
    baseline_compute_cycles: float,
    tensordash_compute_cycles: float,
    memory_cycles: float,
) -> float:
    """Speedup after imposing a shared memory-cycle floor on both designs.

    Both the dense baseline and TensorDash move the same bytes (the
    paper's methodology), so a finite memory hierarchy gives each design
    ``max(compute_cycles, memory_cycles)`` total cycles.  As the floor
    rises, the speedup degrades monotonically toward 1.0 — zero-skipping
    cannot help an operation whose pace memory bandwidth sets.

    This is the closed-form counterpart of what the simulator records via
    :meth:`repro.memory.hierarchy.MemoryHierarchy.constrain`; an
    invariant test pins the two to each other.  Use it for back-of-the-
    envelope analysis — the simulation path never calls it.
    """
    if baseline_compute_cycles < 0 or tensordash_compute_cycles < 0 or memory_cycles < 0:
        raise ValueError("cycle counts must be non-negative")
    baseline = max(baseline_compute_cycles, memory_cycles)
    tensordash = max(tensordash_compute_cycles, memory_cycles)
    return baseline / tensordash if tensordash else 1.0


def combine_speedups(per_operation_cycles: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Combine per-operation baseline/TensorDash cycles into overall speedups.

    ``per_operation_cycles`` maps operation name to a dict with
    ``"baseline"`` and ``"tensordash"`` cycle totals.
    """
    result: Dict[str, float] = {}
    total_baseline = 0.0
    total_tensordash = 0.0
    for operation, cycles in per_operation_cycles.items():
        baseline = cycles["baseline"]
        tensordash = cycles["tensordash"]
        result[operation] = baseline / tensordash if tensordash else 1.0
        total_baseline += baseline
        total_tensordash += tensordash
    result["Total"] = total_baseline / total_tensordash if total_tensordash else 1.0
    return result
