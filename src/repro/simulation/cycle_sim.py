"""Layer-level cycle simulation of the three training convolutions.

The :class:`LayerSimulator` turns a traced layer (operand non-zero masks
plus convolution hyper-parameters) into operand streams, runs them through
the accelerator model and returns baseline / TensorDash cycle counts, MAC
counts and memory traffic for each of the paper's three operations.

Execution is delegated to a pluggable :mod:`repro.engine` backend:

* ``"reference"`` — the readable per-PE-row Python loop (the bit-exact
  oracle every other backend is property-tested against);
* ``"vectorized"`` (default) — schedules whole staging-window batches at
  once through the numpy :class:`~repro.core.scheduler.BatchScheduler`;
* ``"parallel"`` — shards traced layers across a multiprocessing pool.

All backends produce bit-identical cycle counts, MAC counts and traffic,
so backend choice is purely a wall-clock decision.  For cross-run reuse,
wrap the simulator in a :class:`repro.engine.SimulationEngine` with a
``cache_dir`` — results are then cached on disk keyed by (config hash,
trace hash, backend) and invalidated structurally whenever any of those
inputs change (the memory-hierarchy parameters are part of the config
hash, so differing hierarchies can never collide in the cache).

Memory awareness: after a backend returns an operation's compute cycles,
the simulator consults ``config.hierarchy``
(:class:`repro.memory.hierarchy.MemoryHierarchy`) with the operation's
byte counts and records the bandwidth-constrained totals —
``max(compute_cycles, ceil(bytes / bytes_per_cycle))`` per level — plus
stall cycles and a compute/memory-bound verdict in each
:class:`OperationResult`.  The default hierarchy is unbounded, which
leaves every cycle count bit-identical to the compute-only model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.core.accelerator import Accelerator, OperationResult
from repro.core.config import AcceleratorConfig
from repro.memory.traffic import MemoryTraffic, TrafficCounter
from repro.simulation.streams import OperandStreams, StreamExtractor
from repro.training.tracing import LayerTrace


class OperationKind(str, Enum):
    """The three per-layer training operations."""

    FORWARD = "AxW"
    INPUT_GRADIENT = "AxG"
    WEIGHT_GRADIENT = "WxG"


@dataclass
class LayerResult:
    """Simulation outcome of one traced layer."""

    layer_name: str
    operations: Dict[str, OperationResult] = field(default_factory=dict)
    traffic: Dict[str, MemoryTraffic] = field(default_factory=dict)

    def speedup(self, operation: Optional[str] = None) -> float:
        """Speedup for one operation, or overall when ``operation`` is None."""
        if operation is not None:
            return self.operations[operation].speedup
        baseline = sum(op.baseline_cycles for op in self.operations.values())
        tensordash = sum(op.tensordash_cycles for op in self.operations.values())
        return baseline / tensordash if tensordash else 1.0

    @property
    def baseline_cycles(self) -> int:
        return sum(op.baseline_cycles for op in self.operations.values())

    @property
    def tensordash_cycles(self) -> int:
        return sum(op.tensordash_cycles for op in self.operations.values())

    @property
    def stall_cycles(self) -> int:
        """TensorDash memory-stall cycles summed across operations."""
        return sum(op.tensordash_stall_cycles for op in self.operations.values())

    @property
    def baseline_stall_cycles(self) -> int:
        """Baseline memory-stall cycles summed across operations."""
        return sum(op.baseline_stall_cycles for op in self.operations.values())

    def stall_fraction(self) -> float:
        """Share of TensorDash's total cycles spent stalled on memory."""
        total = self.tensordash_cycles
        return self.stall_cycles / total if total else 0.0

    def memory_bound_operations(self) -> List[str]:
        """Names of the operations whose pace memory bandwidth set."""
        return [name for name, op in self.operations.items() if op.memory_bound]

    def effective_dram_bytes(self) -> int:
        """DRAM bytes the bandwidth model charged (incl. capacity spill)."""
        return sum(op.dram_bytes for op in self.operations.values())

    def total_traffic(self) -> MemoryTraffic:
        """Summed memory traffic across operations."""
        total = MemoryTraffic()
        for traffic in self.traffic.values():
            total = total + traffic
        return total


class LayerSimulator:
    """Simulates traced layers on the baseline and TensorDash accelerators."""

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        max_groups: Optional[int] = 256,
        max_batch: Optional[int] = 4,
        backend="vectorized",
    ):
        self.config = config or AcceleratorConfig()
        self.accelerator = Accelerator(self.config)
        self.max_groups = max_groups
        self.max_batch = max_batch
        # Resolved lazily so repro.simulation does not import repro.engine
        # at module load time (the engine orchestrates *over* this module).
        if isinstance(backend, str) or backend is None:
            from repro.engine.backend import get_backend

            backend = get_backend(backend)
        self.backend = backend
        self.extractor = StreamExtractor(
            tile_rows=self.config.tile.rows,
            lanes=self.config.pe.lanes,
            max_groups=max_groups,
            max_batch=max_batch,
        )
        value_bytes = self.config.pe.value_bits // 8
        self.traffic_counter = TrafficCounter(
            value_bytes=value_bytes,
            compress_offchip=self.config.memory.compress_offchip,
        )

    # ------------------------------------------------------------------
    def streams_for_trace(self, trace: LayerTrace) -> Dict[str, OperandStreams]:
        """Operand streams per traced operation (empty if nothing traced).

        Public so batching/sharding backends can extract every layer's
        streams up front, fuse them into large scheduling batches or
        group-range shards, and then hand the raw per-operation results
        back to :meth:`finalize_layer`.
        """
        if trace.activation_mask is None:
            return {}
        if trace.layer_type == "conv":
            return self.extractor.conv_streams(
                trace.activation_mask,
                trace.output_gradient_mask,
                kernel=trace.kernel,
                stride=trace.stride,
                padding=trace.padding,
            )
        return self.extractor.fc_streams(
            trace.activation_mask, trace.output_gradient_mask
        )

    def _traffic_for_trace(self, trace: LayerTrace) -> Dict[str, MemoryTraffic]:
        """Approximate memory traffic per operation from the traced masks."""
        traffic: Dict[str, MemoryTraffic] = {}
        activations = trace.activation_mask
        gradients = trace.output_gradient_mask
        weights = trace.weight_mask
        if activations is None or weights is None:
            return traffic
        act = activations.astype(np.float32)
        wts = weights.astype(np.float32)
        out_size = int(act.shape[0]) * int(weights.shape[0])
        traffic["AxW"] = self.traffic_counter.operation_traffic(
            {"A": act, "W": wts}, out_size
        )
        if gradients is not None:
            grd = gradients.astype(np.float32)
            traffic["AxG"] = self.traffic_counter.operation_traffic(
                {"GO": grd, "W": wts}, int(act.size)
            )
            traffic["WxG"] = self.traffic_counter.operation_traffic(
                {"GO": grd, "A": act}, int(weights.size)
            )
        return traffic

    def _constrain(
        self, op_result: OperationResult, traffic: Optional[MemoryTraffic]
    ) -> OperationResult:
        """Impose the configured memory hierarchy on one operation.

        Both designs share the hierarchy (and the byte counts), so the
        baseline and TensorDash compute cycles are constrained by the same
        per-level memory-cycle floor; the recorded verdict and effective
        DRAM bytes describe the TensorDash design.  With the default
        unbounded hierarchy the totals are returned unchanged (zero
        stalls), keeping the legacy cycle counts bit-exact.
        """
        if traffic is None:
            return op_result
        hierarchy = self.config.hierarchy
        frequency = self.config.frequency_mhz
        base = hierarchy.constrain(op_result.baseline_cycles, traffic, frequency)
        dash = hierarchy.constrain(op_result.tensordash_cycles, traffic, frequency)
        return OperationResult(
            name=op_result.name,
            baseline_cycles=base.total_cycles,
            tensordash_cycles=dash.total_cycles,
            macs_total=op_result.macs_total,
            macs_effectual=op_result.macs_effectual,
            baseline_stall_cycles=base.stall_cycles,
            tensordash_stall_cycles=dash.stall_cycles,
            memory_cycles=max(dash.dram_cycles, dash.sram_cycles),
            dram_bytes=dash.dram_bytes,
            bound=dash.bound,
        )

    def finalize_layer(
        self,
        trace: LayerTrace,
        op_results: Dict[str, OperationResult],
        sampling_factors: Dict[str, float],
    ) -> LayerResult:
        """Assemble a :class:`LayerResult` from raw per-operation results.

        When the stream extractor subsamples work groups, the measured
        cycle and MAC counts are scaled back up by the sampling factor so
        that they stay commensurate with the (unsampled) memory-traffic
        estimates used by the energy accounting.  Speedups are ratios and
        are unaffected by the scaling.  The memory hierarchy is consulted
        *after* scaling, so the bandwidth constraint sees full-operation
        compute cycles against full-operation byte counts.
        """
        result = LayerResult(layer_name=trace.layer_name)
        result.traffic = self._traffic_for_trace(trace)
        for operation, op_result in op_results.items():
            factor = sampling_factors.get(operation, 1.0)
            if factor > 1.0:
                op_result = OperationResult(
                    name=op_result.name,
                    baseline_cycles=int(round(op_result.baseline_cycles * factor)),
                    tensordash_cycles=int(round(op_result.tensordash_cycles * factor)),
                    macs_total=int(round(op_result.macs_total * factor)),
                    macs_effectual=int(round(op_result.macs_effectual * factor)),
                )
            result.operations[operation] = self._constrain(
                op_result, result.traffic.get(operation)
            )
        return result

    def simulate_layer(self, trace: LayerTrace) -> LayerResult:
        """Simulate all traced operations of one layer."""
        streams = self.streams_for_trace(trace)
        op_results = {
            operation: self.backend.run_operation(
                self.accelerator, operation, operand_streams.groups
            )
            for operation, operand_streams in streams.items()
        }
        factors = {
            operation: operand_streams.sampling_factor
            for operation, operand_streams in streams.items()
        }
        return self.finalize_layer(trace, op_results, factors)

    def simulate_layers(self, traces: List[LayerTrace]) -> List[LayerResult]:
        """Simulate every traced layer; layers without masks are skipped.

        Delegates to the backend so layer-sharding backends (``parallel``)
        can distribute the work; results always come back in trace order.
        """
        return self.backend.simulate_layers(self, traces)
