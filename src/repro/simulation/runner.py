"""Experiment runner: model-level aggregation used by the benchmark harness.

:class:`ExperimentRunner` ties the pieces together: it takes the operand
traces produced by :class:`repro.training.Trainer`, simulates every traced
layer on the baseline and TensorDash accelerators, and aggregates cycles,
speedups, memory traffic and energy per model and per operation — the
quantities Figs. 13-20 and Table 3 report.

Layer execution goes through a :class:`repro.engine.SimulationEngine`, so
every runner accepts a ``backend`` (``"reference"``, ``"vectorized"``,
``"parallel"``), a ``jobs`` worker count for the parallel backend, and a
``cache_dir`` enabling the content-addressed on-disk result cache.  With a
cache directory set, re-running a sweep re-simulates only layers whose
(config, trace, backend) key has never been seen; everything else is
loaded from disk, and ``runner.engine.stats`` records the hit/miss split
for reports.  Backends are bit-identical, so results never depend on the
execution strategy chosen.

Runners can alternatively be handed an existing
:class:`~repro.engine.SimulationEngine` via the ``engine`` argument, in
which case the backend/jobs/cache arguments are ignored and the runner
shares that engine's pool, cache stack and counters.  This is how
:class:`repro.api.Session` gives every workflow one warm cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import AcceleratorConfig
from repro.energy.accounting import EfficiencyReport, EnergyAccountant
from repro.memory.traffic import MemoryTraffic
from repro.simulation.cycle_sim import LayerResult, LayerSimulator
from repro.simulation.speedup import potential_speedup_from_sparsity
from repro.training.tracing import EpochTrace, TrainingTrace


#: The three operations in the order the paper's figures list them.
OPERATIONS = ("AxW", "AxG", "WxG")


@dataclass
class ModelResult:
    """Aggregated simulation results for one model on one epoch trace."""

    model_name: str
    epoch: int
    layer_results: List[LayerResult] = field(default_factory=list)

    def cycles(self, operation: Optional[str] = None) -> Dict[str, int]:
        """Baseline/TensorDash cycle totals, optionally for one operation."""
        baseline = 0
        tensordash = 0
        for layer in self.layer_results:
            for op_name, op in layer.operations.items():
                if operation is not None and op_name != operation:
                    continue
                baseline += op.baseline_cycles
                tensordash += op.tensordash_cycles
        return {"baseline": baseline, "tensordash": tensordash}

    def speedup(self, operation: Optional[str] = None) -> float:
        """TensorDash speedup over the baseline."""
        totals = self.cycles(operation)
        if totals["tensordash"] == 0:
            return 1.0
        return totals["baseline"] / totals["tensordash"]

    def per_operation_speedups(self) -> Dict[str, float]:
        """Speedups for AxW, AxG, WxG and Total (the Fig. 13 series)."""
        result = {op: self.speedup(op) for op in OPERATIONS}
        result["Total"] = self.speedup()
        return result

    def potential_speedups(self) -> Dict[str, float]:
        """Work-reduction upper bounds per operation (the Fig. 1 series)."""
        result: Dict[str, float] = {}
        total_macs = 0
        total_effectual = 0
        for op in OPERATIONS:
            macs = 0
            effectual = 0
            for layer in self.layer_results:
                if op in layer.operations:
                    macs += layer.operations[op].macs_total
                    effectual += layer.operations[op].macs_effectual
            result[op] = macs / effectual if effectual else 1.0
            total_macs += macs
            total_effectual += effectual
        result["Total"] = total_macs / total_effectual if total_effectual else 1.0
        return result

    def total_traffic(self) -> MemoryTraffic:
        """Memory traffic summed across layers and operations."""
        total = MemoryTraffic()
        for layer in self.layer_results:
            total = total + layer.total_traffic()
        return total

    def effective_traffic(self) -> MemoryTraffic:
        """Traffic with the DRAM bytes the bandwidth model actually charged.

        The per-operation ``dram_bytes`` recorded by the memory hierarchy
        (compressed traffic plus any capacity spill) replace the raw DRAM
        counts, so energy accounting and the bandwidth constraint share
        one set of byte counts.  SRAM/scratchpad counts are unchanged.
        With an unbounded hierarchy this can still differ from
        :meth:`total_traffic` only for layers without recorded operations.
        """
        total = self.total_traffic()
        dram = self.effective_dram_bytes()
        if dram == 0:
            return total
        return MemoryTraffic(
            dram_bytes=dram,
            sram_bytes=total.sram_bytes,
            scratchpad_bytes=total.scratchpad_bytes,
        )

    # -- memory-hierarchy aggregates ------------------------------------
    def stall_cycles(self) -> Dict[str, int]:
        """Baseline/TensorDash memory-stall cycle totals."""
        return {
            "baseline": sum(l.baseline_stall_cycles for l in self.layer_results),
            "tensordash": sum(l.stall_cycles for l in self.layer_results),
        }

    def stall_fraction(self) -> float:
        """Share of TensorDash's total cycles spent stalled on memory."""
        totals = self.cycles()
        if not totals["tensordash"]:
            return 0.0
        return self.stall_cycles()["tensordash"] / totals["tensordash"]

    def effective_dram_bytes(self) -> int:
        """DRAM bytes the bandwidth model charged across all layers."""
        return sum(layer.effective_dram_bytes() for layer in self.layer_results)

    def bound_counts(self) -> Dict[str, int]:
        """How many (layer, operation) pairs each resource bound."""
        counts: Dict[str, int] = {}
        for layer in self.layer_results:
            for op in layer.operations.values():
                counts[op.bound] = counts.get(op.bound, 0) + 1
        return counts

    def memory_bound_fraction(self) -> float:
        """Fraction of simulated operations that were memory-bound."""
        counts = self.bound_counts()
        total = sum(counts.values())
        if not total:
            return 0.0
        return sum(n for bound, n in counts.items() if bound != "compute") / total

    def total_macs(self) -> int:
        """Total MACs across layers and operations (work, not cycles)."""
        return sum(
            op.macs_total
            for layer in self.layer_results
            for op in layer.operations.values()
        )


class ExperimentRunner:
    """Runs trace-driven accelerator simulations for whole models."""

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        max_groups: Optional[int] = 256,
        max_batch: Optional[int] = 4,
        backend="vectorized",
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        engine=None,
    ):
        # Imported here so repro.simulation stays importable on its own;
        # the engine package sits above this module in the layering.
        from repro.engine.engine import SimulationEngine

        self.config = config or AcceleratorConfig()
        self.max_groups = max_groups
        self.max_batch = max_batch
        if engine is None:
            # This runner owns its engine (the classic one-shot wiring).
            engine = SimulationEngine(
                self.config,
                backend=backend,
                jobs=jobs,
                cache_dir=cache_dir,
                max_groups=max_groups,
                max_batch=max_batch,
            )
        self.engine = engine
        # A shared engine keeps one simulator per configuration; asking
        # for ours up front also validates the config once, eagerly.
        self.simulator = engine.simulator_for(
            self.config, max_groups=max_groups, max_batch=max_batch
        )
        self.accountant = EnergyAccountant(self.config)

    @property
    def engine_stats(self):
        """Backend / cache counters for this runner (an ``EngineStats``)."""
        return self.engine.stats

    # ------------------------------------------------------------------
    def run_epoch(self, model_name: str, epoch_trace: EpochTrace) -> ModelResult:
        """Simulate one epoch's traced batch for a model."""
        layer_results = self.engine.simulate_layers(
            epoch_trace.layers, config=self.config,
            max_groups=self.max_groups, max_batch=self.max_batch,
        )
        return ModelResult(
            model_name=model_name,
            epoch=epoch_trace.epoch,
            layer_results=layer_results,
        )

    def run_final_epoch(self, trace: TrainingTrace) -> ModelResult:
        """Simulate the final epoch of a training trace."""
        return self.run_epoch(trace.model_name, trace.final_epoch())

    def run_batch(self, traced) -> List[ModelResult]:
        """Simulate several pre-traced workloads in one engine pass.

        ``traced`` is a sequence of ``(model_name, EpochTrace)`` pairs.
        Every epoch's traced layers are flattened into a single
        ``engine.simulate_layers`` call — so the parallel backend shards
        across workloads and the result cache is consulted exactly once
        per layer — and the results are split back per workload in input
        order.  This is the batch entry point the design-space
        :class:`repro.explore.StudyRunner` drives for points that share
        an accelerator configuration.
        """
        from repro.engine.backend import traced_layers

        flat = []
        spans = []
        for model_name, epoch_trace in traced:
            work = traced_layers(epoch_trace.layers)
            spans.append(
                (model_name, epoch_trace.epoch, len(flat), len(flat) + len(work))
            )
            flat.extend(work)
        results = self.engine.simulate_layers(
            flat, config=self.config,
            max_groups=self.max_groups, max_batch=self.max_batch,
        )
        return [
            ModelResult(
                model_name=name, epoch=epoch, layer_results=results[start:stop]
            )
            for name, epoch, start, stop in spans
        ]

    def run_over_training(
        self, trace: TrainingTrace, num_points: Optional[int] = None
    ) -> List[ModelResult]:
        """Simulate evenly spaced epochs across a training run (Fig. 14)."""
        epochs = trace.epochs
        if num_points is not None and num_points < len(epochs):
            indices = np.linspace(0, len(epochs) - 1, num_points).astype(int)
            epochs = [epochs[i] for i in indices]
        return [self.run_epoch(trace.model_name, epoch) for epoch in epochs]

    # ------------------------------------------------------------------
    @staticmethod
    def potential_speedups_from_trace(epoch_trace: EpochTrace) -> Dict[str, float]:
        """Fig. 1: work-reduction potential computed from raw operand sparsity.

        Unlike :meth:`ModelResult.potential_speedups` this uses the traced
        tensors' zero fractions directly (no lane/tile padding), weighting
        layers by their MAC counts: ``total MACs / remaining MACs`` with the
        remaining MACs being those whose targeted operand is non-zero.
        """
        result: Dict[str, float] = {}
        grand_total = 0.0
        grand_remaining = 0.0
        for operation in OPERATIONS:
            total = 0.0
            remaining = 0.0
            for layer in epoch_trace.layers:
                macs = float(layer.macs or 0)
                if macs <= 0:
                    continue
                sparsity = layer.operand_sparsity(operation)
                total += macs
                remaining += macs * (1.0 - sparsity)
            result[operation] = total / remaining if remaining else 1.0
            grand_total += total
            grand_remaining += remaining
        result["Total"] = grand_total / grand_remaining if grand_remaining else 1.0
        return result

    def energy_report(self, result: ModelResult, power_gated: bool = False) -> EfficiencyReport:
        """Core and overall energy efficiency for one model result.

        Uses :meth:`ModelResult.effective_traffic`, so the DRAM energy is
        charged for exactly the bytes the bandwidth model enforced
        (compression and capacity spill included) — one byte count shared
        by the performance and energy models.
        """
        cycles = result.cycles()
        traffic = result.effective_traffic()
        return self.accountant.efficiency(
            baseline_cycles=cycles["baseline"],
            tensordash_cycles=cycles["tensordash"],
            baseline_traffic=traffic,
            power_gated=power_gated,
        )


def simulate_model_training(
    model,
    dataset,
    model_name: str,
    config: Optional[AcceleratorConfig] = None,
    epochs: int = 2,
    batches_per_epoch: int = 2,
    batch_size: int = 8,
    learning_rate: float = 0.01,
    max_groups: Optional[int] = 128,
    pruning_hook=None,
    backend="vectorized",
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> ModelResult:
    """End-to-end convenience: train briefly, trace, and simulate.

    This is the one-call public API used by the quickstart example: it
    trains ``model`` on ``dataset`` for a few epochs, traces the operands
    of the final epoch and returns the aggregated accelerator results.

    Kept as a stable shim: new code that works with *registered*
    workloads should prefer :class:`repro.api.Session`, whose requests
    are serialisable and whose engine cache stays warm across calls.
    This function remains for ad-hoc models/datasets that are not in the
    registry.
    """
    from repro.nn.optim import MomentumSGD
    from repro.training.trainer import Trainer, TrainingConfig

    trainer = Trainer(
        model=model,
        optimizer=MomentumSGD(model.parameters(), lr=learning_rate),
        config=TrainingConfig(
            epochs=epochs,
            batches_per_epoch=batches_per_epoch,
            batch_size=batch_size,
            learning_rate=learning_rate,
        ),
        pruning_hook=pruning_hook,
    )
    trace = trainer.train(dataset, model_name=model_name)
    runner = ExperimentRunner(
        config=config, max_groups=max_groups,
        backend=backend, jobs=jobs, cache_dir=cache_dir,
    )
    return runner.run_final_epoch(trace)
