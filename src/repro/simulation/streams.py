"""Operand-stream extraction for the three training convolutions.

The accelerator consumes *dense-schedule streams*: for every output value,
the reduction over its receptive field is laid out as rows of ``lanes``
values (16 consecutive channel values per row, per the Section 3.4 tensor
layout).  The hardware scheduler's behaviour depends only on which of those
values are zero, so this module extracts boolean streams from the traced
operand tensors and groups them into tile-row work groups:

* ``O = W * A``   — the targeted (B-side) operand is A; one stream per
  output window, ``tile_rows`` windows per group.
* ``GA = GO * W`` — the targeted operand is GO (dilated by the stride,
  padded for a full convolution); one stream per input-gradient position.
* ``GW = GO * A`` — the targeted operand is whichever of GO or A is
  sparser for the layer (the paper's policy); one stream per output filter
  (GO) or input channel (A), reduced over the batch and spatial positions.

Streams can be subsampled (``max_groups``) to keep full-model simulation
tractable; sampling is deterministic (evenly spaced) so results are
reproducible, and speedups remain ratios over identical work for baseline
and TensorDash.  The cycle simulator scales sampled cycle counts back up
by :attr:`OperandStreams.sampling_factor` before consulting the memory
hierarchy, so the bandwidth constraint always compares full-operation
compute cycles against the (unsampled) full-operation byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class OperandStreams:
    """Row-group streams for one operation of one layer.

    Attributes
    ----------
    groups:
        Boolean array ``(num_groups, tile_rows, stream_rows, lanes)`` of
        effectual (non-zero targeted operand) positions.
    total_groups:
        Number of groups the full operation contains before sampling; the
        simulator scales MAC counts by ``total_groups / groups.shape[0]``.
    targeted_operand:
        Name of the operand whose sparsity is extracted ("A" or "GO").
    """

    groups: np.ndarray
    total_groups: int
    targeted_operand: str

    @property
    def sampled_groups(self) -> int:
        return int(self.groups.shape[0])

    @property
    def sampling_factor(self) -> float:
        """How much the full operation exceeds the sampled portion."""
        if self.sampled_groups == 0:
            return 1.0
        return self.total_groups / self.sampled_groups



def _pad_lanes(vectors: np.ndarray, lanes: int) -> np.ndarray:
    """Pad the last axis of ``(num, length)`` vectors to a multiple of ``lanes``
    and reshape to ``(num, rows, lanes)`` (padding positions are zero and thus
    ineffectual)."""
    num, length = vectors.shape
    rows = -(-length // lanes)
    padded = np.zeros((num, rows * lanes), dtype=bool)
    padded[:, :length] = vectors
    return padded.reshape(num, rows, lanes)


def _group_rows(streams: np.ndarray, tile_rows: int) -> np.ndarray:
    """Group ``(num, rows, lanes)`` streams into ``(groups, tile_rows, rows, lanes)``.

    Streams that do not fill the last group are padded with all-zero
    (maximally sparse) streams, mirroring fragmentation at layer edges.
    """
    num, rows, lanes = streams.shape
    groups = -(-num // tile_rows)
    padded = np.zeros((groups * tile_rows, rows, lanes), dtype=bool)
    padded[:num] = streams
    return padded.reshape(groups, tile_rows, rows, lanes)


def _sample_groups(groups: np.ndarray, max_groups: Optional[int]) -> Tuple[np.ndarray, int]:
    """Deterministically subsample groups (evenly spaced)."""
    total = groups.shape[0]
    if max_groups is None or total <= max_groups:
        return groups, total
    indices = np.linspace(0, total - 1, max_groups).astype(np.int64)
    return groups[indices], total


def _dilate_spatial(mask: np.ndarray, stride: int) -> np.ndarray:
    """Insert ``stride - 1`` zeros between spatial positions (gradient dilation)."""
    if stride == 1:
        return mask
    n, c, h, w = mask.shape
    dilated = np.zeros(
        (n, c, (h - 1) * stride + 1, (w - 1) * stride + 1), dtype=mask.dtype
    )
    dilated[:, :, ::stride, ::stride] = mask
    return dilated


def _receptive_field_vectors(
    mask: np.ndarray, kernel: int, stride: int, padding: int
) -> np.ndarray:
    """All receptive-field vectors of a 4D boolean mask, channel-innermost.

    Returns an array of shape ``(windows, kernel * kernel * channels)``
    where each vector is the flattened receptive field of one output
    position with the channel dimension innermost (matching the 16-wide
    channel blocks of the tensor layout).
    """
    n, c, h, w = mask.shape
    if padding:
        mask = np.pad(
            mask,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
        h, w = h + 2 * padding, w + 2 * padding
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    s = mask.strides
    view = np.lib.stride_tricks.as_strided(
        mask,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    # (n, out_h, out_w, kernel, kernel, c): channel innermost.
    vectors = view.transpose(0, 2, 3, 4, 5, 1).reshape(
        n * out_h * out_w, kernel * kernel * c
    )
    return np.ascontiguousarray(vectors)


def forward_streams(
    activation_mask: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    tile_rows: int = 4,
    lanes: int = 16,
    max_groups: Optional[int] = 512,
) -> OperandStreams:
    """Streams for ``O = W * A``; sparsity is extracted from the activations.

    ``activation_mask`` is the boolean non-zero mask of the layer's input
    activations, shaped ``(N, C, H, W)``.
    """
    vectors = _receptive_field_vectors(activation_mask, kernel, stride, padding)
    streams = _pad_lanes(vectors, lanes)
    groups = _group_rows(streams, tile_rows)
    sampled, total = _sample_groups(groups, max_groups)
    return OperandStreams(groups=sampled, total_groups=total, targeted_operand="A")


def input_gradient_streams(
    output_gradient_mask: np.ndarray,
    kernel: int,
    stride: int,
    tile_rows: int = 4,
    lanes: int = 16,
    max_groups: Optional[int] = 512,
) -> OperandStreams:
    """Streams for ``GA = GO * W``; sparsity is extracted from the gradients.

    The output gradients are dilated by the stride and the convolution is a
    "full" convolution (padding ``kernel - 1``) over the reconstructed,
    rotated filters — only the GO sparsity pattern matters for scheduling.
    """
    dilated = _dilate_spatial(output_gradient_mask, stride)
    vectors = _receptive_field_vectors(dilated, kernel, stride=1, padding=kernel - 1)
    streams = _pad_lanes(vectors, lanes)
    groups = _group_rows(streams, tile_rows)
    sampled, total = _sample_groups(groups, max_groups)
    return OperandStreams(groups=sampled, total_groups=total, targeted_operand="GO")


def weight_gradient_streams(
    output_gradient_mask: np.ndarray,
    activation_mask: np.ndarray,
    tile_rows: int = 4,
    lanes: int = 16,
    max_groups: Optional[int] = 512,
) -> OperandStreams:
    """Streams for ``GW = GO * A``.

    The reduction for one weight gradient runs over the batch and the
    output spatial positions.  Sparsity is extracted from GO or A,
    whichever is sparser for this layer (the paper's policy); one stream
    per filter (GO) or per input channel (A).
    """
    go_sparsity = 1.0 - np.count_nonzero(output_gradient_mask) / max(
        output_gradient_mask.size, 1
    )
    a_sparsity = 1.0 - np.count_nonzero(activation_mask) / max(activation_mask.size, 1)
    if go_sparsity >= a_sparsity:
        targeted = output_gradient_mask
        name = "GO"
    else:
        targeted = activation_mask
        name = "A"
    # (N, C, H, W) -> one stream per channel, reduced over (N, H, W).
    n, c, h, w = targeted.shape
    vectors = targeted.transpose(1, 0, 2, 3).reshape(c, n * h * w)
    streams = _pad_lanes(vectors, lanes)
    groups = _group_rows(streams, tile_rows)
    sampled, total = _sample_groups(groups, max_groups)
    return OperandStreams(groups=sampled, total_groups=total, targeted_operand=name)


def fully_connected_forward_streams(
    activation_mask: np.ndarray,
    tile_rows: int = 4,
    lanes: int = 16,
    max_groups: Optional[int] = 512,
) -> OperandStreams:
    """Streams for a fully-connected forward pass; one stream per sample."""
    if activation_mask.ndim != 2:
        activation_mask = activation_mask.reshape(activation_mask.shape[0], -1)
    streams = _pad_lanes(activation_mask, lanes)
    groups = _group_rows(streams, tile_rows)
    sampled, total = _sample_groups(groups, max_groups)
    return OperandStreams(groups=sampled, total_groups=total, targeted_operand="A")


def fully_connected_gradient_streams(
    output_gradient_mask: np.ndarray,
    tile_rows: int = 4,
    lanes: int = 16,
    max_groups: Optional[int] = 512,
) -> OperandStreams:
    """Streams for the FC input-gradient computation; one stream per sample."""
    if output_gradient_mask.ndim != 2:
        output_gradient_mask = output_gradient_mask.reshape(
            output_gradient_mask.shape[0], -1
        )
    streams = _pad_lanes(output_gradient_mask, lanes)
    groups = _group_rows(streams, tile_rows)
    sampled, total = _sample_groups(groups, max_groups)
    return OperandStreams(groups=sampled, total_groups=total, targeted_operand="GO")


def fully_connected_weight_gradient_streams(
    output_gradient_mask: np.ndarray,
    activation_mask: np.ndarray,
    tile_rows: int = 4,
    lanes: int = 16,
    max_groups: Optional[int] = 512,
) -> OperandStreams:
    """Streams for the FC weight-gradient computation (reduction over the batch)."""
    if output_gradient_mask.ndim != 2:
        output_gradient_mask = output_gradient_mask.reshape(
            output_gradient_mask.shape[0], -1
        )
    if activation_mask.ndim != 2:
        activation_mask = activation_mask.reshape(activation_mask.shape[0], -1)
    go_sparsity = 1.0 - np.count_nonzero(output_gradient_mask) / max(
        output_gradient_mask.size, 1
    )
    a_sparsity = 1.0 - np.count_nonzero(activation_mask) / max(activation_mask.size, 1)
    if go_sparsity >= a_sparsity:
        targeted = output_gradient_mask.T  # one stream per output feature
        name = "GO"
    else:
        targeted = activation_mask.T       # one stream per input feature
        name = "A"
    streams = _pad_lanes(targeted, lanes)
    groups = _group_rows(streams, tile_rows)
    sampled, total = _sample_groups(groups, max_groups)
    return OperandStreams(groups=sampled, total_groups=total, targeted_operand=name)


class StreamExtractor:
    """Convenience wrapper binding the tile geometry and sampling policy."""

    def __init__(
        self,
        tile_rows: int = 4,
        lanes: int = 16,
        max_groups: Optional[int] = 512,
        max_batch: Optional[int] = 4,
    ):
        self.tile_rows = tile_rows
        self.lanes = lanes
        self.max_groups = max_groups
        self.max_batch = max_batch

    def _clip_batch(self, mask: np.ndarray) -> np.ndarray:
        # Clip only convolutional (4D) operands; see TraceCollector._clip.
        if self.max_batch is None or mask.ndim != 4:
            return mask
        if mask.shape[0] <= self.max_batch:
            return mask
        return mask[: self.max_batch]

    def conv_streams(
        self,
        activation_mask: np.ndarray,
        output_gradient_mask: Optional[np.ndarray],
        kernel: int,
        stride: int,
        padding: int,
    ) -> dict:
        """All three operations' streams for a convolutional layer."""
        activation_mask = self._clip_batch(activation_mask)
        result = {
            "AxW": forward_streams(
                activation_mask, kernel, stride, padding,
                self.tile_rows, self.lanes, self.max_groups,
            )
        }
        if output_gradient_mask is not None:
            output_gradient_mask = self._clip_batch(output_gradient_mask)
            result["AxG"] = input_gradient_streams(
                output_gradient_mask, kernel, stride,
                self.tile_rows, self.lanes, self.max_groups,
            )
            result["WxG"] = weight_gradient_streams(
                output_gradient_mask, activation_mask,
                self.tile_rows, self.lanes, self.max_groups,
            )
        return result

    def fc_streams(
        self,
        activation_mask: np.ndarray,
        output_gradient_mask: Optional[np.ndarray],
    ) -> dict:
        """All three operations' streams for a fully-connected layer."""
        activation_mask = self._clip_batch(activation_mask)
        result = {
            "AxW": fully_connected_forward_streams(
                activation_mask, self.tile_rows, self.lanes, self.max_groups
            )
        }
        if output_gradient_mask is not None:
            output_gradient_mask = self._clip_batch(output_gradient_mask)
            result["AxG"] = fully_connected_gradient_streams(
                output_gradient_mask, self.tile_rows, self.lanes, self.max_groups
            )
            result["WxG"] = fully_connected_weight_gradient_streams(
                output_gradient_mask, activation_mask,
                self.tile_rows, self.lanes, self.max_groups,
            )
        return result
