"""Simulation layer: operand-stream extraction, cycle simulation and runners."""

from repro.simulation.streams import (
    StreamExtractor,
    forward_streams,
    input_gradient_streams,
    weight_gradient_streams,
)
from repro.simulation.speedup import potential_speedup, operation_sparsity
from repro.simulation.cycle_sim import LayerSimulator, LayerResult, OperationKind
from repro.simulation.inference import FullyConnectedInference, conv_activation_groups
from repro.simulation.runner import ExperimentRunner, ModelResult, simulate_model_training

__all__ = [
    "StreamExtractor",
    "forward_streams",
    "input_gradient_streams",
    "weight_gradient_streams",
    "potential_speedup",
    "operation_sparsity",
    "LayerSimulator",
    "LayerResult",
    "OperationKind",
    "FullyConnectedInference",
    "conv_activation_groups",
    "ExperimentRunner",
    "ModelResult",
    "simulate_model_training",
]
