"""Memory-hierarchy models: layout, transposers, SRAM, DRAM, compression,
traffic counting, and the bandwidth/capacity performance model
(:mod:`repro.memory.hierarchy`) the cycle simulator enforces."""

from repro.memory.layout import GroupedTensorLayout, TensorGroup
from repro.memory.transposer import Transposer
from repro.memory.sram import SRAMBank, BankedSRAM, Scratchpad
from repro.memory.dram import DRAMModel
from repro.memory.compression import (
    CompressingDMA,
    run_length_encode,
    run_length_decode,
)
from repro.memory.traffic import TrafficCounter, MemoryTraffic
from repro.memory.hierarchy import MemoryHierarchy, MemoryVerdict, bytes_per_cycle

__all__ = [
    "GroupedTensorLayout",
    "TensorGroup",
    "Transposer",
    "SRAMBank",
    "BankedSRAM",
    "Scratchpad",
    "DRAMModel",
    "CompressingDMA",
    "run_length_encode",
    "run_length_decode",
    "TrafficCounter",
    "MemoryTraffic",
    "MemoryHierarchy",
    "MemoryVerdict",
    "bytes_per_cycle",
]
