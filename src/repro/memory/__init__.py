"""Memory-hierarchy models: tensor layout, transposers, SRAM, DRAM, compression."""

from repro.memory.layout import GroupedTensorLayout, TensorGroup
from repro.memory.transposer import Transposer
from repro.memory.sram import SRAMBank, BankedSRAM, Scratchpad
from repro.memory.dram import DRAMModel
from repro.memory.compression import (
    CompressingDMA,
    run_length_encode,
    run_length_decode,
)
from repro.memory.traffic import TrafficCounter, MemoryTraffic

__all__ = [
    "GroupedTensorLayout",
    "TensorGroup",
    "Transposer",
    "SRAMBank",
    "BankedSRAM",
    "Scratchpad",
    "DRAMModel",
    "CompressingDMA",
    "run_length_encode",
    "run_length_decode",
    "TrafficCounter",
    "MemoryTraffic",
]
