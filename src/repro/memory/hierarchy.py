"""Bandwidth/capacity model of the memory hierarchy as a *performance* constraint.

Historically this repository used :mod:`repro.memory` only for post-hoc
energy accounting: cycle counts came purely from the compute tile, so every
simulated design point was implicitly compute-bound and bandwidth knobs
could not change speedup.  This module makes memory a first-class
performance constraint.  A :class:`MemoryHierarchy` describes the
sustainable bandwidth of the on-chip AM/BM/CM SRAM and the off-chip LPDDR4
DRAM channels (plus an optional on-chip capacity); the cycle simulator
consults it per operation and charges

``total_cycles = max(compute_cycles, ceil(bytes_moved / effective_bandwidth))``

per memory level, recording the per-level stall cycles and a
compute-bound / memory-bound verdict in
:class:`~repro.core.accelerator.OperationResult`.

The default hierarchy is :meth:`MemoryHierarchy.unbounded` — infinite
bandwidth, unlimited capacity — which reproduces the pre-hierarchy cycle
counts bit-exactly, so existing configurations and cached results keep
their meaning.  The paper's Table 2 machine (4-channel LPDDR4-3200 behind
16 tiles of banked SRAM) is available via :meth:`MemoryHierarchy.table2`,
and :meth:`MemoryHierarchy.edge` models a bandwidth-starved single-channel
edge device, opening the memory-bound corner of the design space.

Approximations (documented, deliberate):

* Bytes are charged at operation granularity.  For the uniform-rate operand
  streams the stream extractor produces this is equivalent to charging each
  staging window its share of the transfer, because ``ceil`` over the sum
  differs from the sum of per-window ceilings by at most one cycle per
  window.
* The on-chip working set of an operation is approximated by its SRAM
  traffic (each value is counted once per use); the overflow beyond
  ``sram_kb`` must be re-fetched and is charged as extra DRAM traffic.
* Both designs (dense baseline and TensorDash) share the hierarchy *and*
  the byte counts, as in the paper's shared-DMA methodology: zero
  compression shrinks both designs' DRAM traffic equally, so under a
  finite hierarchy they differ only in their compute cycles.  (Scheduled-
  form on-chip storage — ``TrafficCounter(scheduled_onchip=True)`` —
  would give TensorDash a per-design byte advantage but is not enabled by
  the simulator.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.memory.traffic import MemoryTraffic

#: Width of one SRAM bank access in bytes (matches ``SRAMBank``).
SRAM_WIDTH_BYTES = 64

#: The three shared on-chip memories (AM, BM, CM) a tile reads/writes.
ONCHIP_MEMORIES = 3


def bytes_per_cycle(bandwidth_gbps: float, frequency_mhz: float) -> float:
    """Sustainable bytes per accelerator cycle at a given bandwidth.

    ``bandwidth_gbps`` is in GB/s (1e9 bytes per second); at ``f`` MHz the
    accelerator retires ``f * 1e6`` cycles per second.
    """
    if bandwidth_gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_gbps}")
    if frequency_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_mhz}")
    return bandwidth_gbps * 1e9 / (frequency_mhz * 1e6)


@dataclass(frozen=True)
class MemoryVerdict:
    """Outcome of constraining one operation's compute cycles by memory.

    ``bound`` names the binding resource: ``"compute"`` when the operation
    finishes at its compute rate, ``"dram"`` / ``"sram"`` when that level's
    bandwidth sets the pace.
    """

    compute_cycles: int
    total_cycles: int
    stall_cycles: int
    dram_cycles: int
    sram_cycles: int
    #: Effective DRAM bytes charged: recorded traffic plus capacity spill.
    dram_bytes: int
    bound: str

    @property
    def memory_bound(self) -> bool:
        return self.bound != "compute"

    @property
    def stall_fraction(self) -> float:
        """Share of the total cycles spent stalled on memory."""
        if self.total_cycles == 0:
            return 0.0
        return self.stall_cycles / self.total_cycles


@dataclass(frozen=True)
class MemoryHierarchy:
    """Bandwidth and capacity limits the cycle simulator enforces.

    Every field is optional; ``None`` means *unlimited* for that resource.
    The all-``None`` default is the unbounded hierarchy — the behaviour of
    the repository before memory awareness — so existing configurations
    are unaffected unless a limit is set explicitly.

    Parameters
    ----------
    dram_bandwidth_gbps:
        Sustainable off-chip bandwidth across all LPDDR4 channels, GB/s.
    sram_bandwidth_gbps:
        Aggregate on-chip AM/BM/CM bandwidth, GB/s.  Rarely binding for
        realistic geometries (banked SRAM is fast); exposed so starved
        on-chip designs can be studied.
    sram_kb:
        Total on-chip capacity in KB.  When an operation's streaming
        working set exceeds it, the overflow is re-fetched from DRAM (and
        charged to the DRAM byte count the bandwidth model and energy
        accounting share).
    """

    dram_bandwidth_gbps: Optional[float] = None
    sram_bandwidth_gbps: Optional[float] = None
    sram_kb: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("dram_bandwidth_gbps", "sram_bandwidth_gbps"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.sram_kb is not None and self.sram_kb < 1:
            raise ValueError(f"sram_kb must be >= 1, got {self.sram_kb}")

    # ------------------------------------------------------------------
    @property
    def is_unbounded(self) -> bool:
        """True when no limit is set (the bit-exact legacy behaviour)."""
        return (
            self.dram_bandwidth_gbps is None
            and self.sram_bandwidth_gbps is None
            and self.sram_kb is None
        )

    @property
    def has_bandwidth_limit(self) -> bool:
        """True when any *bandwidth* (not just capacity) limit is set.

        Gates bandwidth-rate effects such as the staging-refill clamp; a
        capacity-only hierarchy (``sram_kb`` alone) affects byte counts
        but never compute cycle counts.
        """
        return (
            self.dram_bandwidth_gbps is not None
            or self.sram_bandwidth_gbps is not None
        )

    @classmethod
    def unbounded(cls) -> "MemoryHierarchy":
        """Infinite bandwidth, unlimited capacity (the default)."""
        return cls()

    @classmethod
    def table2(cls, config=None) -> "MemoryHierarchy":
        """The paper's Table 2 machine derived from an accelerator config.

        ``config`` is any object with ``memory``, ``num_tiles`` and
        ``frequency_mhz`` attributes (duck-typed to avoid a circular
        import with :mod:`repro.core.config`); the defaults give 4-channel
        LPDDR4-3200 (51.2 GB/s), the aggregate banked AM/BM/CM bandwidth
        and the full on-chip capacity across tiles.
        """
        if config is None:
            from repro.core.config import AcceleratorConfig

            config = AcceleratorConfig()
        memory = config.memory
        dram = memory.peak_dram_bandwidth_gbps
        sram_bytes_per_cycle = (
            ONCHIP_MEMORIES * memory.banks_per_tile * SRAM_WIDTH_BYTES * config.num_tiles
        )
        sram = sram_bytes_per_cycle * config.frequency_mhz * 1e6 / 1e9
        return cls(
            dram_bandwidth_gbps=dram,
            sram_bandwidth_gbps=sram,
            sram_kb=config.memory.on_chip_kb_per_tile * config.num_tiles,
        )

    @classmethod
    def edge(cls) -> "MemoryHierarchy":
        """A bandwidth-starved edge device: one LPDDR4 channel, 256 KB SRAM."""
        return cls(dram_bandwidth_gbps=12.8, sram_kb=256)

    # ------------------------------------------------------------------
    def spill_bytes(self, traffic: MemoryTraffic) -> int:
        """DRAM re-fetch bytes caused by the on-chip capacity limit.

        The streaming working set is approximated by the operation's SRAM
        traffic; whatever does not fit in ``sram_kb`` must round-trip to
        DRAM once more.
        """
        if self.sram_kb is None:
            return 0
        capacity = self.sram_kb * 1024
        return max(0, traffic.sram_bytes - capacity)

    def effective_dram_bytes(self, traffic: MemoryTraffic) -> int:
        """DRAM bytes the bandwidth model (and energy accounting) charge."""
        return traffic.dram_bytes + self.spill_bytes(traffic)

    def constrain(
        self,
        compute_cycles: int,
        traffic: MemoryTraffic,
        frequency_mhz: float,
    ) -> MemoryVerdict:
        """Impose the hierarchy on one operation's compute-cycle count.

        Returns the :class:`MemoryVerdict` with
        ``total_cycles = max(compute_cycles, per-level memory cycles)``,
        the stall cycles (total minus compute) and the binding resource.
        With an unbounded hierarchy the verdict is exactly the compute
        cycles with zero stalls — the legacy behaviour.
        """
        dram_bytes = self.effective_dram_bytes(traffic)
        dram_cycles = 0
        if self.dram_bandwidth_gbps is not None:
            dram_cycles = math.ceil(
                dram_bytes / bytes_per_cycle(self.dram_bandwidth_gbps, frequency_mhz)
            )
        sram_cycles = 0
        if self.sram_bandwidth_gbps is not None:
            sram_cycles = math.ceil(
                traffic.sram_bytes
                / bytes_per_cycle(self.sram_bandwidth_gbps, frequency_mhz)
            )
        memory_cycles = max(dram_cycles, sram_cycles)
        total = max(int(compute_cycles), memory_cycles)
        stall = total - int(compute_cycles)
        if memory_cycles <= compute_cycles:
            bound = "compute"
        elif dram_cycles >= sram_cycles:
            bound = "dram"
        else:
            bound = "sram"
        return MemoryVerdict(
            compute_cycles=int(compute_cycles),
            total_cycles=total,
            stall_cycles=stall,
            dram_cycles=dram_cycles,
            sram_cycles=sram_cycles,
            dram_bytes=dram_bytes,
            bound=bound,
        )
