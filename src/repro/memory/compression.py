"""Zero-value compression for off-chip transfers.

Both the baseline and TensorDash compress zero values off-chip using the
CompressingDMA approach of Rhu et al. (zero run-length encoding over the
transfer stream).  TensorDash can additionally keep tensors in *scheduled*
form on-chip (see :mod:`repro.core.backside`); this module provides the
generic value-level compression shared by both designs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def run_length_encode(values: np.ndarray, max_run: int = 255) -> List[Tuple[int, float]]:
    """Encode a flat value stream as ``(zero_run_length, value)`` pairs.

    Each pair stores the number of zeros preceding a non-zero value and the
    value itself; a trailing all-zero run is stored as ``(run, 0.0)``
    records chunked at ``max_run``.
    """
    values = np.asarray(values).reshape(-1)
    encoded: List[Tuple[int, float]] = []
    run = 0
    for value in values:
        if value == 0:
            run += 1
            if run == max_run:
                encoded.append((run, 0.0))
                run = 0
        else:
            encoded.append((run, float(value)))
            run = 0
    if run:
        encoded.append((run, 0.0))
    return encoded


def run_length_decode(encoded: List[Tuple[int, float]], total: int) -> np.ndarray:
    """Invert :func:`run_length_encode`; ``total`` is the original length."""
    out = np.zeros(total, dtype=np.float64)
    position = 0
    for run, value in encoded:
        position += run
        if value != 0.0:
            if position >= total:
                raise ValueError("encoded stream longer than the declared total")
            out[position] = value
            position += 1
    if position > total:
        raise ValueError("encoded stream longer than the declared total")
    return out


@dataclass
class CompressionResult:
    """Size accounting for one compressed transfer."""

    dense_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """Dense size over compressed size (>= 1 when zeros exist)."""
        if self.compressed_bytes == 0:
            return 1.0 if self.dense_bytes == 0 else float(self.dense_bytes)
        return self.dense_bytes / self.compressed_bytes


class CompressingDMA:
    """Zero-compressing DMA engine model (Rhu et al., HPCA 2018).

    ``value_bytes`` is the datatype width; ``run_bytes`` the metadata per
    stored record.  The compressed size is what the DRAM model is charged
    for.
    """

    def __init__(self, value_bytes: int = 4, run_bytes: int = 1):
        if value_bytes < 1:
            raise ValueError("value_bytes must be positive")
        self.value_bytes = value_bytes
        self.run_bytes = run_bytes

    def compressed_size(self, tensor: np.ndarray) -> CompressionResult:
        """Size of the tensor after zero compression, without materialising it."""
        tensor = np.asarray(tensor)
        total = int(tensor.size)
        nonzero = int(np.count_nonzero(tensor))
        dense_bytes = total * self.value_bytes
        record_bytes = self.value_bytes + self.run_bytes
        # One record per non-zero value plus terminator records for long
        # trailing zero runs (second-order; approximated as one record).
        compressed_bytes = nonzero * record_bytes + self.run_bytes
        # Compression never inflates beyond dense + metadata overhead cap.
        compressed_bytes = min(compressed_bytes, dense_bytes + self.run_bytes)
        return CompressionResult(dense_bytes=dense_bytes, compressed_bytes=compressed_bytes)

    def compress(self, tensor: np.ndarray) -> Tuple[List[Tuple[int, float]], CompressionResult]:
        """Actually encode the tensor (used by round-trip tests)."""
        encoded = run_length_encode(tensor)
        result = CompressionResult(
            dense_bytes=int(tensor.size) * self.value_bytes,
            compressed_bytes=len(encoded) * (self.value_bytes + self.run_bytes),
        )
        return encoded, result

    def decompress(self, encoded: List[Tuple[int, float]], shape: Tuple[int, ...]) -> np.ndarray:
        """Decode back to a dense tensor of ``shape``."""
        total = int(np.prod(shape))
        return run_length_decode(encoded, total).reshape(shape)
