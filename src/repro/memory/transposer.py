"""On-chip transposers (Section 3.4).

A transposer sits between the on-chip memory banks and the tile
scratchpads.  It reads 16 blocks of 16 values each (one 16x16 group) into
an internal buffer using 16-value-wide accesses, and can then supply the
group transposed: a row of 16 values formed by taking the value at the same
offset from each of the 16 blocks.  The weights and gradients need this
during the backward pass, where the "reconstructed" filters regroup values
across what were separate filters/channels in the forward pass.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Transposer:
    """A single transposer with a ``group_size`` x ``group_size`` buffer."""

    def __init__(self, group_size: int = 16):
        if group_size < 1:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.group_size = group_size
        self._buffer: Optional[np.ndarray] = None
        self.loads = 0
        self.reads = 0

    @property
    def buffer_values(self) -> int:
        """Capacity of the internal buffer in values."""
        return self.group_size * self.group_size

    def load_group(self, group: np.ndarray) -> None:
        """Copy one ``(group_size, group_size)`` group into the buffer.

        Costs ``group_size`` 16-value-wide reads from the memory banks,
        which the traffic counters account for.
        """
        group = np.asarray(group)
        if group.shape != (self.group_size, self.group_size):
            raise ValueError(
                f"expected a ({self.group_size}, {self.group_size}) group, got {group.shape}"
            )
        self._buffer = group.copy()
        self.loads += 1

    def read_row(self, index: int) -> np.ndarray:
        """Supply the values at offset ``index`` of every loaded block (transposed read)."""
        if self._buffer is None:
            raise RuntimeError("read_row() called before load_group()")
        if not 0 <= index < self.group_size:
            raise IndexError(f"row index {index} outside group of size {self.group_size}")
        self.reads += 1
        return self._buffer[:, index].copy()

    def read_block(self, index: int) -> np.ndarray:
        """Supply one original (untransposed) block; a pass-through read."""
        if self._buffer is None:
            raise RuntimeError("read_block() called before load_group()")
        if not 0 <= index < self.group_size:
            raise IndexError(f"block index {index} outside group of size {self.group_size}")
        self.reads += 1
        return self._buffer[index].copy()

    def transpose_group(self, group: np.ndarray) -> np.ndarray:
        """Load a group and return its full transpose (convenience)."""
        self.load_group(group)
        return np.stack([self.read_row(i) for i in range(self.group_size)])


class TransposerArray:
    """A pool of transposers sized to sustain the tiles' fetch bandwidth.

    The paper provisions 15 transposers; the pool dispatches group loads
    round-robin and reports aggregate access counts for the energy model.
    """

    def __init__(self, count: int = 15, group_size: int = 16):
        if count < 1:
            raise ValueError(f"count must be positive, got {count}")
        self.transposers = [Transposer(group_size) for _ in range(count)]
        self._next = 0

    def transpose_group(self, group: np.ndarray) -> np.ndarray:
        """Transpose one group using the next transposer round-robin."""
        transposer = self.transposers[self._next]
        self._next = (self._next + 1) % len(self.transposers)
        return transposer.transpose_group(group)

    @property
    def total_loads(self) -> int:
        """Total group loads across the pool."""
        return sum(t.loads for t in self.transposers)

    @property
    def total_reads(self) -> int:
        """Total row/block reads across the pool."""
        return sum(t.reads for t in self.transposers)
