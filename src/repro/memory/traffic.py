"""Memory-traffic accounting for one simulated operation or layer.

The energy figures of the paper (Figs. 15 and 16) break energy into core
logic, on-chip SRAM and off-chip DRAM.  This module counts the bytes each
design moves at each level; :mod:`repro.energy.accounting` converts the
counts to energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.memory.compression import CompressingDMA


@dataclass
class MemoryTraffic:
    """Byte counts for one operation, per memory level."""

    dram_bytes: int = 0
    sram_bytes: int = 0
    scratchpad_bytes: int = 0

    def __add__(self, other: "MemoryTraffic") -> "MemoryTraffic":
        return MemoryTraffic(
            dram_bytes=self.dram_bytes + other.dram_bytes,
            sram_bytes=self.sram_bytes + other.sram_bytes,
            scratchpad_bytes=self.scratchpad_bytes + other.scratchpad_bytes,
        )

    def scaled(self, factor: float) -> "MemoryTraffic":
        """Scale all counts (used when extrapolating from sampled streams).

        Counts are rounded to the nearest byte rather than truncated, so
        extrapolated traffic does not systematically undercount.
        """
        return MemoryTraffic(
            dram_bytes=int(round(self.dram_bytes * factor)),
            sram_bytes=int(round(self.sram_bytes * factor)),
            scratchpad_bytes=int(round(self.scratchpad_bytes * factor)),
        )


class TrafficCounter:
    """Estimates the memory traffic of one operation from its operand tensors.

    Parameters
    ----------
    value_bytes:
        Datatype width in bytes (4 for FP32, 2 for bfloat16).
    compress_offchip:
        Apply zero compression to off-chip transfers (both designs do, per
        the paper's methodology).
    scheduled_onchip:
        Store tensors in scheduled (compressed) form on-chip, reducing SRAM
        traffic proportionally to sparsity (the TensorDash pre-scheduling
        option of Section 3.6).
    """

    def __init__(
        self,
        value_bytes: int = 4,
        compress_offchip: bool = True,
        scheduled_onchip: bool = False,
        reuse_factor: float = 4.0,
    ):
        self.value_bytes = value_bytes
        self.compress_offchip = compress_offchip
        self.scheduled_onchip = scheduled_onchip
        self.dma = CompressingDMA(value_bytes=value_bytes)
        # How many times each fetched on-chip value is reused by the PEs on
        # average (spatial/temporal reuse inside a tile); scales scratchpad
        # traffic relative to SRAM traffic.
        self.reuse_factor = reuse_factor

    def _offchip_bytes(self, tensor: np.ndarray) -> int:
        if self.compress_offchip:
            return self.dma.compressed_size(tensor).compressed_bytes
        return int(tensor.size) * self.value_bytes

    def _onchip_bytes(self, tensor: np.ndarray) -> int:
        dense = int(tensor.size) * self.value_bytes
        if not self.scheduled_onchip:
            return dense
        nonzero = int(np.count_nonzero(tensor))
        # Scheduled form stores non-zero values plus a small per-value index
        # (the idx / MS field).  For dense tensors that would inflate the
        # footprint, so the hardware falls back to the dense layout
        # (Section 3.6 reserves worst-case space anyway); model that by
        # capping at the dense size.
        scheduled = nonzero * self.value_bytes + nonzero
        return min(scheduled, dense)

    def operation_traffic(
        self, operands: Dict[str, np.ndarray], outputs_size: int
    ) -> MemoryTraffic:
        """Traffic for one convolution given its input operands and output size.

        ``operands`` maps operand names to tensors (each read once from
        DRAM and once from SRAM per use); ``outputs_size`` is the number of
        produced values (written back through the hierarchy).
        """
        dram = 0
        sram = 0
        for tensor in operands.values():
            dram += self._offchip_bytes(tensor)
            sram += self._onchip_bytes(tensor)
        output_bytes = outputs_size * self.value_bytes
        dram += output_bytes
        sram += output_bytes
        scratchpad = int(sram * self.reuse_factor)
        return MemoryTraffic(dram_bytes=dram, sram_bytes=sram, scratchpad_bytes=scratchpad)
