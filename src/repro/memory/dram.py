"""Off-chip DRAM model: 4-channel LPDDR4-3200, 16 GB (Table 2).

The model provides bandwidth-limited transfer latency and per-byte energy
in the range the Micron DDR4 power calculator reports, which is what the
paper uses.  Only relative behaviour between the baseline and TensorDash
matters for the reproduced figures — both designs share this model; the
difference comes from the number of bytes moved (zero compression and
scheduled-form storage reduce TensorDash's traffic).
"""

from __future__ import annotations

from dataclasses import dataclass


#: Energy to move one byte across the LPDDR4 interface including DRAM core
#: activate/precharge amortisation.  Typical published figures are in the
#: 4-8 pJ/bit range for LPDDR4; 6 pJ/bit = 48 pJ/byte is used here.
DEFAULT_PJ_PER_BYTE = 48.0


@dataclass
class DRAMTransfer:
    """Accounting record of one DRAM transfer."""

    num_bytes: int
    write: bool
    latency_ns: float
    energy_pj: float


class DRAMModel:
    """Bandwidth/energy model of the off-chip memory."""

    def __init__(
        self,
        channels: int = 4,
        mts: int = 3200,
        bus_bits: int = 32,
        pj_per_byte: float = DEFAULT_PJ_PER_BYTE,
        capacity_gb: int = 16,
    ):
        if channels < 1:
            raise ValueError(f"channels must be positive, got {channels}")
        self.channels = channels
        self.mts = mts
        self.bus_bits = bus_bits
        self.pj_per_byte = pj_per_byte
        self.capacity_bytes = capacity_gb * (1 << 30)
        self.bytes_read = 0
        self.bytes_written = 0
        self.energy_pj = 0.0

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak bandwidth in GB/s across all channels."""
        bytes_per_transfer = self.bus_bits / 8
        return self.channels * self.mts * 1e6 * bytes_per_transfer / 1e9

    def transfer(self, num_bytes: int, write: bool = False) -> DRAMTransfer:
        """Account for moving ``num_bytes`` to or from DRAM."""
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        latency_ns = 0.0
        if num_bytes:
            latency_ns = num_bytes / (self.peak_bandwidth_gbps * 1e9) * 1e9
        energy = num_bytes * self.pj_per_byte
        if write:
            self.bytes_written += num_bytes
        else:
            self.bytes_read += num_bytes
        self.energy_pj += energy
        return DRAMTransfer(
            num_bytes=num_bytes, write=write, latency_ns=latency_ns, energy_pj=energy
        )

    @property
    def total_bytes(self) -> int:
        """Total bytes moved in either direction."""
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        """Clear all accumulated counters."""
        self.bytes_read = 0
        self.bytes_written = 0
        self.energy_pj = 0.0
