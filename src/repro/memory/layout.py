"""The 16x16 grouped tensor layout (Section 3.4).

During training every tensor is consumed in two different orders across the
three convolutions, so no single linear layout serves all uses.  The paper
stores tensors as groups of 16x16 values: each group is 16 consecutive
blocks along the row dimension, each block holding 16 values contiguous
along the channel dimension, with group origins aligned to multiples of 16
in both dimensions.  Groups are laid out in channel, column, row order.
Fetching a group lets a PE read any 16-value channel block in one access,
and an on-chip transposer can serve the "transposed" view (one value from
each of the 16 blocks) needed by the weights and the gradients in the
backward pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class TensorGroup:
    """Identifies one 16x16 group inside a tensor.

    ``channel_start`` and ``row_start`` are the aligned starting coordinates
    of the group along the channel and row dimensions.
    """

    channel_start: int
    row_start: int
    column: int


class GroupedTensorLayout:
    """Maps a ``(C, H, W)`` tensor to 16x16 groups and back.

    The layout is lossless: ``ungroup(group_all(x)) == x`` for any tensor,
    including ones whose dimensions are not multiples of the group size
    (ragged edges are zero padded inside the groups, and the padding is
    dropped again on the way back).

    Parameters
    ----------
    group_channels, group_rows:
        Group extent along the channel and row dimensions; both default to
        16 per the paper.
    """

    def __init__(self, group_channels: int = 16, group_rows: int = 16):
        if group_channels < 1 or group_rows < 1:
            raise ValueError("group dimensions must be positive")
        self.group_channels = group_channels
        self.group_rows = group_rows

    # -- enumeration ---------------------------------------------------------
    def groups_for_shape(self, shape: Tuple[int, int, int]) -> List[TensorGroup]:
        """All groups needed to cover a ``(C, H, W)`` tensor, in layout order."""
        channels, height, width = shape
        groups: List[TensorGroup] = []
        # Channel, column, row allocation order (paper Section 3.4).
        for row_start in range(0, height, self.group_rows):
            for column in range(width):
                for channel_start in range(0, channels, self.group_channels):
                    groups.append(TensorGroup(channel_start, row_start, column))
        return groups

    def group_count(self, shape: Tuple[int, int, int]) -> int:
        """Number of groups covering a tensor of the given shape."""
        channels, height, width = shape
        channel_groups = -(-channels // self.group_channels)
        row_groups = -(-height // self.group_rows)
        return channel_groups * row_groups * width

    # -- packing ---------------------------------------------------------------
    def extract_group(self, tensor: np.ndarray, group: TensorGroup) -> np.ndarray:
        """Read one group as a ``(group_rows, group_channels)`` block.

        Block row ``r`` holds the ``group_channels`` values contiguous along
        the channel dimension at spatial position ``(row_start + r, column)``.
        """
        channels, height, width = tensor.shape
        block = np.zeros((self.group_rows, self.group_channels), dtype=tensor.dtype)
        row_extent = min(self.group_rows, height - group.row_start)
        channel_extent = min(self.group_channels, channels - group.channel_start)
        for r in range(row_extent):
            block[r, :channel_extent] = tensor[
                group.channel_start : group.channel_start + channel_extent,
                group.row_start + r,
                group.column,
            ]
        return block

    def insert_group(
        self, tensor: np.ndarray, group: TensorGroup, block: np.ndarray
    ) -> None:
        """Write one ``(group_rows, group_channels)`` block back into a tensor."""
        channels, height, width = tensor.shape
        row_extent = min(self.group_rows, height - group.row_start)
        channel_extent = min(self.group_channels, channels - group.channel_start)
        for r in range(row_extent):
            tensor[
                group.channel_start : group.channel_start + channel_extent,
                group.row_start + r,
                group.column,
            ] = block[r, :channel_extent]

    def group_all(self, tensor: np.ndarray) -> np.ndarray:
        """Pack an entire ``(C, H, W)`` tensor into its group blocks.

        Returns an array of shape ``(num_groups, group_rows, group_channels)``
        in the layout's allocation order.
        """
        groups = self.groups_for_shape(tensor.shape)
        packed = np.zeros(
            (len(groups), self.group_rows, self.group_channels), dtype=tensor.dtype
        )
        for index, group in enumerate(groups):
            packed[index] = self.extract_group(tensor, group)
        return packed

    def ungroup(self, packed: np.ndarray, shape: Tuple[int, int, int]) -> np.ndarray:
        """Rebuild a ``(C, H, W)`` tensor from its packed groups."""
        tensor = np.zeros(shape, dtype=packed.dtype)
        groups = self.groups_for_shape(shape)
        if len(groups) != packed.shape[0]:
            raise ValueError(
                f"packed array has {packed.shape[0]} groups, shape {shape} needs {len(groups)}"
            )
        for index, group in enumerate(groups):
            self.insert_group(tensor, group, packed[index])
        return tensor

    # -- access helpers ----------------------------------------------------------
    def channel_block(self, tensor: np.ndarray, row: int, column: int, channel_start: int) -> np.ndarray:
        """A single 16-value block contiguous along the channel dimension.

        This is the access the PEs perform directly (no transposition).
        """
        channels = tensor.shape[0]
        extent = min(self.group_channels, channels - channel_start)
        block = np.zeros(self.group_channels, dtype=tensor.dtype)
        block[:extent] = tensor[channel_start : channel_start + extent, row, column]
        return block

    def iter_channel_blocks(self, tensor: np.ndarray) -> Iterator[np.ndarray]:
        """Iterate over every channel block of a tensor in layout order."""
        channels, height, width = tensor.shape
        for row_start in range(0, height, self.group_rows):
            for column in range(width):
                for channel_start in range(0, channels, self.group_channels):
                    for r in range(row_start, min(row_start + self.group_rows, height)):
                        yield self.channel_block(tensor, r, column, channel_start)
